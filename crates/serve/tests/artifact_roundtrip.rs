//! Satellite tests: artifact persistence.
//!
//! * save → load → byte-identical structure and identical online
//!   assignments;
//! * rejection of foreign magic, bumped format versions, truncated
//!   files, and structurally corrupt payloads.

use dasc_core::{Dasc, DascConfig};
use dasc_kernel::Kernel;
use dasc_lsh::LshConfig;
use dasc_serve::{ArtifactError, AssignmentEngine, ModelArtifact, FORMAT_VERSION};
use std::path::PathBuf;

fn blob_points() -> Vec<Vec<f64>> {
    let centers = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]];
    let mut pts = Vec::new();
    for c in &centers {
        for i in 0..25 {
            pts.push(vec![
                c[0] + (i % 7) as f64 * 0.004,
                c[1] + (i % 5) as f64 * 0.004,
            ]);
        }
    }
    pts
}

fn trained_artifact() -> (ModelArtifact, Vec<Vec<f64>>) {
    let pts = blob_points();
    let cfg = DascConfig::for_dataset(pts.len(), 4)
        .kernel(Kernel::gaussian(0.15))
        .lsh(LshConfig::with_bits(2))
        .seed(7);
    let trained = Dasc::new(cfg).train(&pts);
    (ModelArtifact::from_trained(&trained, &pts), pts)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dasc_serve_test_{}_{tag}.model",
        std::process::id()
    ))
}

/// Serialize to bytes without touching the filesystem.
fn to_bytes(artifact: &ModelArtifact) -> Vec<u8> {
    let mut buf = Vec::new();
    artifact.write_to(&mut buf).expect("serialize");
    buf
}

#[test]
fn save_load_roundtrip_preserves_assignments() {
    let (artifact, pts) = trained_artifact();
    let path = temp_path("roundtrip");
    artifact.save(&path).expect("save");
    let loaded = ModelArtifact::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    // Structure survives byte-for-byte.
    assert_eq!(loaded.dimension, artifact.dimension);
    assert_eq!(loaded.num_clusters, artifact.num_clusters);
    assert_eq!(loaded.trained_points, artifact.trained_points);
    assert_eq!(loaded.planes, artifact.planes);
    assert_eq!(loaded.signature_table, artifact.signature_table);
    assert_eq!(loaded.buckets, artifact.buckets);
    assert_eq!(loaded.global_centroids, artifact.global_centroids);
    assert_eq!(loaded.config.k, artifact.config.k);
    assert_eq!(loaded.config.seed, artifact.config.seed);
    assert_eq!(loaded.config.lsh.num_bits, artifact.config.lsh.num_bits);

    // Identical online behavior: training points and novel probes.
    let before = AssignmentEngine::new(&artifact);
    let after = AssignmentEngine::new(&loaded);
    for p in &pts {
        assert_eq!(before.assign(p), after.assign(p));
    }
    for probe in [
        vec![0.5, 0.5],
        vec![0.05, 0.95],
        vec![-1.0, 2.0],
        vec![0.91, 0.12],
    ] {
        assert_eq!(before.assign(&probe), after.assign(&probe), "{probe:?}");
    }
}

#[test]
fn double_roundtrip_is_stable() {
    let (artifact, _) = trained_artifact();
    let bytes = to_bytes(&artifact);
    let once = ModelArtifact::read_from(&bytes[..]).expect("first load");
    assert_eq!(to_bytes(&once), bytes, "serialization is not canonical");
}

#[test]
fn bad_magic_is_rejected() {
    let (artifact, _) = trained_artifact();
    let mut bytes = to_bytes(&artifact);
    bytes[0] = b'X';
    assert!(matches!(
        ModelArtifact::read_from(&bytes[..]),
        Err(ArtifactError::BadMagic)
    ));
}

#[test]
fn bumped_version_is_rejected() {
    let (artifact, _) = trained_artifact();
    let mut bytes = to_bytes(&artifact);
    // Version is the little-endian u32 right after the 8-byte magic.
    let bumped = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&bumped.to_le_bytes());
    match ModelArtifact::read_from(&bytes[..]) {
        Err(ArtifactError::UnsupportedVersion(v)) => assert_eq!(v, bumped),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_files_are_rejected_at_every_length() {
    let (artifact, _) = trained_artifact();
    let bytes = to_bytes(&artifact);
    // Chop the stream at a spread of prefix lengths: every one must
    // fail loudly (magic/version errors near the front, truncation
    // later), never panic or succeed.
    for cut in [9, 12, 20, 60, bytes.len() / 2, bytes.len() - 1] {
        let err = ModelArtifact::read_from(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes loaded"));
        assert!(
            matches!(
                err,
                ArtifactError::Truncated
                    | ArtifactError::BadMagic
                    | ArtifactError::UnsupportedVersion(_)
                    | ArtifactError::Corrupt(_)
            ),
            "unexpected error at cut {cut}: {err:?}"
        );
    }
}

#[test]
fn corrupt_bucket_reference_is_rejected() {
    let (mut artifact, _) = trained_artifact();
    // Point a signature at a bucket that doesn't exist.
    artifact.signature_table[0].1 = artifact.buckets.len() as u32 + 10;
    let bytes = to_bytes(&artifact);
    assert!(matches!(
        ModelArtifact::read_from(&bytes[..]),
        Err(ArtifactError::Corrupt(_))
    ));
}

#[test]
fn missing_file_is_io_error() {
    let path = temp_path("does_not_exist");
    assert!(matches!(
        ModelArtifact::load(&path),
        Err(ArtifactError::Io(_))
    ));
}

#[test]
fn distributed_training_exports_equivalent_artifact() {
    use dasc_mapreduce::ClusterConfig;
    let pts = blob_points();
    let cfg = DascConfig::for_dataset(pts.len(), 4)
        .kernel(Kernel::gaussian(0.15))
        .lsh(LshConfig::with_bits(2))
        .seed(7);
    let serial = Dasc::new(cfg.clone()).train(&pts);
    let dist = Dasc::new(cfg).train_distributed(&pts, &ClusterConfig::single_node());
    let a = ModelArtifact::from_trained(&serial, &pts);
    let b = ModelArtifact::from_trained_distributed(&dist, &pts);
    // Deterministic engine: serial and distributed training produce the
    // same online model.
    assert_eq!(a.signature_table, b.signature_table);
    assert_eq!(a.planes, b.planes);
    let ea = AssignmentEngine::new(&a);
    let eb = AssignmentEngine::new(&b);
    for p in &pts {
        assert_eq!(ea.assign(p).cluster, eb.assign(p).cluster);
    }
}
