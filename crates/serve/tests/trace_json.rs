//! Round-trip: the obs tracer's Chrome trace-event export must be
//! well-formed JSON as judged by this crate's own parser, and a real
//! pipeline run must produce the documented stage spans.

use dasc_core::{Dasc, DascConfig};
use dasc_lsh::LshConfig;
use dasc_serve::JsonValue;

#[test]
fn chrome_trace_of_a_training_run_parses_back() {
    let pts: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            let c = (i % 4) as f64;
            vec![c + (i % 7) as f64 * 0.01, c + (i % 5) as f64 * 0.01]
        })
        .collect();
    let cfg = DascConfig::for_dataset(pts.len(), 4).lsh(LshConfig::with_bits(2));

    let tracer = dasc_obs::tracer();
    tracer.enable();
    let _trained = Dasc::new(cfg).train(&pts);
    let spans = tracer.drain();
    tracer.disable();

    let json = dasc_obs::chrome_trace_json(&spans);
    let parsed = JsonValue::parse(&json).expect("chrome trace is valid JSON");
    let events = parsed.as_array().expect("top level is an array");
    assert_eq!(events.len(), spans.len());

    // Every event is a complete ("X") duration event with the fields
    // chrome://tracing requires.
    let mut names = std::collections::BTreeSet::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(ev.get("cat").and_then(|v| v.as_str()), Some("dasc"));
        assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("tid").and_then(|v| v.as_f64()).is_some());
        let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
        if name.starts_with("dasc.") {
            names.insert(name.to_string());
        }
    }
    // The documented pipeline stages all show up (≥5 distinct).
    assert!(
        names.len() >= 5,
        "expected ≥5 distinct dasc.* stages, got {names:?}"
    );
    for stage in ["dasc.lsh", "dasc.bucket", "dasc.gram", "dasc.cluster"] {
        assert!(names.contains(stage), "missing {stage} in {names:?}");
    }
}
