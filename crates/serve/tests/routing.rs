//! Satellite tests: the three online routing tiers.
//!
//! A hand-constructed artifact gives exact control over which
//! signatures are "known", so each tier — exact match, one-bit-differs
//! neighbor (Eq. 6), global fallback — can be hit deliberately and
//! observed through the engine's routing counters.

use dasc_core::DascConfig;
use dasc_lsh::HashPlane;
use dasc_serve::{artifact::BucketClusters, AssignmentEngine, ModelArtifact, Route};

/// 3-bit model over the unit cube: bit `i` is set iff coordinate `i`
/// exceeds 0.5. Only signature `000` is in the table, so:
///
/// * points in the low corner route **exact**;
/// * points whose signature flips exactly one bit (e.g. `001`) route
///   via the **one-bit neighbor**;
/// * signatures at Hamming distance ≥ 2 (e.g. `011`, `111`) must fall
///   back to the **global** table.
fn crafted_artifact() -> ModelArtifact {
    let planes = (0..3)
        .map(|dimension| HashPlane {
            dimension,
            threshold: 0.5,
        })
        .collect();
    let low = vec![0.2, 0.2, 0.2];
    let high = vec![0.8, 0.8, 0.8];
    ModelArtifact {
        config: DascConfig::for_dataset(8, 2),
        dimension: 3,
        num_clusters: 2,
        trained_points: 8,
        planes,
        signature_table: vec![(0b000, 0)],
        buckets: vec![BucketClusters {
            clusters: vec![(0, low.clone()), (1, vec![0.45, 0.2, 0.2])],
        }],
        global_centroids: vec![(0, low), (1, high)],
    }
}

#[test]
fn exact_route_hits_bucket_centroids() {
    let engine = AssignmentEngine::new(&crafted_artifact());
    // Signature 000 → exact; nearest bucket centroid is cluster 0.
    let a = engine.assign(&[0.1, 0.1, 0.1]);
    assert_eq!(a.route, Route::Exact);
    assert_eq!(a.cluster, 0);
    // Still 000, but closer to the second in-bucket centroid.
    let b = engine.assign(&[0.49, 0.2, 0.2]);
    assert_eq!(b.route, Route::Exact);
    assert_eq!(b.cluster, 1);

    let counts = engine.routing_counts();
    assert_eq!(counts.exact, 2);
    assert_eq!(counts.one_bit_neighbor, 0);
    assert_eq!(counts.global_fallback, 0);
}

#[test]
fn one_bit_neighbor_route_uses_eq6_probes() {
    let engine = AssignmentEngine::new(&crafted_artifact());
    // Each of the three signatures at Hamming distance exactly 1 from
    // 000 routes through the neighbor tier into bucket 0.
    for point in [
        [0.8, 0.2, 0.2], // 001
        [0.2, 0.8, 0.2], // 010
        [0.2, 0.2, 0.8], // 100
    ] {
        let a = engine.assign(&point);
        assert_eq!(a.route, Route::OneBitNeighbor, "{point:?}");
        assert!(a.cluster < 2);
    }
    let counts = engine.routing_counts();
    assert_eq!(counts.one_bit_neighbor, 3);
    assert_eq!(counts.exact, 0);
    assert_eq!(counts.global_fallback, 0);
}

#[test]
fn global_fallback_catches_distant_signatures() {
    let engine = AssignmentEngine::new(&crafted_artifact());
    // 011, 101, 110, 111 are ≥ 2 bits away from the only known
    // signature: no bucket to route into.
    let far = engine.assign(&[0.9, 0.9, 0.9]); // 111 → nearest global = high
    assert_eq!(far.route, Route::GlobalFallback);
    assert_eq!(far.cluster, 1);
    let near = engine.assign(&[0.6, 0.6, 0.1]); // 011 → nearest global = low? no: dist
    assert_eq!(near.route, Route::GlobalFallback);

    let counts = engine.routing_counts();
    assert_eq!(counts.global_fallback, 2);
    assert_eq!(counts.total(), 2);
}

#[test]
fn counters_accumulate_across_all_tiers() {
    let engine = AssignmentEngine::new(&crafted_artifact());
    engine.assign(&[0.1, 0.1, 0.1]); // exact
    engine.assign(&[0.8, 0.2, 0.2]); // one-bit
    engine.assign(&[0.9, 0.9, 0.9]); // global
    engine.assign(&[0.9, 0.9, 0.9]); // global again
    let counts = engine.routing_counts();
    assert_eq!(
        (
            counts.exact,
            counts.one_bit_neighbor,
            counts.global_fallback
        ),
        (1, 1, 2)
    );
    assert_eq!(counts.total(), 4);
}

#[test]
fn neighbor_route_picks_nearest_across_probe_buckets() {
    // Two known signatures, 000 and 011, with different centroids; a
    // 001 point is one bit from both and must take the closer centroid.
    let mut artifact = crafted_artifact();
    artifact.signature_table = vec![(0b000, 0), (0b011, 1)];
    artifact.buckets = vec![
        BucketClusters {
            clusters: vec![(0, vec![0.2, 0.2, 0.2])],
        },
        BucketClusters {
            clusters: vec![(1, vec![0.9, 0.6, 0.2])],
        },
    ];
    let engine = AssignmentEngine::new(&artifact);
    // 001 = [>.5, <.5, <.5]; the point sits right on bucket 1's
    // centroid, far from bucket 0's.
    let a = engine.assign(&[0.9, 0.45, 0.2]);
    assert_eq!(a.route, Route::OneBitNeighbor);
    assert_eq!(a.cluster, 1);
    // A 001 point close to bucket 0's centroid goes the other way.
    let b = engine.assign(&[0.51, 0.2, 0.2]);
    assert_eq!(b.route, Route::OneBitNeighbor);
    assert_eq!(b.cluster, 0);
}

#[test]
fn trained_pipeline_exercises_exact_and_fallback_tiers() {
    // End-to-end: a model trained on two tight 1-D-separated blobs with
    // a 2-bit signature leaves some of the 4 signatures unobserved, so
    // novel far-away points cannot route exactly.
    use dasc_core::Dasc;
    use dasc_kernel::Kernel;
    use dasc_lsh::LshConfig;
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for i in 0..30 {
        pts.push(vec![0.05 + 0.001 * i as f64, 0.1]);
        pts.push(vec![0.95 - 0.001 * i as f64, 0.1]);
    }
    let cfg = DascConfig::for_dataset(pts.len(), 2)
        .kernel(Kernel::gaussian(0.1))
        .lsh(LshConfig::with_bits(2));
    let trained = Dasc::new(cfg).train(&pts);
    let artifact = ModelArtifact::from_trained(&trained, &pts);
    let engine = AssignmentEngine::new(&artifact);

    for p in &pts {
        assert_eq!(engine.assign(p).route, Route::Exact);
    }
    let seen: std::collections::HashSet<u64> = artifact
        .signature_table
        .iter()
        .map(|&(bits, _)| bits)
        .collect();
    assert!(
        seen.len() < 4,
        "all signatures observed; probe has no target"
    );
    // A probe engineered to hash to an unobserved signature routes
    // through a lower tier, never panics, and still gets a sane cluster.
    let novel = engine.assign(&[0.5, 0.9]);
    assert_ne!(novel.route, Route::Exact);
    assert!(novel.cluster < engine.num_clusters());
    let counts = engine.routing_counts();
    assert_eq!(counts.exact, pts.len() as u64);
    assert_eq!(counts.total(), pts.len() as u64 + 1);
}
