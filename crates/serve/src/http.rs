//! Hand-rolled HTTP/1.1 framing — just enough for a JSON API server:
//! request-line + header parsing with a `Content-Length` body, and
//! response serialization. No chunked encoding, no TLS, no HTTP/2.

use std::io::{self, BufRead, Write};

/// Maximum accepted request body (8 MiB) — bounds memory per
/// connection.
pub const MAX_BODY: usize = 8 << 20;
/// Maximum accepted header section (64 KiB).
pub const MAX_HEADER: usize = 64 << 10;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string not split off).
    pub path: String,
    /// Lower-cased header names with trimmed values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to keep the connection open
    /// (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Peer closed the connection before a full request arrived.
    ConnectionClosed,
    /// The bytes on the wire are not valid HTTP/1.1.
    Malformed(&'static str),
    /// The request exceeds [`MAX_BODY`] or [`MAX_HEADER`].
    TooLarge,
    /// Underlying socket error.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request from a buffered stream.
///
/// Returns `ConnectionClosed` when the stream ends cleanly before any
/// byte of a new request (the keep-alive idle case).
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Request, HttpError> {
    let request_line = read_line(stream, true)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = read_line(stream, false)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER {
            return Err(HttpError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| HttpError::Malformed("bad content-length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            HttpError::Malformed("body shorter than content-length")
        } else {
            HttpError::Io(e)
        }
    })?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Read one CRLF- (or LF-) terminated line; `at_start` distinguishes a
/// clean close from a mid-request close.
fn read_line<R: BufRead>(stream: &mut R, at_start: bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                if at_start && line.is_empty() {
                    return Err(HttpError::ConnectionClosed);
                }
                return Err(HttpError::Malformed("connection closed mid-line"));
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 header line"));
        }
        line.push(byte[0]);
        if line.len() > MAX_HEADER {
            return Err(HttpError::TooLarge);
        }
    }
}

/// Serialize and send a response with a JSON (or plain) body.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /assign HTTP/1.1\r\nHost: x\r\nContent-Length: 15\r\n\r\n{\"point\":[1,2]}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/assign");
        assert_eq!(req.body, b"{\"point\":[1,2]}");
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive());
    }

    #[test]
    fn clean_close_is_distinguished() {
        assert!(matches!(parse(""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHos"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn short_body_is_malformed() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn response_roundtrips_through_parser() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
