//! Serving statistics on the unified observability layer.
//!
//! [`LatencyRecorder`] is a thin handle over a [`dasc_obs::Histogram`]:
//! recording is two atomic increments on the hot path, percentile
//! queries walk 40 log₂ buckets and return the *geometric midpoint* of
//! the winning bucket, so reported quantiles are within a factor of √2
//! of the truth rather than the upper edge's factor of two.
//!
//! [`EndpointStats::registered`] binds the recorder and error counter
//! to named series in a [`dasc_obs::Registry`]
//! (`dasc_serve_request_duration_us{endpoint="…"}`,
//! `dasc_serve_request_errors_total{endpoint="…"}`), which is how the
//! server's `/metrics` endpoint sees per-endpoint latency histograms
//! without any extra bookkeeping.

use std::sync::Arc;
use std::time::Instant;

use dasc_obs::{Counter, Histogram, Registry};

/// Concurrent log₂ latency histogram with total-count and total-time
/// counters.
#[derive(Clone, Default)]
pub struct LatencyRecorder {
    inner: Arc<Histogram>,
}

impl LatencyRecorder {
    /// New, empty recorder (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder backed by the named histogram of `registry`.
    pub fn registered(registry: &Registry, name: &str) -> Self {
        Self {
            inner: registry.histogram(name),
        }
    }

    /// Record one observation in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.inner.record(micros);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        self.inner.mean()
    }

    /// Approximate percentile (`q` in `[0, 1]`) in microseconds: the
    /// geometric midpoint of the histogram bucket containing the
    /// q-quantile (within √2 of the true value).
    pub fn percentile_micros(&self, q: f64) -> u64 {
        self.inner.percentile(q)
    }
}

/// Counters for one HTTP endpoint.
#[derive(Clone, Default)]
pub struct EndpointStats {
    /// Latency of successful requests.
    pub latency: LatencyRecorder,
    errors: Arc<Counter>,
}

impl EndpointStats {
    /// New, empty stats (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats backed by named series of `registry`, so they appear in
    /// Prometheus exposition of that registry's snapshot.
    pub fn registered(registry: &Registry, endpoint: &str) -> Self {
        Self {
            latency: LatencyRecorder::registered(
                registry,
                &format!("dasc_serve_request_duration_us{{endpoint=\"{endpoint}\"}}"),
            ),
            errors: registry.counter(&format!(
                "dasc_serve_request_errors_total{{endpoint=\"{endpoint}\"}}"
            )),
        }
    }

    /// Record a successful request's duration.
    pub fn record_ok(&self, start: Instant) {
        self.latency
            .record_micros(start.elapsed().as_micros() as u64);
    }

    /// Record a failed request.
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// Successful requests served.
    pub fn requests(&self) -> u64 {
        self.latency.count()
    }

    /// Failed requests.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_distribution() {
        let r = LatencyRecorder::new();
        // 99 fast observations (~8 µs) and one slow (~8192 µs).
        for _ in 0..99 {
            r.record_micros(8);
        }
        r.record_micros(8192);
        assert_eq!(r.count(), 100);
        let p50 = r.percentile_micros(0.50);
        let p99 = r.percentile_micros(0.99);
        let p100 = r.percentile_micros(1.0);
        assert!(p50 <= 16, "p50 {p50}");
        assert!(p99 <= 16, "p99 {p99}");
        assert!(p100 >= 8192, "p100 {p100}");
        assert!((r.mean_micros() - (99.0 * 8.0 + 8192.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_is_geometric_midpoint_not_upper_edge() {
        let r = LatencyRecorder::new();
        // All observations in bucket 3 ([8, 16)): upper edge would say
        // 16, the geometric midpoint √(8·16) ≈ 11 is within √2.
        for _ in 0..10 {
            r.record_micros(9);
        }
        assert_eq!(r.percentile_micros(0.5), 11);
        assert_eq!(r.percentile_micros(1.0), 11);
    }

    #[test]
    fn empty_recorder_is_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.percentile_micros(0.99), 0);
        assert_eq!(r.mean_micros(), 0.0);
    }

    #[test]
    fn zero_micros_lands_in_first_bucket() {
        let r = LatencyRecorder::new();
        r.record_micros(0);
        assert_eq!(r.count(), 1);
        // Geometric midpoint of bucket 0 ([1, 2)).
        assert_eq!(r.percentile_micros(1.0), 1);
    }

    #[test]
    fn endpoint_stats_count_errors_separately() {
        let s = EndpointStats::new();
        s.record_ok(Instant::now());
        s.record_error();
        s.record_error();
        assert_eq!(s.requests(), 1);
        assert_eq!(s.errors(), 2);
    }

    #[test]
    fn registered_stats_surface_in_registry_snapshot() {
        let registry = Registry::new();
        let s = EndpointStats::registered(&registry, "assign");
        s.latency.record_micros(5);
        s.record_error();

        let snap = registry.snapshot();
        let h = snap
            .histograms
            .get("dasc_serve_request_duration_us{endpoint=\"assign\"}")
            .expect("histogram series");
        assert_eq!(h.count, 1);
        assert_eq!(
            snap.counters
                .get("dasc_serve_request_errors_total{endpoint=\"assign\"}"),
            Some(&1)
        );
    }
}
