//! Lock-free serving statistics: per-endpoint request counts, QPS, and
//! latency percentiles.
//!
//! Latencies land in a fixed log₂ histogram of `AtomicU64` buckets
//! (bucket `i` covers `[2^i, 2^(i+1))` microseconds), so recording is a
//! couple of atomic increments on the hot path and percentile queries
//! walk 40 buckets. Percentiles are therefore resolved to a factor of
//! two — the right trade for an embedded server with no dependencies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days; plenty.

/// Concurrent log₂ latency histogram with total-count and total-time
/// counters.
pub struct LatencyRecorder {
    count: AtomicU64,
    total_micros: AtomicU64,
    histogram: [AtomicU64; BUCKETS],
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_micros: AtomicU64::new(0),
            histogram: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

impl LatencyRecorder {
    /// New, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.histogram[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.total_micros.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Approximate percentile (`q` in `[0, 1]`) in microseconds: the
    /// upper edge of the histogram bucket containing the q-quantile.
    pub fn percentile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.histogram.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }
}

/// Counters for one HTTP endpoint.
#[derive(Default)]
pub struct EndpointStats {
    /// Latency of successful requests.
    pub latency: LatencyRecorder,
    errors: AtomicU64,
}

impl EndpointStats {
    /// New, empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful request's duration.
    pub fn record_ok(&self, start: Instant) {
        self.latency
            .record_micros(start.elapsed().as_micros() as u64);
    }

    /// Record a failed request.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful requests served.
    pub fn requests(&self) -> u64 {
        self.latency.count()
    }

    /// Failed requests.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_distribution() {
        let r = LatencyRecorder::new();
        // 99 fast observations (~8 µs) and one slow (~8192 µs).
        for _ in 0..99 {
            r.record_micros(8);
        }
        r.record_micros(8192);
        assert_eq!(r.count(), 100);
        let p50 = r.percentile_micros(0.50);
        let p99 = r.percentile_micros(0.99);
        let p100 = r.percentile_micros(1.0);
        assert!(p50 <= 16, "p50 {p50}");
        assert!(p99 <= 16, "p99 {p99}");
        assert!(p100 >= 8192, "p100 {p100}");
        assert!((r.mean_micros() - (99.0 * 8.0 + 8192.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_is_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.percentile_micros(0.99), 0);
        assert_eq!(r.mean_micros(), 0.0);
    }

    #[test]
    fn zero_micros_lands_in_first_bucket() {
        let r = LatencyRecorder::new();
        r.record_micros(0);
        assert_eq!(r.count(), 1);
        assert_eq!(r.percentile_micros(1.0), 2);
    }

    #[test]
    fn endpoint_stats_count_errors_separately() {
        let s = EndpointStats::new();
        s.record_ok(Instant::now());
        s.record_error();
        s.record_error();
        assert_eq!(s.requests(), 1);
        assert_eq!(s.errors(), 2);
    }
}
