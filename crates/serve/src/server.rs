//! Concurrent HTTP serving of an [`AssignmentEngine`].
//!
//! Shape: one acceptor thread hands connections to a fixed pool of
//! worker threads over an `mpsc` channel; each worker owns a
//! connection for its keep-alive lifetime. The engine is immutable
//! behind an `Arc`, so request handling takes no locks — the only
//! shared mutable state is atomic counters.
//!
//! Endpoints (JSON in, JSON out):
//!
//! | method | path            | body                      | reply |
//! |--------|-----------------|---------------------------|-------|
//! | POST   | `/assign`       | `{"point": [..]}`         | `{"cluster", "route", "sq_dist"}` |
//! | POST   | `/assign_batch` | `{"points": [[..], ..]}`  | `{"clusters": [..], "routes": [..], "count"}` |
//! | GET    | `/healthz`      | —                         | `{"status": "ok"}` |
//! | GET    | `/stats`        | —                         | uptime, per-endpoint latency/QPS, routing tiers |
//! | GET    | `/metrics`      | —                         | Prometheus text exposition (per-endpoint latency histograms, routing-tier counters, process-wide registry) |
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] stops the
//! acceptor, lets every worker finish its in-flight request, and joins
//! all threads.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dasc_obs::Registry;

use crate::engine::AssignmentEngine;
use crate::http::{self, HttpError, Request};
use crate::json::{object, JsonValue};
use crate::stats::EndpointStats;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Points per scoped-thread chunk when fanning out `/assign_batch`.
    pub batch_chunk: usize,
    /// Idle read timeout per connection; also bounds shutdown latency,
    /// since parked workers re-check the shutdown flag on timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: thread::available_parallelism().map_or(4, |n| n.get()),
            batch_chunk: 1024,
            read_timeout: Duration::from_millis(500),
        }
    }
}

/// An assignment service ready to bind.
pub struct Server {
    engine: Arc<AssignmentEngine>,
    config: ServerConfig,
}

struct Shared {
    engine: Arc<AssignmentEngine>,
    /// Per-server metrics registry backing the endpoint stats; merged
    /// with the process-wide [`dasc_obs::global`] registry on
    /// `/metrics` scrapes.
    registry: Registry,
    started: Instant,
    shutdown: AtomicBool,
    assign: EndpointStats,
    assign_batch: EndpointStats,
    healthz: EndpointStats,
    stats: EndpointStats,
    metrics: EndpointStats,
    batch_chunk: usize,
}

/// A running server: address + graceful-shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Wrap an engine with the given tuning.
    pub fn new(engine: AssignmentEngine, config: ServerConfig) -> Self {
        Self {
            engine: Arc::new(engine),
            config,
        }
    }

    /// Bind, spawn the acceptor and worker pool, and return a handle.
    /// Serving begins immediately.
    pub fn start(self) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&self.config.addr)?;
        let addr = listener.local_addr()?;
        let registry = Registry::new();
        let shared = Arc::new(Shared {
            engine: self.engine,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            assign: EndpointStats::registered(&registry, "assign"),
            assign_batch: EndpointStats::registered(&registry, "assign_batch"),
            healthz: EndpointStats::registered(&registry, "healthz"),
            stats: EndpointStats::registered(&registry, "stats"),
            metrics: EndpointStats::registered(&registry, "metrics"),
            registry,
            batch_chunk: self.config.batch_chunk.max(1),
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let read_timeout = self.config.read_timeout;

        let workers: Vec<JoinHandle<()>> = (0..self.config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                thread::spawn(move || loop {
                    // Holding the lock only while receiving keeps the
                    // pool work-stealing: any idle worker takes the
                    // next connection.
                    let conn = rx.lock().expect("worker rx lock").recv();
                    match conn {
                        Ok(stream) => serve_connection(&shared, stream, read_timeout),
                        Err(_) => return, // acceptor gone: drain done
                    }
                })
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the engine's routing counters.
    pub fn routing_counts(&self) -> crate::engine::RoutingCounts {
        self.shared.engine.routing_counts()
    }

    /// Block the calling thread until the server stops on its own
    /// (acceptor exits, e.g. on a fatal listener error). Used by the
    /// CLI `serve` command, which runs until the process is killed.
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stop accepting, finish in-flight requests, join all threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a self-connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Serve one connection for its keep-alive lifetime.
fn serve_connection(shared: &Shared, stream: TcpStream, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);

    loop {
        let request = match http::read_request(&mut reader) {
            Ok(r) => r,
            Err(HttpError::ConnectionClosed) => return,
            Err(HttpError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive wait: drop the connection if the
                // server is shutting down, otherwise keep waiting.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(HttpError::TooLarge) => {
                let body = error_json("request too large");
                let _ = http::write_response(
                    &mut writer,
                    413,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(_) => {
                let body = error_json("malformed HTTP request");
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        };

        let keep_alive = request.keep_alive() && !shared.shutdown.load(Ordering::SeqCst);
        let (status, content_type, body) = route(shared, &request);
        if http::write_response(
            &mut writer,
            status,
            content_type,
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

const JSON_TYPE: &str = "application/json";
/// Prometheus text exposition format version.
const METRICS_TYPE: &str = "text/plain; version=0.0.4";

/// Dispatch a request, recording per-endpoint stats.
fn route(shared: &Shared, request: &Request) -> (u16, &'static str, String) {
    let start = Instant::now();
    let (stats, content_type, outcome) = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/assign") => (&shared.assign, JSON_TYPE, handle_assign(shared, request)),
        ("POST", "/assign_batch") => (
            &shared.assign_batch,
            JSON_TYPE,
            handle_assign_batch(shared, request),
        ),
        ("GET", "/healthz") => (
            &shared.healthz,
            JSON_TYPE,
            Ok(object([("status", "ok".into())]).to_json()),
        ),
        ("GET", "/stats") => (&shared.stats, JSON_TYPE, Ok(stats_json(shared))),
        ("GET", "/metrics") => (&shared.metrics, METRICS_TYPE, Ok(metrics_text(shared))),
        (_, "/assign" | "/assign_batch" | "/healthz" | "/stats" | "/metrics") => {
            return (405, JSON_TYPE, error_json("method not allowed"));
        }
        _ => return (404, JSON_TYPE, error_json("no such endpoint")),
    };
    match outcome {
        Ok(body) => {
            stats.record_ok(start);
            (200, content_type, body)
        }
        Err(msg) => {
            stats.record_error();
            (400, JSON_TYPE, error_json(&msg))
        }
    }
}

fn parse_body(request: &Request) -> Result<JsonValue, String> {
    let text = std::str::from_utf8(&request.body).map_err(|_| "body is not UTF-8".to_string())?;
    JsonValue::parse(text).map_err(|e| e.to_string())
}

fn extract_point(v: &JsonValue, key: &str, dim: usize) -> Result<Vec<f64>, String> {
    let point = v
        .get(key)
        .ok_or_else(|| format!("missing \"{key}\""))?
        .as_point()
        .ok_or_else(|| format!("\"{key}\" must be a numeric array"))?;
    if point.len() != dim {
        return Err(format!("expected {dim} dimensions, got {}", point.len()));
    }
    Ok(point)
}

fn handle_assign(shared: &Shared, request: &Request) -> Result<String, String> {
    let v = parse_body(request)?;
    let point = extract_point(&v, "point", shared.engine.dimension())?;
    let a = shared.engine.assign(&point);
    Ok(object([
        ("cluster", a.cluster.into()),
        ("route", a.route.as_str().into()),
        ("sq_dist", a.sq_dist.into()),
    ])
    .to_json())
}

fn handle_assign_batch(shared: &Shared, request: &Request) -> Result<String, String> {
    let v = parse_body(request)?;
    let dim = shared.engine.dimension();
    let points: Vec<Vec<f64>> = v
        .get("points")
        .ok_or("missing \"points\"")?
        .as_array()
        .ok_or("\"points\" must be an array")?
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let p = item
                .as_point()
                .ok_or_else(|| format!("points[{i}] is not a numeric array"))?;
            if p.len() != dim {
                return Err(format!(
                    "points[{i}]: expected {dim} dimensions, got {}",
                    p.len()
                ));
            }
            Ok(p)
        })
        .collect::<Result<_, String>>()?;

    // Fan large batches out over scoped threads; chunk boundaries keep
    // the output order stable.
    let engine = &shared.engine;
    let assignments: Vec<crate::engine::Assignment> = if points.len() <= shared.batch_chunk {
        engine.assign_batch(&points)
    } else {
        let chunks: Vec<&[Vec<f64>]> = points.chunks(shared.batch_chunk).collect();
        let results: Vec<Vec<crate::engine::Assignment>> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || engine.assign_batch(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker"))
                .collect()
        });
        results.into_iter().flatten().collect()
    };

    let clusters: Vec<JsonValue> = assignments.iter().map(|a| a.cluster.into()).collect();
    let routes: Vec<JsonValue> = assignments
        .iter()
        .map(|a| a.route.as_str().into())
        .collect();
    Ok(object([
        ("clusters", JsonValue::Array(clusters)),
        ("routes", JsonValue::Array(routes)),
        ("count", assignments.len().into()),
    ])
    .to_json())
}

fn endpoint_json(stats: &EndpointStats, uptime_secs: f64) -> JsonValue {
    let requests = stats.requests();
    let qps = if uptime_secs > 0.0 {
        requests as f64 / uptime_secs
    } else {
        0.0
    };
    object([
        ("requests", requests.into()),
        ("errors", stats.errors().into()),
        ("mean_us", stats.latency.mean_micros().into()),
        ("p50_us", stats.latency.percentile_micros(0.50).into()),
        ("p99_us", stats.latency.percentile_micros(0.99).into()),
        ("qps", qps.into()),
    ])
}

fn stats_json(shared: &Shared) -> String {
    let uptime = shared.started.elapsed().as_secs_f64();
    let routing = shared.engine.routing_counts();
    object([
        ("uptime_seconds", uptime.into()),
        (
            "endpoints",
            object([
                ("assign", endpoint_json(&shared.assign, uptime)),
                ("assign_batch", endpoint_json(&shared.assign_batch, uptime)),
                ("healthz", endpoint_json(&shared.healthz, uptime)),
                ("stats", endpoint_json(&shared.stats, uptime)),
                ("metrics", endpoint_json(&shared.metrics, uptime)),
            ]),
        ),
        (
            "routing",
            object([
                ("exact", routing.exact.into()),
                ("one_bit_neighbor", routing.one_bit_neighbor.into()),
                ("global_fallback", routing.global_fallback.into()),
                ("total", routing.total().into()),
            ]),
        ),
        (
            "model",
            object([
                ("dimension", shared.engine.dimension().into()),
                ("num_clusters", shared.engine.num_clusters().into()),
                ("num_bits", shared.engine.num_bits().into()),
            ]),
        ),
    ])
    .to_json()
}

/// Prometheus exposition of the merged process-wide + per-server
/// snapshot.
///
/// Routing-tier counters and the uptime gauge are inserted at scrape
/// time from the engine's existing atomics rather than mirrored on the
/// assignment hot path, so `/metrics` adds zero per-request overhead.
fn metrics_text(shared: &Shared) -> String {
    let mut snap = dasc_obs::global()
        .snapshot()
        .merge(shared.registry.snapshot());
    let routing = shared.engine.routing_counts();
    for (tier, count) in [
        ("exact", routing.exact),
        ("one_bit_neighbor", routing.one_bit_neighbor),
        ("global_fallback", routing.global_fallback),
    ] {
        snap.counters
            .insert(format!("dasc_serve_route_total{{tier=\"{tier}\"}}"), count);
    }
    snap.gauges.insert(
        "dasc_serve_uptime_seconds".to_string(),
        shared.started.elapsed().as_secs() as i64,
    );
    dasc_obs::prometheus::render(&snap)
}

fn error_json(message: &str) -> String {
    object([("error", message.into())]).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ModelArtifact;
    use dasc_core::{Dasc, DascConfig};
    use dasc_kernel::Kernel;
    use dasc_lsh::LshConfig;
    use std::io::{Read, Write};

    fn test_engine() -> AssignmentEngine {
        let centers = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]];
        let mut pts = Vec::new();
        for c in &centers {
            for i in 0..25 {
                pts.push(vec![
                    c[0] + (i % 7) as f64 * 0.004,
                    c[1] + (i % 5) as f64 * 0.004,
                ]);
            }
        }
        let cfg = DascConfig::for_dataset(pts.len(), 4)
            .kernel(Kernel::gaussian(0.15))
            .lsh(LshConfig::with_bits(2));
        let trained = Dasc::new(cfg).train(&pts);
        AssignmentEngine::new(&ModelArtifact::from_trained(&trained, &pts))
    }

    fn start_test_server() -> ServerHandle {
        Server::new(
            test_engine(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .start()
        .expect("bind test server")
    }

    /// Send one raw HTTP request over a fresh connection; return
    /// (status, body).
    fn roundtrip(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("recv");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status")
            .parse()
            .expect("numeric status");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        roundtrip(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn healthz_and_stats_respond() {
        let server = start_test_server();
        let (status, body) = roundtrip(
            server.addr(),
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"status":"ok"}"#);

        let (status, body) = roundtrip(
            server.addr(),
            "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        let v = JsonValue::parse(&body).unwrap();
        assert!(v.get("uptime_seconds").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(
            v.get("model").unwrap().get("dimension").unwrap().as_f64(),
            Some(2.0)
        );
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_exposes_prometheus_series() {
        let server = start_test_server();
        let addr = server.addr();
        // Traffic: two successes and one error on /assign.
        for _ in 0..2 {
            let (status, _) = post(addr, "/assign", r#"{"point":[0.1,0.1]}"#);
            assert_eq!(status, 200);
        }
        let (status, _) = post(addr, "/assign", "not json");
        assert_eq!(status, 400);

        let (status, body) = roundtrip(
            addr,
            "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        // Per-endpoint latency histogram series.
        assert!(
            body.contains("# TYPE dasc_serve_request_duration_us histogram"),
            "{body}"
        );
        assert!(body.contains("dasc_serve_request_duration_us_bucket{endpoint=\"assign\""));
        assert!(body.contains("dasc_serve_request_duration_us_count{endpoint=\"assign\"} 2"));
        // Error counter.
        assert!(body.contains("dasc_serve_request_errors_total{endpoint=\"assign\"} 1"));
        // Routing tiers inserted at scrape time from the engine.
        assert!(body.contains("dasc_serve_route_total{tier=\"exact\"} 2"));
        assert!(body.contains("dasc_serve_route_total{tier=\"global_fallback\"} 0"));
        // Uptime gauge and process-wide registry counters (training in
        // this process bumped dasc_runs_total).
        assert!(body.contains("dasc_serve_uptime_seconds"));
        assert!(body.contains("dasc_runs_total"));
        server.shutdown();
    }

    #[test]
    fn metrics_response_is_plaintext() {
        let server = start_test_server();
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("send");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("recv");
        let headers = response.split("\r\n\r\n").next().unwrap_or_default();
        assert!(
            headers.to_ascii_lowercase().contains("text/plain"),
            "{headers}"
        );
        server.shutdown();
    }

    #[test]
    fn assign_endpoint_clusters_points() {
        let server = start_test_server();
        let (status, body) = post(server.addr(), "/assign", r#"{"point":[0.1,0.1]}"#);
        assert_eq!(status, 200);
        let v = JsonValue::parse(&body).unwrap();
        assert!(v.get("cluster").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(v.get("route").unwrap().as_str(), Some("exact"));
        assert_eq!(server.routing_counts().total(), 1);
        server.shutdown();
    }

    #[test]
    fn batch_endpoint_preserves_order() {
        let server = start_test_server();
        let (status, body) = post(
            server.addr(),
            "/assign_batch",
            r#"{"points":[[0.1,0.1],[0.9,0.9],[0.1,0.1]]}"#,
        );
        assert_eq!(status, 200);
        let v = JsonValue::parse(&body).unwrap();
        assert_eq!(v.get("count").unwrap().as_f64(), Some(3.0));
        let clusters = v.get("clusters").unwrap().as_array().unwrap();
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0], clusters[2]);
        assert_ne!(clusters[0], clusters[1]);
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_400s_not_crashes() {
        let server = start_test_server();
        for (path, body) in [
            ("/assign", "not json"),
            ("/assign", r#"{"point":"nope"}"#),
            ("/assign", r#"{"point":[1,2,3]}"#), // wrong dimension
            ("/assign_batch", r#"{"points":[[1],[2,3]]}"#),
            ("/assign_batch", r#"{}"#),
        ] {
            let (status, reply) = post(server.addr(), path, body);
            assert_eq!(status, 400, "{path} {body} → {reply}");
            assert!(reply.contains("error"), "{reply}");
        }
        // Server still healthy afterwards.
        let (status, _) = roundtrip(
            server.addr(),
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods() {
        let server = start_test_server();
        let (status, _) = roundtrip(
            server.addr(),
            "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 404);
        let (status, _) = roundtrip(
            server.addr(),
            "GET /assign HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 405);
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = start_test_server();
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        for _ in 0..3 {
            let body = r#"{"point":[0.9,0.9]}"#;
            conn.write_all(
                format!(
                    "POST /assign HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("send");
            // Read exactly one response (headers + fixed-length body).
            let mut buf = Vec::new();
            let mut byte = [0u8; 1];
            while !buf.ends_with(b"\r\n\r\n") {
                conn.read_exact(&mut byte).expect("headers");
                buf.push(byte[0]);
            }
            let text = String::from_utf8_lossy(&buf);
            let len: usize = text
                .lines()
                .find(|l| l.to_ascii_lowercase().starts_with("content-length:"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|v| v.trim().parse().ok())
                .expect("content-length");
            let mut body_buf = vec![0u8; len];
            conn.read_exact(&mut body_buf).expect("body");
            assert!(String::from_utf8_lossy(&body_buf).contains("cluster"));
        }
        drop(conn);
        assert_eq!(server.routing_counts().total(), 3);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_isolated() {
        let server = start_test_server();
        let addr = server.addr();
        thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for _ in 0..10 {
                        let (status, body) = post(
                            addr,
                            "/assign",
                            &format!(r#"{{"point":[0.{},0.1]}}"#, (t % 9) + 1),
                        );
                        assert_eq!(status, 200, "{body}");
                    }
                });
            }
        });
        assert_eq!(server.routing_counts().total(), 40);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_quickly() {
        let server = start_test_server();
        // Leave a keep-alive connection idle to exercise the timeout
        // wake-up path.
        let _idle = TcpStream::connect(server.addr()).expect("connect");
        let begin = Instant::now();
        server.shutdown();
        assert!(
            begin.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}",
            begin.elapsed()
        );
    }
}
