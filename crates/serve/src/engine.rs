//! Online assignment: route a new point to a trained cluster.
//!
//! Mirrors the offline pipeline's data flow, one point at a time:
//!
//! 1. **Hash** with the frozen signature model — `O(M)`.
//! 2. **Exact route**: the signature was observed in training → the
//!    point belongs to that bucket; assign to the nearest of the
//!    bucket's cluster centroids.
//! 3. **Neighbor route**: otherwise probe the `M` signatures at Hamming
//!    distance 1 (the paper's Eq. 6 `P = M − 1` similarity, evaluated
//!    by flipping each bit), collect the buckets they map to, and take
//!    the nearest centroid across them.
//! 4. **Global route**: no neighbor known either → nearest global
//!    centroid.
//!
//! Total cost is `O(M + K·d)` per point. Every stage bumps an atomic
//! counter, so operators can see how much traffic falls off the fast
//! path (a drift signal: rising global-route share means the serving
//! distribution has left the trained signature space).

use std::sync::atomic::{AtomicU64, Ordering};

use dasc_lsh::SignatureModel;

use crate::artifact::{BucketClusters, ModelArtifact};

/// Which routing tier produced an assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Signature seen in training; assigned within its bucket.
    Exact,
    /// Routed through a one-bit-differs neighbor signature (Eq. 6).
    OneBitNeighbor,
    /// Fell through to the global centroid table.
    GlobalFallback,
}

impl Route {
    /// Stable lower-snake name (used by the JSON API).
    pub fn as_str(self) -> &'static str {
        match self {
            Route::Exact => "exact",
            Route::OneBitNeighbor => "one_bit_neighbor",
            Route::GlobalFallback => "global_fallback",
        }
    }
}

/// One assignment decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Assignment {
    /// Global cluster id.
    pub cluster: usize,
    /// Routing tier that produced it.
    pub route: Route,
    /// Squared distance to the winning centroid.
    pub sq_dist: f64,
}

/// Snapshot of the per-tier routing counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoutingCounts {
    /// Assignments routed by exact signature match.
    pub exact: u64,
    /// Assignments routed via a one-bit neighbor.
    pub one_bit_neighbor: u64,
    /// Assignments that used the global fallback.
    pub global_fallback: u64,
}

impl RoutingCounts {
    /// Total assignments served.
    pub fn total(&self) -> u64 {
        self.exact + self.one_bit_neighbor + self.global_fallback
    }
}

#[derive(Default)]
struct RoutingCounters {
    exact: AtomicU64,
    one_bit_neighbor: AtomicU64,
    global_fallback: AtomicU64,
}

/// Immutable online assignment engine built from a [`ModelArtifact`].
///
/// All state is read-only after construction except the atomic
/// counters, so a single engine can be shared across threads behind an
/// `Arc` with no locking on the assignment path.
pub struct AssignmentEngine {
    model: SignatureModel,
    num_bits: usize,
    dimension: usize,
    num_clusters: usize,
    /// Sorted `(signature bits, bucket)` pairs; binary-searched.
    table: Vec<(u64, u32)>,
    buckets: Vec<BucketClusters>,
    global: Vec<(u32, Vec<f64>)>,
    counters: RoutingCounters,
}

impl AssignmentEngine {
    /// Build from a loaded artifact.
    ///
    /// # Panics
    /// Panics if the artifact has no planes or no global centroids
    /// (both impossible for an artifact that passed load validation).
    pub fn new(artifact: &ModelArtifact) -> Self {
        let model = artifact.signature_model();
        let mut table = artifact.signature_table.clone();
        table.sort_unstable();
        Self {
            num_bits: model.num_bits(),
            dimension: artifact.dimension,
            num_clusters: artifact.num_clusters,
            model,
            table,
            buckets: artifact.buckets.clone(),
            global: artifact.global_centroids.clone(),
            counters: RoutingCounters::default(),
        }
    }

    /// Input dimensionality the engine expects.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of global clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Signature width `M`.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Assign one point.
    ///
    /// # Panics
    /// Panics if `point` does not match the trained dimensionality.
    pub fn assign(&self, point: &[f64]) -> Assignment {
        assert_eq!(
            point.len(),
            self.dimension,
            "assign: expected {} dimensions, got {}",
            self.dimension,
            point.len()
        );
        let bits = self.model.hash(point).bits();

        // Tier 1: exact signature match.
        if let Some(bucket) = self.lookup(bits) {
            if let Some((cluster, sq_dist)) =
                nearest(&self.buckets[bucket as usize].clusters, point)
            {
                self.counters.exact.fetch_add(1, Ordering::Relaxed);
                return Assignment {
                    cluster,
                    route: Route::Exact,
                    sq_dist,
                };
            }
        }

        // Tier 2: Eq. 6 — probe the M signatures that differ in exactly
        // one bit, taking the best centroid across every known
        // neighbor bucket.
        let mut best: Option<(usize, f64)> = None;
        for bit in 0..self.num_bits {
            let neighbor = bits ^ (1u64 << bit);
            if let Some(bucket) = self.lookup(neighbor) {
                if let Some((cluster, sq)) = nearest(&self.buckets[bucket as usize].clusters, point)
                {
                    if best.is_none_or(|(_, b)| sq < b) {
                        best = Some((cluster, sq));
                    }
                }
            }
        }
        if let Some((cluster, sq_dist)) = best {
            self.counters
                .one_bit_neighbor
                .fetch_add(1, Ordering::Relaxed);
            return Assignment {
                cluster,
                route: Route::OneBitNeighbor,
                sq_dist,
            };
        }

        // Tier 3: global nearest centroid.
        let (cluster, sq_dist) =
            nearest(&self.global, point).expect("artifact has global centroids");
        self.counters
            .global_fallback
            .fetch_add(1, Ordering::Relaxed);
        Assignment {
            cluster,
            route: Route::GlobalFallback,
            sq_dist,
        }
    }

    /// Assign a batch of points sequentially on the calling thread.
    /// (The server fans batches out across its worker pool.)
    pub fn assign_batch(&self, points: &[Vec<f64>]) -> Vec<Assignment> {
        points.iter().map(|p| self.assign(p)).collect()
    }

    /// Snapshot the routing counters.
    pub fn routing_counts(&self) -> RoutingCounts {
        RoutingCounts {
            exact: self.counters.exact.load(Ordering::Relaxed),
            one_bit_neighbor: self.counters.one_bit_neighbor.load(Ordering::Relaxed),
            global_fallback: self.counters.global_fallback.load(Ordering::Relaxed),
        }
    }

    fn lookup(&self, bits: u64) -> Option<u32> {
        self.table
            .binary_search_by_key(&bits, |&(b, _)| b)
            .ok()
            .map(|i| self.table[i].1)
    }
}

/// Nearest centroid in a `(cluster id, centroid)` list; `None` when the
/// list is empty.
fn nearest(centroids: &[(u32, Vec<f64>)], point: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (id, c) in centroids {
        let sq: f64 = c
            .iter()
            .zip(point)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum();
        if best.is_none_or(|(_, b)| sq < b) {
            best = Some((*id as usize, sq));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_core::{Dasc, DascConfig};
    use dasc_kernel::Kernel;
    use dasc_lsh::LshConfig;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for i in 0..25 {
                pts.push(vec![
                    c[0] + (i % 7) as f64 * 0.004,
                    c[1] + (i % 5) as f64 * 0.004,
                ]);
                labels.push(ci);
            }
        }
        (pts, labels)
    }

    fn trained_engine() -> (AssignmentEngine, Vec<Vec<f64>>, Vec<usize>) {
        let (pts, labels) = blobs();
        let cfg = DascConfig::for_dataset(pts.len(), 4)
            .kernel(Kernel::gaussian(0.15))
            .lsh(LshConfig::with_bits(2));
        let trained = Dasc::new(cfg).train(&pts);
        let artifact = ModelArtifact::from_trained(&trained, &pts);
        (AssignmentEngine::new(&artifact), pts, labels)
    }

    #[test]
    fn training_points_reassign_consistently() {
        let (engine, pts, _) = trained_engine();
        // Training points hash to observed signatures → exact route.
        for p in &pts {
            let a = engine.assign(p);
            assert_eq!(a.route, Route::Exact);
            assert!(a.cluster < engine.num_clusters());
        }
        let counts = engine.routing_counts();
        assert_eq!(counts.exact, pts.len() as u64);
        assert_eq!(counts.total(), pts.len() as u64);
    }

    #[test]
    fn same_blob_points_land_in_same_cluster() {
        let (engine, pts, labels) = trained_engine();
        // New points near each blob center must agree with the blob's
        // training assignments.
        let reference: Vec<usize> = pts.iter().map(|p| engine.assign(p).cluster).collect();
        for (ci, center) in [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]]
            .iter()
            .enumerate()
        {
            let probe = vec![center[0] + 0.002, center[1] + 0.002];
            let assigned = engine.assign(&probe).cluster;
            let expected = reference
                .iter()
                .zip(&labels)
                .find(|&(_, &l)| l == ci)
                .map(|(&c, _)| c)
                .unwrap();
            assert_eq!(assigned, expected, "blob {ci}");
        }
    }

    #[test]
    #[should_panic(expected = "expected 2 dimensions")]
    fn wrong_dimension_panics() {
        let (engine, _, _) = trained_engine();
        engine.assign(&[0.5]);
    }

    #[test]
    fn batch_matches_single() {
        let (engine, pts, _) = trained_engine();
        let batch = engine.assign_batch(&pts);
        for (p, a) in pts.iter().zip(&batch) {
            assert_eq!(engine.assign(p), *a);
        }
    }
}
