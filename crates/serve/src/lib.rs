//! Online model serving for DASC.
//!
//! The offline pipeline (Section 3 of the paper) produces a clustering
//! of the training set; this crate turns that run into a **persistable,
//! queryable model** so new points can be assigned to clusters without
//! re-running the pipeline:
//!
//! * [`ModelArtifact`] — a versioned snapshot of a trained pipeline:
//!   the frozen LSH signature model (histogram-valley thresholds), the
//!   bucket signature table, per-bucket cluster centroids in input
//!   space, the global centroid table, and the [`DascConfig`]
//!   provenance. Saved/loaded with a self-describing binary format that
//!   rejects foreign or truncated files.
//! * [`AssignmentEngine`] — the online counterpart of Algorithm 1: hash
//!   the incoming point with the frozen model, route it
//!   *exact-signature* → *one-bit-differs neighbor* (the paper's Eq. 6
//!   trick) → *global nearest centroid*, and return the cluster id in
//!   `O(M + K·d)` with per-stage routing counters.
//! * [`Server`] — a thread-per-worker HTTP/1.1 JSON service over an
//!   immutable engine shared behind `Arc`, with batched bulk
//!   assignment, per-endpoint latency/QPS counters, a Prometheus-style
//!   `GET /metrics` endpoint (backed by the `dasc-obs` registry), and
//!   graceful shutdown. No external dependencies: framing and JSON are
//!   hand-rolled in [`http`] and [`json`].
//!
//! [`DascConfig`]: dasc_core::DascConfig

pub mod artifact;
pub mod codec;
pub mod engine;
pub mod http;
pub mod json;
pub mod server;
pub mod stats;

pub use artifact::{ArtifactError, BucketClusters, ModelArtifact, FORMAT_VERSION};
pub use engine::{Assignment, AssignmentEngine, Route, RoutingCounts};
pub use json::JsonValue;
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::{EndpointStats, LatencyRecorder};
