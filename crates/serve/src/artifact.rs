//! Versioned, persistable snapshot of a trained DASC pipeline.
//!
//! The artifact captures everything the online assignment path needs,
//! and nothing else — in particular no training points:
//!
//! * the frozen LSH signature model (hash planes with their
//!   histogram-valley thresholds, Eq. 5);
//! * the **signature table**: every signature observed in training,
//!   mapped to its (merged) bucket — merged buckets keep all their
//!   constituent signatures, so exact-match routing works for any
//!   signature the training set produced;
//! * per-bucket cluster centroids in input space, labelled with global
//!   cluster ids (post-consolidation);
//! * the global centroid table for last-resort routing;
//! * the [`DascConfig`] that produced the model, for provenance.
//!
//! # On-disk format
//!
//! Little-endian throughout (see [`crate::codec`]):
//!
//! ```text
//! magic   8 bytes  "DASCMODL"
//! version u32      FORMAT_VERSION
//! d, K, N u64 ×3   dimension, clusters, training points
//! config           DascConfig (tagged enums, fixed scalars)
//! planes           count + (dimension u64, threshold f64) each
//! table            count + (signature bits u64, bucket u32) each
//! buckets          count + per bucket: count + (id u32, centroid) each
//! globals          count + (id u32, centroid) each
//! ```
//!
//! Loading verifies the magic, refuses any version other than
//! [`FORMAT_VERSION`], detects truncation, and cross-checks every
//! index/dimension so a loaded artifact is structurally sound.

use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dasc_core::{Clustering, DascConfig, DascTrained, DascTrainedDistributed};
use dasc_kernel::Kernel;
use dasc_lsh::{
    BucketSet, DimensionSelection, HashPlane, LshConfig, MergeStrategy, Signature, SignatureModel,
    ThresholdRule,
};

use crate::codec::{DecodeError, Decoder, Encoder};

/// File magic: identifies a DASC model artifact.
pub const MAGIC: &[u8; 8] = b"DASCMODL";

/// Current artifact format version. Bump on any layout change; loading
/// rejects every other version.
pub const FORMAT_VERSION: u32 = 1;

/// Largest vector length accepted while decoding (guards allocations
/// against corrupt length prefixes).
const MAX_DECODE_LEN: usize = 1 << 28;

/// The clusters living inside one (merged) bucket: global cluster id
/// plus the input-space centroid of the bucket's members in it.
#[derive(Clone, Debug, PartialEq)]
pub struct BucketClusters {
    /// `(global cluster id, centroid)` pairs, one per cluster with at
    /// least one training point in this bucket.
    pub clusters: Vec<(u32, Vec<f64>)>,
}

/// A trained, persistable DASC model.
#[derive(Clone, Debug)]
pub struct ModelArtifact {
    /// Training configuration (provenance; the engine re-derives
    /// nothing from it).
    pub config: DascConfig,
    /// Input dimensionality `d`.
    pub dimension: usize,
    /// Number of global clusters `K`.
    pub num_clusters: usize,
    /// Number of training points `N`.
    pub trained_points: usize,
    /// Frozen hash planes, bit 0 first.
    pub planes: Vec<HashPlane>,
    /// Observed signature → bucket index, sorted by signature bits.
    pub signature_table: Vec<(u64, u32)>,
    /// Per-bucket cluster centroids, indexed by bucket.
    pub buckets: Vec<BucketClusters>,
    /// `(global cluster id, centroid)` for every non-empty cluster.
    pub global_centroids: Vec<(u32, Vec<f64>)>,
}

/// Why an artifact failed to save or load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The stream ended before the structure was complete.
    Truncated,
    /// The structure decoded but is internally inconsistent.
    Corrupt(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::BadMagic => {
                write!(f, "not a DASC model artifact (bad magic)")
            }
            ArtifactError::UnsupportedVersion(v) => write!(
                f,
                "unsupported artifact format version {v} (expected {FORMAT_VERSION})"
            ),
            ArtifactError::Truncated => write!(f, "artifact file is truncated"),
            ArtifactError::Corrupt(why) => write!(f, "artifact is corrupt: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<DecodeError> for ArtifactError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Truncated => ArtifactError::Truncated,
            DecodeError::Io(e) => ArtifactError::Io(e),
        }
    }
}

impl ModelArtifact {
    /// Snapshot a serial training run ([`dasc_core::Dasc::train`]).
    ///
    /// `points` must be the training set the run was produced from —
    /// centroids are computed here, in input space.
    pub fn from_trained(trained: &DascTrained, points: &[Vec<f64>]) -> Self {
        Self::build(
            trained.config.clone(),
            &trained.result.clustering,
            &trained.result.buckets,
            &trained.model,
            &trained.signatures,
            points,
        )
    }

    /// Snapshot a distributed training run
    /// ([`dasc_core::Dasc::train_distributed`]).
    pub fn from_trained_distributed(trained: &DascTrainedDistributed, points: &[Vec<f64>]) -> Self {
        Self::build(
            trained.config.clone(),
            &trained.result.clustering,
            &trained.buckets,
            &trained.model,
            &trained.signatures,
            points,
        )
    }

    fn build(
        config: DascConfig,
        clustering: &Clustering,
        buckets: &BucketSet,
        model: &SignatureModel,
        signatures: &[Signature],
        points: &[Vec<f64>],
    ) -> Self {
        assert_eq!(points.len(), signatures.len(), "artifact: signature count");
        assert_eq!(points.len(), clustering.len(), "artifact: assignment count");
        assert!(!points.is_empty(), "artifact: empty training set");
        let d = points[0].len();
        let bucket_of = buckets.assignments();

        // Signature table: every observed signature, including all
        // constituents of merged buckets (merged buckets only retain
        // their representative signature, so per-point signatures are
        // the source of truth here).
        let mut table: HashMap<u64, u32> = HashMap::new();
        for (sig, &b) in signatures.iter().zip(&bucket_of) {
            table.insert(sig.bits(), b as u32);
        }
        let mut signature_table: Vec<(u64, u32)> = table.into_iter().collect();
        signature_table.sort_unstable();

        // Per-bucket per-global-cluster centroids.
        let mut sums: Vec<HashMap<u32, (Vec<f64>, usize)>> = vec![HashMap::new(); buckets.len()];
        let mut global_sums: HashMap<u32, (Vec<f64>, usize)> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            let cid = clustering.assignments[i] as u32;
            for (sum, count) in [
                sums[bucket_of[i]]
                    .entry(cid)
                    .or_insert_with(|| (vec![0.0; d], 0)),
                global_sums.entry(cid).or_insert_with(|| (vec![0.0; d], 0)),
            ] {
                for (s, &v) in sum.iter_mut().zip(p) {
                    *s += v;
                }
                *count += 1;
            }
        }
        let finish = |m: HashMap<u32, (Vec<f64>, usize)>| {
            let mut out: Vec<(u32, Vec<f64>)> = m
                .into_iter()
                .map(|(id, (mut sum, count))| {
                    for v in &mut sum {
                        *v /= count as f64;
                    }
                    (id, sum)
                })
                .collect();
            out.sort_by_key(|&(id, _)| id);
            out
        };
        let bucket_clusters: Vec<BucketClusters> = sums
            .into_iter()
            .map(|m| BucketClusters {
                clusters: finish(m),
            })
            .collect();
        let global_centroids = finish(global_sums);

        Self {
            config,
            dimension: d,
            num_clusters: clustering.num_clusters,
            trained_points: points.len(),
            planes: model.planes().to_vec(),
            signature_table,
            buckets: bucket_clusters,
            global_centroids,
        }
    }

    /// Override the stored provenance config.
    pub fn with_config(mut self, config: DascConfig) -> Self {
        self.config = config;
        self
    }

    /// Reassemble the frozen signature model.
    pub fn signature_model(&self) -> SignatureModel {
        SignatureModel::from_planes(self.planes.clone())
    }

    /// Save to a file (buffered, atomic only at the filesystem's mercy).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Load from a file, verifying magic, version, and structure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let file = File::open(path)?;
        Self::read_from(BufReader::new(file))
    }

    /// Serialize to any sink in the versioned binary format.
    pub fn write_to<W: Write>(&self, sink: W) -> Result<(), ArtifactError> {
        let mut e = Encoder::new(sink);
        e.bytes(MAGIC)?;
        e.u32(FORMAT_VERSION)?;
        e.u64(self.dimension as u64)?;
        e.u64(self.num_clusters as u64)?;
        e.u64(self.trained_points as u64)?;
        write_config(&mut e, &self.config)?;
        e.u64(self.planes.len() as u64)?;
        for p in &self.planes {
            e.u64(p.dimension as u64)?;
            e.f64(p.threshold)?;
        }
        e.u64(self.signature_table.len() as u64)?;
        for &(bits, bucket) in &self.signature_table {
            e.u64(bits)?;
            e.u32(bucket)?;
        }
        e.u64(self.buckets.len() as u64)?;
        for b in &self.buckets {
            e.u64(b.clusters.len() as u64)?;
            for (id, c) in &b.clusters {
                e.u32(*id)?;
                e.f64_slice(c)?;
            }
        }
        e.u64(self.global_centroids.len() as u64)?;
        for (id, c) in &self.global_centroids {
            e.u32(*id)?;
            e.f64_slice(c)?;
        }
        e.finish()?;
        Ok(())
    }

    /// Deserialize from any source, validating as it goes.
    pub fn read_from<R: Read>(source: R) -> Result<Self, ArtifactError> {
        let mut d = Decoder::new(source);
        let mut magic = [0u8; 8];
        d.bytes(&mut magic)?;
        if &magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = d.u32()?;
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let dimension = d.u64()? as usize;
        let num_clusters = d.u64()? as usize;
        let trained_points = d.u64()? as usize;
        if dimension == 0 {
            return Err(ArtifactError::Corrupt("zero dimension".into()));
        }
        let config = read_config(&mut d)?;

        let num_planes = bounded(d.u64()?, Signature::MAX_BITS, "planes")?;
        let mut planes = Vec::with_capacity(num_planes);
        for _ in 0..num_planes {
            planes.push(HashPlane {
                dimension: d.u64()? as usize,
                threshold: d.f64()?,
            });
        }
        if planes.is_empty() {
            return Err(ArtifactError::Corrupt("no hash planes".into()));
        }
        if planes.iter().any(|p| p.dimension >= dimension) {
            return Err(ArtifactError::Corrupt(
                "hash plane dimension out of range".into(),
            ));
        }

        let table_len = bounded(d.u64()?, MAX_DECODE_LEN, "signature table")?;
        let mut signature_table = Vec::with_capacity(table_len);
        for _ in 0..table_len {
            signature_table.push((d.u64()?, d.u32()?));
        }

        let num_buckets = bounded(d.u64()?, MAX_DECODE_LEN, "buckets")?;
        let mut buckets = Vec::with_capacity(num_buckets);
        for _ in 0..num_buckets {
            let nc = bounded(d.u64()?, MAX_DECODE_LEN, "bucket clusters")?;
            let mut clusters = Vec::with_capacity(nc);
            for _ in 0..nc {
                let id = d.u32()?;
                let c = d.f64_vec(MAX_DECODE_LEN)?;
                clusters.push((id, c));
            }
            buckets.push(BucketClusters { clusters });
        }

        let ng = bounded(d.u64()?, MAX_DECODE_LEN, "global centroids")?;
        let mut global_centroids = Vec::with_capacity(ng);
        for _ in 0..ng {
            let id = d.u32()?;
            let c = d.f64_vec(MAX_DECODE_LEN)?;
            global_centroids.push((id, c));
        }

        let artifact = Self {
            config,
            dimension,
            num_clusters,
            trained_points,
            planes,
            signature_table,
            buckets,
            global_centroids,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Structural invariants every loaded artifact must satisfy.
    fn validate(&self) -> Result<(), ArtifactError> {
        let nb = self.buckets.len() as u32;
        if self.signature_table.iter().any(|&(_, b)| b >= nb) {
            return Err(ArtifactError::Corrupt(
                "signature table references a missing bucket".into(),
            ));
        }
        let centroid_ok =
            |id: u32, c: &Vec<f64>| (id as usize) < self.num_clusters && c.len() == self.dimension;
        for b in &self.buckets {
            if !b.clusters.iter().all(|(id, c)| centroid_ok(*id, c)) {
                return Err(ArtifactError::Corrupt(
                    "bucket centroid with bad cluster id or dimension".into(),
                ));
            }
        }
        if !self
            .global_centroids
            .iter()
            .all(|(id, c)| centroid_ok(*id, c))
        {
            return Err(ArtifactError::Corrupt(
                "global centroid with bad cluster id or dimension".into(),
            ));
        }
        if self.global_centroids.is_empty() {
            return Err(ArtifactError::Corrupt("no global centroids".into()));
        }
        Ok(())
    }
}

fn bounded(v: u64, max: usize, what: &str) -> Result<usize, ArtifactError> {
    let v = v as usize;
    if v > max {
        return Err(ArtifactError::Corrupt(format!(
            "{what} length {v} exceeds limit {max}"
        )));
    }
    Ok(v)
}

fn write_config<W: Write>(e: &mut Encoder<W>, c: &DascConfig) -> Result<(), ArtifactError> {
    e.u64(c.k as u64)?;
    match c.kernel {
        Kernel::Gaussian { sigma } => {
            e.u8(0)?;
            e.f64(sigma)?;
        }
        Kernel::Linear => e.u8(1)?,
        Kernel::Polynomial { degree, c: cc } => {
            e.u8(2)?;
            e.u32(degree)?;
            e.f64(cc)?;
        }
        Kernel::Laplacian { gamma } => {
            e.u8(3)?;
            e.f64(gamma)?;
        }
    }
    e.u64(c.lsh.num_bits as u64)?;
    e.u64(c.lsh.merge_p as u64)?;
    e.u64(c.lsh.histogram_bins as u64)?;
    match c.lsh.selection {
        DimensionSelection::TopSpan => e.u8(0)?,
        DimensionSelection::SpanWeighted { seed } => {
            e.u8(1)?;
            e.u64(seed)?;
        }
    }
    e.u8(match c.lsh.threshold_rule {
        ThresholdRule::HistogramValley => 0,
        ThresholdRule::Median => 1,
        ThresholdRule::Midpoint => 2,
    })?;
    e.u8(match c.lsh.merge_strategy {
        MergeStrategy::GreedyPairs => 0,
        MergeStrategy::TransitiveClosure => 1,
        MergeStrategy::None => 2,
    })?;
    e.f64(c.lsh.balance_fraction)?;
    e.u64(c.lanczos_threshold as u64)?;
    e.u8(c.consolidate as u8)?;
    e.u64(c.seed)?;
    Ok(())
}

fn read_config<R: Read>(d: &mut Decoder<R>) -> Result<DascConfig, ArtifactError> {
    let k = d.u64()? as usize;
    let kernel = match d.u8()? {
        0 => Kernel::Gaussian { sigma: d.f64()? },
        1 => Kernel::Linear,
        2 => Kernel::Polynomial {
            degree: d.u32()?,
            c: d.f64()?,
        },
        3 => Kernel::Laplacian { gamma: d.f64()? },
        t => return Err(ArtifactError::Corrupt(format!("unknown kernel tag {t}"))),
    };
    let num_bits = d.u64()? as usize;
    let merge_p = d.u64()? as usize;
    let histogram_bins = d.u64()? as usize;
    let selection = match d.u8()? {
        0 => DimensionSelection::TopSpan,
        1 => DimensionSelection::SpanWeighted { seed: d.u64()? },
        t => {
            return Err(ArtifactError::Corrupt(format!(
                "unknown dimension-selection tag {t}"
            )))
        }
    };
    let threshold_rule = match d.u8()? {
        0 => ThresholdRule::HistogramValley,
        1 => ThresholdRule::Median,
        2 => ThresholdRule::Midpoint,
        t => {
            return Err(ArtifactError::Corrupt(format!(
                "unknown threshold-rule tag {t}"
            )))
        }
    };
    let merge_strategy = match d.u8()? {
        0 => MergeStrategy::GreedyPairs,
        1 => MergeStrategy::TransitiveClosure,
        2 => MergeStrategy::None,
        t => {
            return Err(ArtifactError::Corrupt(format!(
                "unknown merge-strategy tag {t}"
            )))
        }
    };
    let balance_fraction = d.f64()?;
    let lanczos_threshold = d.u64()? as usize;
    let consolidate = d.u8()? != 0;
    let seed = d.u64()?;
    Ok(DascConfig {
        k,
        kernel,
        lsh: LshConfig {
            num_bits,
            merge_p,
            histogram_bins,
            selection,
            threshold_rule,
            merge_strategy,
            balance_fraction,
        },
        lanczos_threshold,
        consolidate,
        seed,
    })
}
