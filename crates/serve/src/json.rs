//! Minimal JSON parser and writer (no external dependencies).
//!
//! Supports the full JSON value grammar with the restrictions the
//! serving API needs: numbers are `f64`, strings accept the standard
//! escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`, no surrogate pairing),
//! and parse depth is bounded to keep hostile payloads from blowing
//! the stack.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (sorted keys — deterministic output).
    Object(BTreeMap<String, JsonValue>),
}

/// Parse failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

impl JsonValue {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Borrow the object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Interpret as a numeric vector (`[1, 2.5, …]`).
    pub fn as_point(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(JsonValue::as_f64).collect()
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`JsonValue::Object`] from `(key, value)` pairs.
pub fn object<const N: usize>(pairs: [(&str, JsonValue); N]) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or(char::REPLACEMENT_CHARACTER));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let src = r#"{"point":[0.5,-1.25,3e2],"k":8,"ok":true,"tag":"a\"b","none":null}"#;
        let v = JsonValue::parse(src).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(8.0));
        assert_eq!(
            v.get("point").unwrap().as_point(),
            Some(vec![0.5, -1.25, 300.0])
        );
        assert_eq!(v.get("tag").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        // Serialize → parse → identical value.
        let again = JsonValue::parse(&v.to_json()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn object_builder_and_integers() {
        let v = object([
            ("cluster", 3usize.into()),
            ("route", "exact".into()),
            ("qps", 12345.678.into()),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"cluster":3,"qps":12345.678,"route":"exact"}"#
        );
    }

    #[test]
    fn unicode_strings_survive() {
        let v = JsonValue::parse(r#""café → naïve""#).unwrap();
        assert_eq!(v.as_str(), Some("café → naïve"));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
    }
}
