//! Little-endian binary reader/writer for the artifact format.
//!
//! The format is deliberately primitive — fixed-width little-endian
//! scalars with explicit length prefixes — so it has no external
//! dependencies and the on-disk layout is auditable byte by byte.

use std::io::{self, Read, Write};

/// Buffered little-endian writer.
pub struct Encoder<W: Write> {
    inner: W,
}

impl<W: Write> Encoder<W> {
    /// Wrap a sink.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Raw bytes, no length prefix.
    pub fn bytes(&mut self, b: &[u8]) -> io::Result<()> {
        self.inner.write_all(b)
    }

    /// `u8`.
    pub fn u8(&mut self, v: u8) -> io::Result<()> {
        self.inner.write_all(&[v])
    }

    /// `u32`, little endian.
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// `u64`, little endian.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// `f64`, little-endian IEEE 754 bits.
    pub fn f64(&mut self, v: f64) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// Length-prefixed (`u64`) slice of `f64`.
    pub fn f64_slice(&mut self, v: &[f64]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        for &x in v {
            self.f64(x)?;
        }
        Ok(())
    }

    /// Flush and recover the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Reader with truncation-aware errors.
pub struct Decoder<R: Read> {
    inner: R,
}

/// Decoding failure: the stream ended early or I/O failed.
#[derive(Debug)]
pub enum DecodeError {
    /// Stream ended mid-value.
    Truncated,
    /// Underlying I/O error.
    Io(io::Error),
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            DecodeError::Truncated
        } else {
            DecodeError::Io(e)
        }
    }
}

impl<R: Read> Decoder<R> {
    /// Wrap a source.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    fn exact<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let mut buf = [0u8; N];
        self.inner.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Raw bytes into `buf`.
    pub fn bytes(&mut self, buf: &mut [u8]) -> Result<(), DecodeError> {
        self.inner.read_exact(buf)?;
        Ok(())
    }

    /// `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.exact::<1>()?[0])
    }

    /// `u32`, little endian.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.exact::<4>()?))
    }

    /// `u64`, little endian.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.exact::<8>()?))
    }

    /// `f64`, little-endian IEEE 754 bits.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.exact::<8>()?))
    }

    /// Length-prefixed (`u64`) vector of `f64`, capped at `max_len`
    /// elements so a corrupt prefix can't trigger a huge allocation.
    pub fn f64_vec(&mut self, max_len: usize) -> Result<Vec<f64>, DecodeError> {
        let len = self.u64()? as usize;
        if len > max_len {
            return Err(DecodeError::Truncated);
        }
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.f64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut enc = Encoder::new(Vec::new());
        enc.u8(7).unwrap();
        enc.u32(0xDEAD_BEEF).unwrap();
        enc.u64(u64::MAX - 3).unwrap();
        enc.f64(-1.5e300).unwrap();
        enc.f64_slice(&[0.0, 1.25, -2.5]).unwrap();
        let buf = enc.finish().unwrap();

        let mut dec = Decoder::new(&buf[..]);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.f64().unwrap(), -1.5e300);
        assert_eq!(dec.f64_vec(16).unwrap(), vec![0.0, 1.25, -2.5]);
    }

    #[test]
    fn truncation_is_detected() {
        let mut enc = Encoder::new(Vec::new());
        enc.u64(42).unwrap();
        let buf = enc.finish().unwrap();
        let mut dec = Decoder::new(&buf[..4]);
        assert!(matches!(dec.u64(), Err(DecodeError::Truncated)));
    }

    #[test]
    fn oversized_vec_prefix_rejected() {
        let mut enc = Encoder::new(Vec::new());
        enc.u64(1 << 40).unwrap(); // absurd length claim
        let buf = enc.finish().unwrap();
        let mut dec = Decoder::new(&buf[..]);
        assert!(matches!(dec.f64_vec(1024), Err(DecodeError::Truncated)));
    }
}
