//! Configuration of the LSH preprocessing stage.

use crate::default_signature_bits;

/// How hashing dimensions are chosen from the input space (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DimensionSelection {
    /// Deterministically take the `M` dimensions with the largest
    /// numerical span ("order the importance of the d dimensions based
    /// on the numerical span … pick the dimensions with highest M
    /// spans"). This is the paper's evaluated setting.
    TopSpan,
    /// Sample dimensions with probability proportional to their span
    /// (Eq. 4), with replacement — the randomized variant the paper
    /// describes when motivating the family. The seed makes it
    /// reproducible.
    SpanWeighted {
        /// RNG seed for the dimension draw.
        seed: u64,
    },
}

/// How the per-dimension split threshold is chosen (Eq. 5 and the
/// ablation alternatives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdRule {
    /// Lower edge of the least-populated histogram bin (Eq. 5) — the
    /// paper's rule: split through a valley of the marginal density.
    HistogramValley,
    /// Median of the dimension — splits mass evenly regardless of
    /// structure (ablation baseline).
    Median,
    /// Midpoint `(min + max)/2` (ablation baseline).
    Midpoint,
}

/// How P-similar buckets are combined after the shuffle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Greedy disjoint pairs ([`crate::BucketSet::merge_greedy_pairs`]):
    /// combines adjacent buckets without chaining, preserving at least
    /// half the buckets. DASC's default — on dense signature spaces the
    /// transitive closure under `P = M − 1` connects the whole Hamming
    /// cube and would collapse the partition.
    GreedyPairs,
    /// Full transitive closure ([`crate::BucketSet::merge_similar`]).
    TransitiveClosure,
    /// No merging.
    None,
}

/// Configuration for [`crate::SignatureModel`] training and hashing.
#[derive(Clone, Debug)]
pub struct LshConfig {
    /// Signature width `M` in bits. Defaults to the paper's rule
    /// `⌈log₂N⌉/2 − 1` when built via [`LshConfig::for_dataset`].
    pub num_bits: usize,
    /// Bucket-merge threshold `P`: buckets whose signatures share at
    /// least `P` bits merge. The paper sets `P = M − 1`.
    pub merge_p: usize,
    /// Histogram resolution used for threshold selection (the paper
    /// fixes 20 bins, Eq. 5).
    pub histogram_bins: usize,
    /// Dimension selection strategy.
    pub selection: DimensionSelection,
    /// Threshold selection rule.
    pub threshold_rule: ThresholdRule,
    /// Bucket-merge strategy.
    pub merge_strategy: MergeStrategy,
    /// Minimum fraction of points each side of a histogram-valley cut
    /// must keep (robustness floor over the paper's Eq. 5; see
    /// `SignatureModel`). `0.0` reproduces the paper's literal rule.
    pub balance_fraction: f64,
}

impl LshConfig {
    /// Paper defaults for a dataset of `n` points:
    /// `M = ⌈log₂N⌉/2 − 1`, `P = M − 1`, 20 histogram bins, top-span
    /// dimension selection.
    pub fn for_dataset(n: usize) -> Self {
        let m = default_signature_bits(n);
        Self {
            num_bits: m,
            merge_p: m.saturating_sub(1),
            histogram_bins: 20,
            selection: DimensionSelection::TopSpan,
            threshold_rule: ThresholdRule::HistogramValley,
            merge_strategy: MergeStrategy::GreedyPairs,
            balance_fraction: 0.05,
        }
    }

    /// Explicit signature width, keeping `P = M − 1` and the other paper
    /// defaults.
    pub fn with_bits(m: usize) -> Self {
        assert!(m >= 1, "at least one signature bit required");
        Self {
            num_bits: m,
            merge_p: m.saturating_sub(1),
            histogram_bins: 20,
            selection: DimensionSelection::TopSpan,
            threshold_rule: ThresholdRule::HistogramValley,
            merge_strategy: MergeStrategy::GreedyPairs,
            balance_fraction: 0.05,
        }
    }

    /// Override the merge threshold `P` (builder style).
    pub fn merge_p(mut self, p: usize) -> Self {
        assert!(p <= self.num_bits, "P cannot exceed M");
        self.merge_p = p;
        self
    }

    /// Override the dimension-selection strategy (builder style).
    pub fn selection(mut self, s: DimensionSelection) -> Self {
        self.selection = s;
        self
    }

    /// Override the threshold rule (builder style).
    pub fn threshold_rule(mut self, r: ThresholdRule) -> Self {
        self.threshold_rule = r;
        self
    }

    /// Override the merge strategy (builder style).
    pub fn merge_strategy(mut self, s: MergeStrategy) -> Self {
        self.merge_strategy = s;
        self
    }

    /// Override the valley-cut balance floor (builder style).
    ///
    /// # Panics
    /// Panics unless `f ∈ [0, 0.5]`.
    pub fn balance_fraction(mut self, f: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&f),
            "balance fraction must be in [0, 0.5]"
        );
        self.balance_fraction = f;
        self
    }

    /// Number of Hamming-distance bits tolerated when merging
    /// (`M − P`).
    pub fn merge_radius(&self) -> usize {
        self.num_bits - self.merge_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_dataset_uses_paper_rule() {
        let c = LshConfig::for_dataset(1 << 18);
        assert_eq!(c.num_bits, 8);
        assert_eq!(c.merge_p, 7);
        assert_eq!(c.histogram_bins, 20);
        assert_eq!(c.selection, DimensionSelection::TopSpan);
        assert_eq!(c.merge_radius(), 1);
    }

    #[test]
    fn builders_compose() {
        let c = LshConfig::with_bits(10)
            .merge_p(8)
            .selection(DimensionSelection::SpanWeighted { seed: 3 })
            .threshold_rule(ThresholdRule::Median);
        assert_eq!(c.num_bits, 10);
        assert_eq!(c.merge_p, 8);
        assert_eq!(c.merge_radius(), 2);
        assert_eq!(c.threshold_rule, ThresholdRule::Median);
    }

    #[test]
    #[should_panic(expected = "P cannot exceed M")]
    fn p_above_m_panics() {
        LshConfig::with_bits(4).merge_p(5);
    }

    #[test]
    #[should_panic(expected = "at least one signature bit")]
    fn zero_bits_panics() {
        LshConfig::with_bits(0);
    }
}
