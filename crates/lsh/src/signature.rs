//! Packed binary signatures and Hamming-space operations.

use std::fmt;

/// An `M`-bit binary signature, packed into a `u64`.
///
/// Every configuration in the paper satisfies `M ≤ 64` comfortably
/// (`M = ⌈log₂N⌉/2 − 1 ≤ 15` even at a billion points), so one word is
/// the right representation: comparisons are single XORs, matching the
/// O(1) claim of Eq. 6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signature {
    bits: u64,
    len: u8,
}

impl Signature {
    /// Maximum supported width.
    pub const MAX_BITS: usize = 64;

    /// Create an all-zero signature of `len` bits.
    ///
    /// # Panics
    /// Panics if `len` is zero or exceeds [`Signature::MAX_BITS`].
    pub fn zero(len: usize) -> Self {
        assert!(
            (1..=Self::MAX_BITS).contains(&len),
            "signature length must be in 1..=64, got {len}"
        );
        Self {
            bits: 0,
            len: len as u8,
        }
    }

    /// Create from a raw bit pattern (low `len` bits are kept).
    pub fn from_bits(bits: u64, len: usize) -> Self {
        let mut s = Self::zero(len);
        s.bits = bits & s.mask();
        s
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.len as usize == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// Number of bits in the signature.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Signatures are never empty; kept for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Raw packed bits.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Set bit `i` (0 = least significant) to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len(), "bit index {i} out of range");
        if value {
            self.bits |= 1u64 << i;
        } else {
            self.bits &= !(1u64 << i);
        }
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Hamming distance to another signature of the same width.
    ///
    /// # Panics
    /// Panics if the widths differ.
    #[inline]
    pub fn hamming(&self, other: &Signature) -> u32 {
        assert_eq!(self.len, other.len, "hamming: width mismatch");
        (self.bits ^ other.bits).count_ones()
    }

    /// Number of agreeing bits (`M − hamming`).
    #[inline]
    pub fn common_bits(&self, other: &Signature) -> u32 {
        self.len() as u32 - self.hamming(other)
    }

    /// The paper's Eq. 6 test: true iff the signatures differ in exactly
    /// one bit, evaluated as `(A⊕B) & (A⊕B − 1) == 0` with a non-zero
    /// XOR. O(1) regardless of `M`.
    #[inline]
    pub fn differs_by_one(&self, other: &Signature) -> bool {
        debug_assert_eq!(self.len, other.len);
        let x = self.bits ^ other.bits;
        x != 0 && x & x.wrapping_sub(1) == 0
    }

    /// True iff the signatures share at least `p` bits. For `p = M − 1`
    /// this is `differs_by_one` or equality.
    #[inline]
    pub fn at_least_p_common(&self, other: &Signature, p: usize) -> bool {
        self.common_bits(other) as usize >= p
    }

    /// Binary string rendering, most significant bit first (matches the
    /// string signatures built by Algorithm 1).
    pub fn to_bit_string(&self) -> String {
        (0..self.len())
            .rev()
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({})", self.to_bit_string())
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bit_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut s = Signature::zero(8);
        s.set(0, true);
        s.set(7, true);
        assert!(s.get(0));
        assert!(!s.get(3));
        assert!(s.get(7));
        assert_eq!(s.bits(), 0b1000_0001);
        s.set(0, false);
        assert!(!s.get(0));
    }

    #[test]
    fn from_bits_masks_excess() {
        let s = Signature::from_bits(0xFF, 4);
        assert_eq!(s.bits(), 0x0F);
    }

    #[test]
    fn hamming_distance() {
        let a = Signature::from_bits(0b1010, 4);
        let b = Signature::from_bits(0b0110, 4);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.common_bits(&b), 2);
    }

    #[test]
    fn eq6_bit_trick() {
        let a = Signature::from_bits(0b1010, 4);
        let one_off = Signature::from_bits(0b1011, 4);
        let two_off = Signature::from_bits(0b1001, 4);
        assert!(a.differs_by_one(&one_off));
        assert!(!a.differs_by_one(&two_off));
        assert!(
            !a.differs_by_one(&a),
            "identical signatures differ in 0 bits"
        );
    }

    #[test]
    fn p_common_threshold() {
        let a = Signature::from_bits(0b1111, 4);
        let b = Signature::from_bits(0b1110, 4);
        assert!(a.at_least_p_common(&b, 3)); // P = M-1
        assert!(!a.at_least_p_common(&b, 4));
        assert!(a.at_least_p_common(&a, 4));
    }

    #[test]
    fn full_width_64() {
        let a = Signature::from_bits(u64::MAX, 64);
        let b = Signature::from_bits(u64::MAX - 1, 64);
        assert_eq!(a.hamming(&b), 1);
        assert!(a.differs_by_one(&b));
    }

    #[test]
    fn bit_string_msb_first() {
        let s = Signature::from_bits(0b0110, 4);
        assert_eq!(s.to_bit_string(), "0110");
        assert_eq!(format!("{s}"), "0110");
    }

    #[test]
    #[should_panic(expected = "signature length")]
    fn zero_length_panics() {
        Signature::zero(0);
    }

    #[test]
    #[should_panic(expected = "signature length")]
    fn over_64_panics() {
        Signature::zero(65);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_bit_panics() {
        Signature::zero(4).get(4);
    }

    #[test]
    fn ord_is_total_and_consistent() {
        let a = Signature::from_bits(1, 8);
        let b = Signature::from_bits(2, 8);
        assert!(a < b);
        let mut v = vec![b, a];
        v.sort();
        assert_eq!(v, vec![a, b]);
    }
}
