//! The paper's hash family: span-weighted axis-aligned thresholds.
//!
//! Training follows Section 3.3/4.2 exactly:
//!
//! * the numerical span of every dimension is measured (`max − min`);
//! * hashing dimensions are chosen by span — deterministically the top
//!   `M` spans (the evaluated setting) or randomly with probability
//!   `span[i] / Σ span` (Eq. 4);
//! * each chosen dimension's threshold is the lower edge of the
//!   least-populated of 20 histogram bins (Eq. 5) — a "valley" of the
//!   marginal distribution, so the cut avoids slicing through a dense
//!   cluster;
//! * bit `i` of a point's signature is 1 iff the point's value along the
//!   dimension exceeds the threshold.

use dasc_linalg::PointsView;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::config::{DimensionSelection, LshConfig, ThresholdRule};
use crate::signature::Signature;

/// One axis-aligned splitting hyperplane (k-d-tree style).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HashPlane {
    /// Input dimension compared by this bit.
    pub dimension: usize,
    /// Threshold from the histogram-valley rule (Eq. 5).
    pub threshold: f64,
}

/// A trained signature model: `M` hash planes applied in order.
#[derive(Clone, Debug)]
pub struct SignatureModel {
    planes: Vec<HashPlane>,
}

impl SignatureModel {
    /// Train a model on a dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty, has zero dimensions, or rows are
    /// ragged.
    pub fn fit(points: &[Vec<f64>], config: &LshConfig) -> Self {
        if let Some(first) = points.first() {
            let d = first.len();
            assert!(
                points.iter().all(|p| p.len() == d),
                "SignatureModel::fit: ragged dataset"
            );
        }
        Self::fit_view(points, config)
    }

    /// [`SignatureModel::fit`] over any [`PointsView`] storage —
    /// nested rows, flat buffers, or an out-of-core store reader. The
    /// iteration order is row-by-row in index order, identical to the
    /// nested path, so the trained planes are bit-identical across
    /// storage layouts.
    ///
    /// # Panics
    /// Panics if the view is empty or zero-dimensional.
    pub fn fit_view<P: PointsView + ?Sized>(points: &P, config: &LshConfig) -> Self {
        assert!(!points.is_empty(), "SignatureModel::fit: empty dataset");
        let d = points.dim();
        assert!(d > 0, "SignatureModel::fit: zero-dimensional points");
        let m = config.num_bits;

        // Per-dimension extrema and spans.
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for i in 0..points.len() {
            for (j, &v) in points.row(i).iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let spans: Vec<f64> = (0..d).map(|j| maxs[j] - mins[j]).collect();

        let dims = select_dimensions(&spans, m, config.selection);
        let planes = dims
            .into_iter()
            .map(|j| HashPlane {
                dimension: j,
                threshold: match config.threshold_rule {
                    ThresholdRule::HistogramValley => histogram_valley_threshold(
                        points,
                        j,
                        mins[j],
                        spans[j],
                        config.histogram_bins,
                        config.balance_fraction,
                    ),
                    ThresholdRule::Median => median_threshold(points, j),
                    ThresholdRule::Midpoint => mins[j] + spans[j] / 2.0,
                },
            })
            .collect();
        Self { planes }
    }

    /// Reassemble a model from trained planes (bit 0 first) — the
    /// deserialization path for persisted models.
    ///
    /// # Panics
    /// Panics if `planes` is empty or wider than
    /// [`Signature::MAX_BITS`](crate::Signature::MAX_BITS).
    pub fn from_planes(planes: Vec<HashPlane>) -> Self {
        assert!(!planes.is_empty(), "SignatureModel: no planes");
        assert!(
            planes.len() <= Signature::MAX_BITS,
            "SignatureModel: more than {} planes",
            Signature::MAX_BITS
        );
        Self { planes }
    }

    /// The trained hash planes, bit 0 first.
    pub fn planes(&self) -> &[HashPlane] {
        &self.planes
    }

    /// Signature width `M`.
    pub fn num_bits(&self) -> usize {
        self.planes.len()
    }

    /// Hash one point (Algorithm 1).
    ///
    /// # Panics
    /// Panics if the point has fewer dimensions than any trained plane.
    pub fn hash(&self, point: &[f64]) -> Signature {
        let mut sig = Signature::zero(self.planes.len());
        for (i, plane) in self.planes.iter().enumerate() {
            if point[plane.dimension] > plane.threshold {
                sig.set(i, true);
            }
        }
        sig
    }

    /// Hash a whole dataset (point-parallel; signature `i` is always
    /// point `i`'s, so the output is independent of thread count).
    pub fn hash_all(&self, points: &[Vec<f64>]) -> Vec<Signature> {
        use rayon::prelude::*;
        points.par_iter().map(|p| self.hash(p)).collect()
    }
}

/// Eq. 4 / top-span dimension selection.
fn select_dimensions(spans: &[f64], m: usize, selection: DimensionSelection) -> Vec<usize> {
    let d = spans.len();
    match selection {
        DimensionSelection::TopSpan => {
            let mut order: Vec<usize> = (0..d).collect();
            // Sort by span descending; ties broken by index for
            // determinism.
            order.sort_by(|&a, &b| {
                spans[b]
                    .partial_cmp(&spans[a])
                    .expect("NaN span")
                    .then(a.cmp(&b))
            });
            // If M > d the paper's construction reuses dimensions; cycle
            // through the ranking.
            (0..m).map(|i| order[i % d]).collect()
        }
        DimensionSelection::SpanWeighted { seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let total: f64 = spans.iter().sum();
            if total <= 0.0 {
                // Degenerate data (all dimensions constant): fall back to
                // uniform choice.
                return (0..m).map(|_| rng.gen_range(0..d)).collect();
            }
            (0..m)
                .map(|_| {
                    let mut u = rng.gen_range(0.0..total);
                    for (j, &s) in spans.iter().enumerate() {
                        if u < s {
                            return j;
                        }
                        u -= s;
                    }
                    d - 1
                })
                .collect()
        }
    }
}

/// Eq. 5: build a `bins`-bin histogram over `[min, min+span]` along
/// `dim`, find the least-populated bin `s` (first, on ties), and return
/// its lower edge `min + s·span/bins`.
///
/// Robustness refinement over the paper's literal rule: the candidate
/// bin must split the data so both sides keep at least a
/// `balance_fraction` share of the points. On heavily skewed marginals
/// (tf-idf features) the raw rule picks a near-empty bin in the extreme
/// tail and the "split" assigns ~everyone the same bit, collapsing the
/// whole partition into one bucket. The balance constraint preserves
/// Eq. 5's intent — cut through a density valley, not through a
/// cluster — while guaranteeing a real split; when no bin qualifies,
/// the median is the fallback. `balance_fraction = 0` reproduces the
/// paper's literal rule.
fn histogram_valley_threshold<P: PointsView + ?Sized>(
    points: &P,
    dim: usize,
    min: f64,
    span: f64,
    bins: usize,
    balance_fraction: f64,
) -> f64 {
    if span <= 0.0 || bins == 0 {
        // Constant dimension: any threshold at the value works; all
        // points land on the same side.
        return min;
    }
    let mut counts = vec![0usize; bins];
    for i in 0..points.len() {
        let rel = (points.row(i)[dim] - min) / span;
        let b = ((rel * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let n = points.len();
    let min_side = ((n as f64 * balance_fraction) as usize).max(1);
    // Thresholding at bin s's lower edge sends bins 0..s left.
    let mut left = 0usize;
    let mut best: Option<(usize, usize)> = None; // (count, bin)
    for (s, &c) in counts.iter().enumerate() {
        if s > 0 && left >= min_side && n - left >= min_side {
            match best {
                Some((bc, _)) if bc <= c => {}
                _ => best = Some((c, s)),
            }
        }
        left += c;
    }
    match best {
        Some((_, s)) => min + s as f64 * span / bins as f64,
        None => median_threshold(points, dim),
    }
}

/// Median of the values along `dim` (ablation threshold rule).
fn median_threshold<P: PointsView + ?Sized>(points: &P, dim: usize) -> f64 {
    let mut vals: Vec<f64> = (0..points.len()).map(|i| points.row(i)[dim]).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).expect("NaN value"));
    vals[vals.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 1-D clusters around 0.1 and 0.9.
    fn two_blobs_1d() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(vec![0.05 + 0.001 * i as f64]);
            pts.push(vec![0.85 + 0.001 * i as f64]);
        }
        pts
    }

    #[test]
    fn valley_threshold_separates_two_blobs() {
        let pts = two_blobs_1d();
        let model = SignatureModel::fit(&pts, &LshConfig::with_bits(1));
        let t = model.planes()[0].threshold;
        // The empty middle region is the histogram valley.
        assert!(t > 0.11 && t < 0.85, "threshold {t} not in the gap");
        // All low points hash 0, all high points hash 1.
        for p in &pts {
            let bit = model.hash(p).get(0);
            assert_eq!(bit, p[0] > t);
        }
    }

    #[test]
    fn top_span_picks_widest_dimension() {
        // dim 0 spans 0.01, dim 1 spans 1.0 → bit must use dim 1.
        let pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![0.5 + 0.0001 * i as f64, i as f64 / 100.0])
            .collect();
        let model = SignatureModel::fit(&pts, &LshConfig::with_bits(1));
        assert_eq!(model.planes()[0].dimension, 1);
    }

    #[test]
    fn m_larger_than_d_cycles_dimensions() {
        let pts: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let model = SignatureModel::fit(&pts, &LshConfig::with_bits(5));
        assert_eq!(model.num_bits(), 5);
        let dims: Vec<usize> = model.planes().iter().map(|p| p.dimension).collect();
        assert_eq!(dims, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn span_weighted_is_deterministic_per_seed() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (50 - i) as f64, 0.0])
            .collect();
        let cfg = LshConfig::with_bits(6).selection(DimensionSelection::SpanWeighted { seed: 9 });
        let a = SignatureModel::fit(&pts, &cfg);
        let b = SignatureModel::fit(&pts, &cfg);
        assert_eq!(a.planes(), b.planes());
        // Zero-span dim 2 must never be chosen when others have span.
        assert!(a.planes().iter().all(|p| p.dimension != 2));
    }

    #[test]
    fn constant_dataset_hashes_uniformly() {
        let pts: Vec<Vec<f64>> = (0..10).map(|_| vec![3.0, 3.0]).collect();
        let model = SignatureModel::fit(&pts, &LshConfig::with_bits(4));
        let sigs = model.hash_all(&pts);
        assert!(sigs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn close_points_collide_far_points_dont() {
        // Classic LSH property on clearly-separated blobs.
        let pts = two_blobs_1d();
        let model = SignatureModel::fit(&pts, &LshConfig::with_bits(1));
        let sigs = model.hash_all(&pts);
        // Points 0 and 2 are both "low" blob; 1 is "high" blob.
        assert_eq!(sigs[0], sigs[2]);
        assert_ne!(sigs[0], sigs[1]);
    }

    #[test]
    fn threshold_rules_differ_on_skewed_data() {
        // Skewed 1-D data: 90 points near 0, 10 near 1. Median lands in
        // the dense low mass; midpoint at 0.5; valley in the gap.
        let mut pts: Vec<Vec<f64>> = (0..90).map(|i| vec![0.001 * i as f64]).collect();
        pts.extend((0..10).map(|i| vec![0.95 + 0.001 * i as f64]));
        let valley = SignatureModel::fit(
            &pts,
            &LshConfig::with_bits(1).threshold_rule(ThresholdRule::HistogramValley),
        );
        let median = SignatureModel::fit(
            &pts,
            &LshConfig::with_bits(1).threshold_rule(ThresholdRule::Median),
        );
        let midpoint = SignatureModel::fit(
            &pts,
            &LshConfig::with_bits(1).threshold_rule(ThresholdRule::Midpoint),
        );
        let tv = valley.planes()[0].threshold;
        let tm = median.planes()[0].threshold;
        let tp = midpoint.planes()[0].threshold;
        assert!(tm < 0.1, "median {tm} should sit in the dense mass");
        assert!((tp - 0.4795).abs() < 1e-9, "midpoint {tp}");
        assert!(tv > 0.09 && tv < 0.95, "valley {tv} should be in the gap");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        SignatureModel::fit(&[], &LshConfig::with_bits(2));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_dataset_panics() {
        SignatureModel::fit(&[vec![1.0], vec![1.0, 2.0]], &LshConfig::with_bits(2));
    }

    #[test]
    fn histogram_threshold_is_bin_lower_edge() {
        // 10 points in [0,1): bins of width 0.05 with 20 bins. Make bin 7
        // ([0.35,0.40)) empty and others populated.
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for i in 0..20 {
            if i == 7 {
                continue;
            }
            pts.push(vec![i as f64 * 0.05 + 0.01]);
        }
        pts.push(vec![0.999]); // define max
        let t = histogram_valley_threshold(pts.as_slice(), 0, 0.0, 1.0, 20, 0.05);
        // Approximately the lower edge of the empty bin (span is measured
        // from actual min/max in fit(); here we pass exact range).
        assert!((t - 0.35).abs() < 1e-9, "t = {t}");
    }
}
