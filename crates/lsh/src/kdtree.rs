//! k-d tree for exact nearest-neighbour queries.
//!
//! The paper's hash family is built "on the principle of the k-d tree"
//! (its reference \[18\]); this is the tree itself. Besides grounding that
//! reference, it accelerates the PSC baseline's t-NN graph construction
//! from O(N²d) brute force to O(N log N) builds with sub-linear queries
//! in low dimension.

/// A static k-d tree over a point set (indices into the caller's data).
#[derive(Clone, Debug)]
pub struct KdTree {
    /// Flattened nodes; `nodes[0]` is the root (empty for no points).
    nodes: Vec<Node>,
    /// Dimensionality.
    dims: usize,
}

#[derive(Clone, Debug)]
struct Node {
    /// Index of the point stored at this node.
    point: usize,
    /// Split dimension at this node.
    dim: usize,
    /// Children as node indices (usize::MAX = none).
    left: usize,
    right: usize,
}

const NONE: usize = usize::MAX;

impl KdTree {
    /// Build a balanced tree over `points` (median splits, cycling
    /// dimensions).
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn build(points: &[Vec<f64>]) -> Self {
        let dims = points.first().map(|p| p.len()).unwrap_or(0);
        assert!(
            points.iter().all(|p| p.len() == dims),
            "KdTree::build: ragged points"
        );
        let mut idx: Vec<usize> = (0..points.len()).collect();
        let mut nodes = Vec::with_capacity(points.len());
        if !idx.is_empty() {
            build_recursive(points, &mut idx, 0, dims, &mut nodes);
        }
        Self { nodes, dims }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `k` nearest neighbours of `query` by Euclidean distance,
    /// as `(point_index, distance)` sorted ascending by distance
    /// (ties by index). `exclude` (e.g. the query's own index when
    /// querying the indexed set) is skipped.
    ///
    /// # Panics
    /// Panics if `query` has the wrong dimensionality.
    pub fn nearest(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<(usize, f64)> {
        assert_eq!(query.len(), self.dims, "KdTree: query dimension mismatch");
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        // Bounded max-heap as a sorted Vec (k is small for t-NN graphs).
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.search(points, query, 0, k, exclude, &mut best);
        best.into_iter().map(|(d, i)| (i, d.sqrt())).collect()
    }

    fn search(
        &self,
        points: &[Vec<f64>],
        query: &[f64],
        node: usize,
        k: usize,
        exclude: Option<usize>,
        best: &mut Vec<(f64, usize)>,
    ) {
        let n = &self.nodes[node];
        let p = &points[n.point];
        if exclude != Some(n.point) {
            let d2: f64 = p.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
            let entry = (d2, n.point);
            let pos = best
                .binary_search_by(|probe| probe.partial_cmp(&entry).expect("NaN distance"))
                .unwrap_or_else(|e| e);
            best.insert(pos, entry);
            best.truncate(k);
        }

        let delta = query[n.dim] - p[n.dim];
        let (near, far) = if delta <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        if near != NONE {
            self.search(points, query, near, k, exclude, best);
        }
        // Prune the far side unless the splitting plane is closer than
        // the current k-th best.
        let need_far =
            best.len() < k || delta * delta < best.last().map(|&(d, _)| d).unwrap_or(f64::INFINITY);
        if far != NONE && need_far {
            self.search(points, query, far, k, exclude, best);
        }
    }
}

fn build_recursive(
    points: &[Vec<f64>],
    idx: &mut [usize],
    depth: usize,
    dims: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let dim = if dims == 0 { 0 } else { depth % dims };
    let mid = idx.len() / 2;
    idx.select_nth_unstable_by(mid, |&a, &b| {
        points[a][dim]
            .partial_cmp(&points[b][dim])
            .expect("NaN coordinate")
            .then(a.cmp(&b))
    });
    let point = idx[mid];
    let me = nodes.len();
    nodes.push(Node {
        point,
        dim,
        left: NONE,
        right: NONE,
    });

    // Split the slice around the median; recurse.
    let (lo, rest) = idx.split_at_mut(mid);
    let hi = &mut rest[1..];
    if !lo.is_empty() {
        let l = build_recursive(points, lo, depth + 1, dims, nodes);
        nodes[me].left = l;
    }
    if !hi.is_empty() {
        let r = build_recursive(points, hi, depth + 1, dims, nodes);
        nodes[me].right = r;
    }
    me
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(
        points: &[Vec<f64>],
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = points
            .iter()
            .enumerate()
            .filter(|(i, _)| exclude != Some(*i))
            .map(|(i, p)| {
                let d: f64 = p
                    .iter()
                    .zip(query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                (i, d)
            })
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN").then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    fn grid_points() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    #[test]
    fn single_nearest_matches_brute_force() {
        let pts = grid_points();
        let tree = KdTree::build(&pts);
        let q = vec![2.3, 4.1];
        let got = tree.nearest(&pts, &q, 1, None);
        let want = brute_force(&pts, &q, 1, None);
        assert_eq!(got[0].0, want[0].0);
        assert!((got[0].1 - want[0].1).abs() < 1e-12);
    }

    #[test]
    fn knn_matches_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let pts: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let tree = KdTree::build(&pts);
        for _ in 0..25 {
            let q: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
            let got = tree.nearest(&pts, &q, 7, None);
            let want = brute_force(&pts, &q, 7, None);
            let gi: Vec<usize> = got.iter().map(|x| x.0).collect();
            let wi: Vec<usize> = want.iter().map(|x| x.0).collect();
            assert_eq!(gi, wi, "kNN mismatch for query {q:?}");
        }
    }

    #[test]
    fn exclude_skips_self() {
        let pts = grid_points();
        let tree = KdTree::build(&pts);
        let got = tree.nearest(&pts, &pts[7], 3, Some(7));
        assert!(got.iter().all(|&(i, _)| i != 7));
        let want = brute_force(&pts, &pts[7], 3, Some(7));
        assert_eq!(
            got.iter().map(|x| x.0).collect::<Vec<_>>(),
            want.iter().map(|x| x.0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_points_are_handled() {
        let pts = vec![vec![1.0, 1.0]; 5];
        let tree = KdTree::build(&pts);
        let got = tree.nearest(&pts, &[1.0, 1.0], 3, None);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    fn k_larger_than_n() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let tree = KdTree::build(&pts);
        let got = tree.nearest(&pts, &[0.9], 10, None);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn empty_tree() {
        let pts: Vec<Vec<f64>> = Vec::new();
        let tree = KdTree::build(&pts);
        assert!(tree.is_empty());
    }

    #[test]
    fn distances_sorted_ascending() {
        let pts = grid_points();
        let tree = KdTree::build(&pts);
        let got = tree.nearest(&pts, &[2.5, 2.5], 8, None);
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dim_panics() {
        let pts = vec![vec![0.0, 0.0]];
        KdTree::build(&pts).nearest(&pts, &[0.0], 1, None);
    }
}
