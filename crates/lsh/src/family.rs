//! Alternative LSH families for ablation studies.
//!
//! Section 3.2 of the paper surveys the LSH families considered —
//! random projection, stable distributions, min-wise independent
//! permutations — before settling on the axis-threshold variant. These
//! implementations let the benches compare the chosen family against
//! the classics.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::signature::Signature;

/// Classic sign-random-projection (Charikar): bit `i` is the sign of the
/// dot product with a random Gaussian direction. Collision probability
/// is `1 − θ/π` per bit, where `θ` is the angle between points.
#[derive(Clone, Debug)]
pub struct SignRandomProjection {
    directions: Vec<Vec<f64>>,
}

impl SignRandomProjection {
    /// Draw `m` random directions in `d` dimensions.
    ///
    /// # Panics
    /// Panics if `m` is 0 or exceeds [`Signature::MAX_BITS`], or `d == 0`.
    pub fn new(m: usize, d: usize, seed: u64) -> Self {
        assert!(
            (1..=Signature::MAX_BITS).contains(&m),
            "m must be in 1..=64"
        );
        assert!(d > 0, "d must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let directions = (0..m)
            .map(|_| (0..d).map(|_| standard_normal(&mut rng)).collect())
            .collect();
        Self { directions }
    }

    /// Signature width.
    pub fn num_bits(&self) -> usize {
        self.directions.len()
    }

    /// Hash one point.
    pub fn hash(&self, point: &[f64]) -> Signature {
        let mut sig = Signature::zero(self.directions.len());
        for (i, w) in self.directions.iter().enumerate() {
            let dot: f64 = w.iter().zip(point).map(|(a, b)| a * b).sum();
            if dot > 0.0 {
                sig.set(i, true);
            }
        }
        sig
    }

    /// Hash a whole dataset.
    pub fn hash_all(&self, points: &[Vec<f64>]) -> Vec<Signature> {
        points.iter().map(|p| self.hash(p)).collect()
    }
}

/// Box–Muller standard normal draw (keeps us off non-sanctioned
/// distribution crates).
fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Min-wise independent permutations over binary set representations
/// (Broder), the family the paper cites for near-duplicate detection.
///
/// Points are interpreted as sets: element `j` is present when
/// `point[j] > 0`. Each hash function is a seeded permutation surrogate
/// `π(j) = (a·j + b) mod P`; the min over present elements is folded to
/// one signature bit (parity), so min-hash sketches compose with the
/// same bucket machinery as the other families.
#[derive(Clone, Debug)]
pub struct MinHash {
    coeffs: Vec<(u64, u64)>,
}

/// A Mersenne prime comfortably above any feature index we hash.
const MINHASH_PRIME: u64 = (1 << 61) - 1;

impl MinHash {
    /// Create `m` hash functions.
    ///
    /// # Panics
    /// Panics if `m` is 0 or exceeds [`Signature::MAX_BITS`].
    pub fn new(m: usize, seed: u64) -> Self {
        assert!(
            (1..=Signature::MAX_BITS).contains(&m),
            "m must be in 1..=64"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let coeffs = (0..m)
            .map(|_| {
                (
                    rng.gen_range(1..MINHASH_PRIME),
                    rng.gen_range(0..MINHASH_PRIME),
                )
            })
            .collect();
        Self { coeffs }
    }

    /// Signature width.
    pub fn num_bits(&self) -> usize {
        self.coeffs.len()
    }

    /// Minimum permuted index over the point's support, for hash `i`.
    fn min_hash_value(&self, i: usize, point: &[f64]) -> u64 {
        let (a, b) = self.coeffs[i];
        point
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(j, _)| (a.wrapping_mul(j as u64 + 1).wrapping_add(b)) % MINHASH_PRIME)
            .min()
            .unwrap_or(MINHASH_PRIME)
    }

    /// Hash one point: bit `i` is the parity of the i-th min-hash.
    pub fn hash(&self, point: &[f64]) -> Signature {
        let mut sig = Signature::zero(self.coeffs.len());
        for i in 0..self.coeffs.len() {
            if self.min_hash_value(i, point) & 1 == 1 {
                sig.set(i, true);
            }
        }
        sig
    }

    /// Hash a whole dataset.
    pub fn hash_all(&self, points: &[Vec<f64>]) -> Vec<Signature> {
        points.iter().map(|p| self.hash(p)).collect()
    }

    /// Estimate Jaccard similarity between two points from `m`
    /// min-hash agreements (the classical estimator, exposed for tests
    /// and ablations).
    pub fn jaccard_estimate(&self, a: &[f64], b: &[f64]) -> f64 {
        let agree = (0..self.coeffs.len())
            .filter(|&i| self.min_hash_value(i, a) == self.min_hash_value(i, b))
            .count();
        agree as f64 / self.coeffs.len() as f64
    }
}

/// p-stable LSH for Euclidean distance (Datar–Immorlica–Indyk–Mirrokni):
/// `h(x) = ⌊(w·x + b)/r⌋` with Gaussian `w` (2-stable) and uniform
/// offset `b ∈ [0, r)`. Nearby points land in the same interval with
/// probability decreasing in `‖x−y‖₂ / r`.
#[derive(Clone, Debug)]
pub struct PStableLsh {
    directions: Vec<Vec<f64>>,
    offsets: Vec<f64>,
    width: f64,
}

impl PStableLsh {
    /// Create `m` hash functions over `d` dimensions with interval
    /// width `r`.
    ///
    /// # Panics
    /// Panics if `m` is 0 or exceeds [`Signature::MAX_BITS`], `d == 0`,
    /// or `r <= 0`.
    pub fn new(m: usize, d: usize, r: f64, seed: u64) -> Self {
        assert!(
            (1..=Signature::MAX_BITS).contains(&m),
            "m must be in 1..=64"
        );
        assert!(d > 0, "d must be positive");
        assert!(r > 0.0, "interval width must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let directions: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..d).map(|_| standard_normal(&mut rng)).collect())
            .collect();
        let offsets: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..r)).collect();
        Self {
            directions,
            offsets,
            width: r,
        }
    }

    /// Signature width.
    pub fn num_bits(&self) -> usize {
        self.directions.len()
    }

    /// The integer hash values `⌊(w·x + b)/r⌋` for every function.
    pub fn hash_values(&self, point: &[f64]) -> Vec<i64> {
        self.directions
            .iter()
            .zip(&self.offsets)
            .map(|(w, &b)| {
                let dot: f64 = w.iter().zip(point).map(|(a, x)| a * x).sum();
                ((dot + b) / self.width).floor() as i64
            })
            .collect()
    }

    /// One-bit fold (interval parity) so p-stable sketches compose with
    /// the same bucket machinery as the other families.
    pub fn hash(&self, point: &[f64]) -> Signature {
        let mut sig = Signature::zero(self.num_bits());
        for (i, v) in self.hash_values(point).into_iter().enumerate() {
            if v.rem_euclid(2) == 1 {
                sig.set(i, true);
            }
        }
        sig
    }

    /// Hash a whole dataset.
    pub fn hash_all(&self, points: &[Vec<f64>]) -> Vec<Signature> {
        points.iter().map(|p| self.hash(p)).collect()
    }
}

/// Spectral-hashing-style PCA hash: project onto the data's top
/// principal directions and threshold at the median projection — a
/// data-dependent family that yields **balanced** partitions, the
/// remedy the paper proposes for "very skewed data distributions".
#[derive(Clone, Debug)]
pub struct PcaHash {
    mean: Vec<f64>,
    directions: Vec<Vec<f64>>,
    thresholds: Vec<f64>,
}

impl PcaHash {
    /// Fit `m` hash bits to a dataset.
    ///
    /// # Panics
    /// Panics on an empty/ragged dataset, `m == 0`, or `m` above
    /// [`Signature::MAX_BITS`].
    pub fn fit(points: &[Vec<f64>], m: usize) -> Self {
        assert!(!points.is_empty(), "PcaHash::fit: empty dataset");
        assert!(
            (1..=Signature::MAX_BITS).contains(&m),
            "m must be in 1..=64"
        );
        let d = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == d),
            "PcaHash::fit: ragged dataset"
        );
        let n = points.len() as f64;

        // Mean and covariance.
        let mut mean = vec![0.0; d];
        for p in points {
            for (mj, &v) in mean.iter_mut().zip(p) {
                *mj += v;
            }
        }
        for mj in &mut mean {
            *mj /= n;
        }
        let mut cov = dasc_linalg::Matrix::zeros(d, d);
        for p in points {
            for i in 0..d {
                let ci = p[i] - mean[i];
                for j in i..d {
                    let v = ci * (p[j] - mean[j]);
                    cov[(i, j)] += v;
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] / n;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }

        // Top-m principal directions (cycled if m > d).
        let eig = dasc_linalg::symmetric_eigen(&cov);
        let (_, vecs) = eig.top_k(m.min(d));
        let directions: Vec<Vec<f64>> = (0..m).map(|i| vecs.col(i % m.min(d))).collect();

        // Median thresholds → balanced bits.
        let thresholds: Vec<f64> = directions
            .iter()
            .map(|w| {
                let mut proj: Vec<f64> = points
                    .iter()
                    .map(|p| {
                        p.iter()
                            .zip(w)
                            .zip(&mean)
                            .map(|((x, wi), mu)| (x - mu) * wi)
                            .sum()
                    })
                    .collect();
                proj.sort_by(|a, b| a.partial_cmp(b).expect("NaN projection"));
                proj[proj.len() / 2]
            })
            .collect();

        Self {
            mean,
            directions,
            thresholds,
        }
    }

    /// Signature width.
    pub fn num_bits(&self) -> usize {
        self.directions.len()
    }

    /// Hash one point: bit `i` is the sign of the centered projection
    /// against the median threshold.
    pub fn hash(&self, point: &[f64]) -> Signature {
        let mut sig = Signature::zero(self.num_bits());
        for (i, (w, &t)) in self.directions.iter().zip(&self.thresholds).enumerate() {
            let proj: f64 = point
                .iter()
                .zip(w)
                .zip(&self.mean)
                .map(|((x, wi), mu)| (x - mu) * wi)
                .sum();
            if proj > t {
                sig.set(i, true);
            }
        }
        sig
    }

    /// Hash a whole dataset.
    pub fn hash_all(&self, points: &[Vec<f64>]) -> Vec<Signature> {
        points.iter().map(|p| self.hash(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srp_identical_points_collide() {
        let srp = SignRandomProjection::new(16, 4, 1);
        let p = vec![0.3, -0.2, 0.9, 0.0];
        assert_eq!(srp.hash(&p), srp.hash(&p));
    }

    #[test]
    fn srp_scaling_invariance() {
        // Sign projections ignore magnitude: x and 10x hash identically.
        let srp = SignRandomProjection::new(32, 3, 2);
        let p = vec![0.5, -1.0, 2.0];
        let q: Vec<f64> = p.iter().map(|v| v * 10.0).collect();
        assert_eq!(srp.hash(&p), srp.hash(&q));
    }

    #[test]
    fn srp_opposite_points_differ_everywhere() {
        let srp = SignRandomProjection::new(32, 5, 3);
        let p = vec![1.0, 0.5, -0.3, 0.8, 0.1];
        let q: Vec<f64> = p.iter().map(|v| -v).collect();
        // Antipodal points flip every decided bit (dot products negate).
        let hp = srp.hash(&p);
        let hq = srp.hash(&q);
        assert_eq!(hp.hamming(&hq), 32);
    }

    #[test]
    fn srp_close_points_mostly_collide() {
        let srp = SignRandomProjection::new(32, 8, 4);
        let p: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0) / 8.0).collect();
        let q: Vec<f64> = p.iter().map(|v| v + 0.001).collect();
        assert!(srp.hash(&p).hamming(&srp.hash(&q)) <= 2);
    }

    #[test]
    fn srp_deterministic_per_seed() {
        let a = SignRandomProjection::new(8, 4, 7).hash(&[1.0, 2.0, 3.0, 4.0]);
        let b = SignRandomProjection::new(8, 4, 7).hash(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
        let c = SignRandomProjection::new(8, 4, 8).hash(&[1.0, 2.0, 3.0, 4.0]);
        // Different seed virtually never yields identical directions;
        // signatures may still coincide, so only check determinism above.
        let _ = c;
    }

    #[test]
    fn minhash_identical_sets_agree() {
        let mh = MinHash::new(16, 5);
        let p = vec![1.0, 0.0, 2.0, 0.0, 1.0];
        assert_eq!(mh.hash(&p), mh.hash(&p));
        assert_eq!(mh.jaccard_estimate(&p, &p), 1.0);
    }

    #[test]
    fn minhash_jaccard_tracks_overlap() {
        let mh = MinHash::new(64, 6);
        // Sets {0..10} and {0..8} ∪ {20,21}: Jaccard = 8/12 ≈ 0.67.
        let mut a = vec![0.0; 30];
        let mut b = vec![0.0; 30];
        a[..10].fill(1.0);
        b[..8].fill(1.0);
        b[20] = 1.0;
        b[21] = 1.0;
        let est = mh.jaccard_estimate(&a, &b);
        assert!((est - 8.0 / 12.0).abs() < 0.25, "estimate {est}");
        let disjoint = vec![0.0; 30];
        let mut c = disjoint.clone();
        c[29] = 1.0;
        let mut d = disjoint;
        d[0] = 1.0;
        assert!(mh.jaccard_estimate(&c, &d) < 0.2);
    }

    #[test]
    fn pstable_close_points_share_intervals() {
        let ps = PStableLsh::new(16, 4, 4.0, 9);
        let p = vec![0.5, 0.5, 0.5, 0.5];
        let q: Vec<f64> = p.iter().map(|v| v + 0.01).collect();
        let hp = ps.hash_values(&p);
        let hq = ps.hash_values(&q);
        let same = hp.iter().zip(&hq).filter(|(a, b)| a == b).count();
        assert!(same >= 14, "only {same}/16 intervals shared");
        assert!(ps.hash(&p).hamming(&ps.hash(&q)) <= 2);
    }

    #[test]
    fn pstable_far_points_diverge() {
        let ps = PStableLsh::new(32, 4, 0.5, 10);
        let p = vec![0.0; 4];
        let q = vec![100.0; 4];
        let hp = ps.hash_values(&p);
        let hq = ps.hash_values(&q);
        let same = hp.iter().zip(&hq).filter(|(a, b)| a == b).count();
        assert!(same <= 4, "{same}/32 intervals shared for distant points");
    }

    #[test]
    fn pstable_deterministic_per_seed() {
        let a = PStableLsh::new(8, 3, 1.0, 5).hash(&[1.0, 2.0, 3.0]);
        let b = PStableLsh::new(8, 3, 1.0, 5).hash(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn pca_hash_bits_are_balanced() {
        // Skewed data: 90% mass near zero — exactly where the paper's
        // valley rule degenerates; PCA-median bits stay balanced.
        let mut pts: Vec<Vec<f64>> = (0..90).map(|i| vec![0.001 * i as f64, 0.0]).collect();
        pts.extend((0..10).map(|i| vec![0.9 + 0.001 * i as f64, 1.0]));
        let ph = PcaHash::fit(&pts, 2);
        let sigs = ph.hash_all(&pts);
        for bit in 0..2 {
            let ones = sigs.iter().filter(|s| s.get(bit)).count();
            assert!(
                (25..=75).contains(&ones),
                "bit {bit} unbalanced: {ones}/100 ones"
            );
        }
    }

    #[test]
    fn pca_hash_first_direction_separates_principal_axis() {
        // Variance concentrated along dim 1: the first bit must track it.
        let pts: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![0.5 + 0.001 * (i % 3) as f64, i as f64 / 100.0])
            .collect();
        let ph = PcaHash::fit(&pts, 1);
        let low = ph.hash(&[0.5, 0.0]);
        let high = ph.hash(&[0.5, 1.0]);
        assert_ne!(low.get(0), high.get(0));
    }

    #[test]
    fn pca_hash_deterministic() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let a = PcaHash::fit(&pts, 4);
        let b = PcaHash::fit(&pts, 4);
        assert_eq!(a.hash_all(&pts), b.hash_all(&pts));
    }

    #[test]
    #[should_panic(expected = "interval width")]
    fn pstable_zero_width_panics() {
        PStableLsh::new(4, 2, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn pca_empty_panics() {
        PcaHash::fit(&[], 2);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn srp_zero_bits_panics() {
        SignRandomProjection::new(0, 3, 0);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn minhash_too_wide_panics() {
        MinHash::new(65, 0);
    }
}
