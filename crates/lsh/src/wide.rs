//! Arbitrary-width binary signatures (`M > 64`).
//!
//! [`crate::Signature`] packs into one `u64`, which covers every
//! configuration the paper evaluates (`M ≤ 35`). Ablations that sweep
//! beyond 64 bits use this multi-word variant; it offers the same
//! Hamming-space operations, including a word-wise generalization of the
//! Eq. 6 one-bit-difference trick.

use std::fmt;

/// A binary signature of arbitrary width, packed into `u64` words
/// (little-endian bit order: bit 0 is word 0's LSB). Ordering is
/// numeric: most-significant word first.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WideSignature {
    words: Vec<u64>,
    len: usize,
}

impl PartialOrd for WideSignature {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WideSignature {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Numeric comparison: widths first, then words from the most
        // significant down.
        self.len
            .cmp(&other.len)
            .then_with(|| self.words.iter().rev().cmp(other.words.iter().rev()))
    }
}

impl WideSignature {
    /// All-zero signature of `len` bits.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn zero(len: usize) -> Self {
        assert!(len > 0, "signature length must be positive");
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Signatures are never empty; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Set bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range");
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming distance.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn hamming(&self, other: &WideSignature) -> u32 {
        assert_eq!(self.len, other.len, "hamming: width mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Number of agreeing bits.
    pub fn common_bits(&self, other: &WideSignature) -> u32 {
        self.len as u32 - self.hamming(other)
    }

    /// Word-wise Eq. 6: exactly one word differs, and that word's XOR is
    /// a power of two. O(words), constant per word.
    pub fn differs_by_one(&self, other: &WideSignature) -> bool {
        assert_eq!(self.len, other.len, "differs_by_one: width mismatch");
        let mut seen_diff = false;
        for (a, b) in self.words.iter().zip(&other.words) {
            let x = a ^ b;
            if x != 0 {
                if seen_diff || x & x.wrapping_sub(1) != 0 {
                    return false;
                }
                seen_diff = true;
            }
        }
        seen_diff
    }

    /// Narrow to a packed [`crate::Signature`] when `len <= 64`.
    ///
    /// # Panics
    /// Panics if the signature is wider than 64 bits.
    pub fn to_packed(&self) -> crate::Signature {
        assert!(self.len <= 64, "signature too wide to pack");
        crate::Signature::from_bits(self.words[0], self.len)
    }
}

impl fmt::Debug for WideSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WideSignature(")?;
        for i in (0..self.len).rev() {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_across_word_boundary() {
        let mut s = WideSignature::zero(130);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(129, true);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(129));
        assert!(!s.get(65));
        s.set(64, false);
        assert!(!s.get(64));
    }

    #[test]
    fn hamming_across_words() {
        let mut a = WideSignature::zero(100);
        let mut b = WideSignature::zero(100);
        a.set(3, true);
        a.set(70, true);
        b.set(70, true);
        b.set(99, true);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.common_bits(&b), 98);
    }

    #[test]
    fn differs_by_one_wide() {
        let mut a = WideSignature::zero(128);
        let mut b = WideSignature::zero(128);
        b.set(100, true);
        assert!(a.differs_by_one(&b));
        assert!(!a.differs_by_one(&a));
        a.set(5, true);
        assert!(!a.differs_by_one(&b)); // two differing bits, two words
        let mut c = WideSignature::zero(128);
        c.set(100, true);
        c.set(101, true);
        assert!(!b.differs_by_one(&c) || b.hamming(&c) == 1);
        assert_eq!(b.hamming(&c), 1);
        assert!(b.differs_by_one(&c));
    }

    #[test]
    fn to_packed_roundtrip() {
        let mut w = WideSignature::zero(10);
        w.set(1, true);
        w.set(9, true);
        let p = w.to_packed();
        assert_eq!(p.bits(), 0b10_0000_0010);
        assert_eq!(p.len(), 10);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn pack_wide_panics() {
        WideSignature::zero(65).to_packed();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_panics() {
        WideSignature::zero(64).get(64);
    }

    #[test]
    fn ordering_is_consistent() {
        let mut a = WideSignature::zero(128);
        let mut b = WideSignature::zero(128);
        a.set(2, true);
        b.set(100, true);
        assert!(a < b);
    }
}
