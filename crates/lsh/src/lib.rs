//! Locality sensitive hashing for the DASC kernel-matrix approximation.
//!
//! This crate implements the first two steps of the DASC algorithm
//! (Section 3 of the paper):
//!
//! 1. **Signatures** — every point gets an `M`-bit binary signature. The
//!    paper's hash family is a span-weighted, axis-aligned threshold
//!    family: each bit compares one input dimension against a threshold
//!    derived from a 20-bin histogram of that dimension (Eq. 5), and the
//!    probability of a dimension being chosen is proportional to its
//!    numerical span (Eq. 4).
//! 2. **Buckets** — points with identical signatures share a bucket, and
//!    buckets whose signatures agree in at least `P` bits are merged.
//!    With the paper's setting `P = M − 1` this reduces to the O(1)
//!    Hamming-distance-1 test `(A⊕B) & (A⊕B−1) == 0` (Eq. 6).
//!
//! Additional hash families — sign-random-projection, min-hash,
//! p-stable, and a spectral-hashing-style PCA hash — are provided for
//! the ablation studies in `dasc-bench` and for skewed data.
//!
//! ```
//! use dasc_lsh::{BucketSet, LshConfig, SignatureModel};
//!
//! // Two obvious groups along one axis.
//! let points: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![if i < 10 { 0.1 } else { 0.9 }, 0.5])
//!     .collect();
//! let model = SignatureModel::fit(&points, &LshConfig::with_bits(1));
//! let buckets = BucketSet::from_signatures(&model.hash_all(&points));
//! assert_eq!(buckets.len(), 2);
//! assert_eq!(buckets.sizes(), vec![10, 10]);
//! ```

pub mod bucket;
pub mod config;
pub mod family;
pub mod kdtree;
pub mod model;
pub mod signature;
pub mod wide;

pub use bucket::BucketSet;
pub use config::{DimensionSelection, LshConfig, MergeStrategy, ThresholdRule};
pub use family::{MinHash, PStableLsh, PcaHash, SignRandomProjection};
pub use kdtree::KdTree;
pub use model::{HashPlane, SignatureModel};
pub use signature::Signature;
pub use wide::WideSignature;

/// The paper's default signature width: `M = ⌈log₂ N⌉ / 2 − 1`,
/// clamped to at least one bit (Section 5.4).
pub fn default_signature_bits(n: usize) -> usize {
    if n <= 2 {
        return 1;
    }
    let log2n = (n as f64).log2().ceil() as usize;
    (log2n / 2).saturating_sub(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bits_match_paper_rule() {
        // N = 2^18 → log2 = 18 → M = 9 - 1 = 8.
        assert_eq!(default_signature_bits(1 << 18), 8);
        // N = 2^10 → M = 4.
        assert_eq!(default_signature_bits(1 << 10), 4);
        // Tiny datasets still get one bit.
        assert_eq!(default_signature_bits(2), 1);
        assert_eq!(default_signature_bits(5), 1);
    }

    #[test]
    fn default_bits_monotone_nondecreasing() {
        let mut last = 0;
        for e in 1..30 {
            let m = default_signature_bits(1usize << e);
            assert!(m >= last);
            last = m;
        }
    }
}
