//! Bucket formation and the P-similar-signature merge rule.
//!
//! Step two of DASC: points with identical signatures share a bucket,
//! then buckets whose signatures agree in at least `P` bits are merged
//! (Section 3.2). The merge is transitive — the paper performs pairwise
//! comparisons over the `T` unique signatures (O(T²)) and combines
//! matches — so we close it with a union–find.

use std::collections::HashMap;

use crate::config::MergeStrategy;
use crate::signature::Signature;

/// One bucket: a representative signature and its member point indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bucket {
    /// Signature of the first (lowest signature value) constituent
    /// bucket.
    pub signature: Signature,
    /// Member point indices, ascending.
    pub members: Vec<usize>,
}

/// The set of buckets induced by a batch of signatures.
#[derive(Clone, Debug)]
pub struct BucketSet {
    buckets: Vec<Bucket>,
    num_points: usize,
}

impl BucketSet {
    /// Group points by exact signature equality.
    ///
    /// Buckets are ordered by signature value, members ascending — fully
    /// deterministic.
    pub fn from_signatures(signatures: &[Signature]) -> Self {
        let mut groups: HashMap<Signature, Vec<usize>> = HashMap::new();
        for (idx, sig) in signatures.iter().enumerate() {
            groups.entry(*sig).or_default().push(idx);
        }
        let mut buckets: Vec<Bucket> = groups
            .into_iter()
            .map(|(signature, members)| Bucket { signature, members })
            .collect();
        buckets.sort_by_key(|b| b.signature);
        Self {
            buckets,
            num_points: signatures.len(),
        }
    }

    /// Merge buckets whose signatures share at least `p` bits, closing
    /// transitively. With the paper's `P = M − 1` the pairwise test is
    /// the O(1) Eq. 6 bit trick.
    ///
    /// # Panics
    /// Panics if `p` exceeds the signature width.
    pub fn merge_similar(&self, p: usize) -> BucketSet {
        let t = self.buckets.len();
        if t <= 1 {
            return self.clone();
        }
        let m = self.buckets[0].signature.len();
        assert!(p <= m, "P = {p} exceeds signature width {m}");

        // Union–find over bucket indices.
        let mut parent: Vec<usize> = (0..t).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let use_bit_trick = p + 1 == m;
        for i in 0..t {
            for j in (i + 1)..t {
                let a = &self.buckets[i].signature;
                let b = &self.buckets[j].signature;
                let similar = if use_bit_trick {
                    a.differs_by_one(b)
                } else {
                    a.at_least_p_common(b, p)
                };
                if similar {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        // Attach the larger root index under the smaller so
                        // the representative is the lowest signature.
                        let (lo, hi) = if ri < rj { (ri, rj) } else { (rj, ri) };
                        parent[hi] = lo;
                    }
                }
            }
        }

        let mut merged: HashMap<usize, Bucket> = HashMap::new();
        for i in 0..t {
            let root = find(&mut parent, i);
            let entry = merged.entry(root).or_insert_with(|| Bucket {
                signature: self.buckets[root].signature,
                members: Vec::new(),
            });
            entry.members.extend_from_slice(&self.buckets[i].members);
        }
        let mut buckets: Vec<Bucket> = merged.into_values().collect();
        for b in &mut buckets {
            b.members.sort_unstable();
        }
        buckets.sort_by_key(|b| b.signature);
        BucketSet {
            buckets,
            num_points: self.num_points,
        }
    }

    /// Merge buckets in greedy disjoint **pairs**: scanning buckets in
    /// signature order, each unpaired bucket absorbs the first later
    /// unpaired bucket whose signature shares at least `p` bits.
    ///
    /// Unlike [`BucketSet::merge_similar`], this does not take the
    /// transitive closure. On dense signature spaces — every signature
    /// value occupied, which is exactly what happens at the paper's
    /// default `M = ⌈log₂N⌉/2 − 1` — the closure under `P = M − 1`
    /// connects the whole Hamming cube and collapses the partition into
    /// one bucket, destroying all parallelism. Greedy pairing keeps the
    /// error-reduction benefit (adjacent buckets are combined) while
    /// guaranteeing at least `T/2` buckets survive. The paper's merge
    /// description (pairwise signature comparison, Eq. 6) is compatible
    /// with either reading; DASC defaults to this one.
    ///
    /// # Panics
    /// Panics if `p` exceeds the signature width.
    pub fn merge_greedy_pairs(&self, p: usize) -> BucketSet {
        let t = self.buckets.len();
        if t <= 1 {
            return self.clone();
        }
        let m = self.buckets[0].signature.len();
        assert!(p <= m, "P = {p} exceeds signature width {m}");
        let use_bit_trick = p + 1 == m;
        let mut paired = vec![false; t];
        let mut buckets: Vec<Bucket> = Vec::new();
        for i in 0..t {
            if paired[i] {
                continue;
            }
            let mut merged = self.buckets[i].clone();
            #[allow(clippy::needless_range_loop)] // j indexes paired + buckets
            for j in (i + 1)..t {
                if paired[j] {
                    continue;
                }
                let a = &self.buckets[i].signature;
                let b = &self.buckets[j].signature;
                let similar = if use_bit_trick {
                    a.differs_by_one(b)
                } else {
                    a.at_least_p_common(b, p)
                };
                if similar {
                    merged.members.extend_from_slice(&self.buckets[j].members);
                    paired[j] = true;
                    break;
                }
            }
            merged.members.sort_unstable();
            buckets.push(merged);
        }
        BucketSet {
            buckets,
            num_points: self.num_points,
        }
    }

    /// Apply a [`MergeStrategy`] with threshold `p`.
    pub fn merge_with(&self, strategy: MergeStrategy, p: usize) -> BucketSet {
        match strategy {
            MergeStrategy::GreedyPairs => self.merge_greedy_pairs(p),
            MergeStrategy::TransitiveClosure => self.merge_similar(p),
            MergeStrategy::None => self.clone(),
        }
    }

    /// Number of buckets `T`.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if there are no buckets (empty input).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of hashed points `N`.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// The buckets, ordered by signature.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Bucket sizes `Nᵢ` in bucket order.
    pub fn sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(|b| b.members.len()).collect()
    }

    /// Map each point index to its bucket index.
    pub fn assignments(&self) -> Vec<usize> {
        let mut a = vec![usize::MAX; self.num_points];
        for (bi, b) in self.buckets.iter().enumerate() {
            for &idx in &b.members {
                a[idx] = bi;
            }
        }
        a
    }

    /// Σ Nᵢ² — the approximated kernel's entry count, the quantity the
    /// paper's space analysis (Eq. 9) bounds.
    pub fn approx_gram_entries(&self) -> usize {
        self.buckets.iter().map(|b| b.members.len().pow(2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(bits: u64, len: usize) -> Signature {
        Signature::from_bits(bits, len)
    }

    #[test]
    fn exact_grouping() {
        let sigs = vec![sig(0b01, 2), sig(0b10, 2), sig(0b01, 2), sig(0b01, 2)];
        let bs = BucketSet::from_signatures(&sigs);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs.num_points(), 4);
        assert_eq!(bs.buckets()[0].members, vec![0, 2, 3]);
        assert_eq!(bs.buckets()[1].members, vec![1]);
        assert_eq!(bs.sizes(), vec![3, 1]);
    }

    #[test]
    fn assignments_cover_all_points() {
        let sigs = vec![sig(0, 3), sig(1, 3), sig(0, 3), sig(7, 3)];
        let bs = BucketSet::from_signatures(&sigs);
        let a = bs.assignments();
        assert_eq!(a.len(), 4);
        assert_eq!(a[0], a[2]);
        assert_ne!(a[0], a[1]);
        assert!(a.iter().all(|&x| x < bs.len()));
    }

    #[test]
    fn merge_p_eq_m_minus_1_uses_hamming_1() {
        // 000, 001 differ by 1 → merge; 111 stays alone.
        let sigs = vec![sig(0b000, 3), sig(0b001, 3), sig(0b111, 3)];
        let bs = BucketSet::from_signatures(&sigs).merge_similar(2);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs.buckets()[0].members, vec![0, 1]);
        assert_eq!(bs.buckets()[1].members, vec![2]);
    }

    #[test]
    fn merge_is_transitive() {
        // 000–001–011–111 chain: each adjacent pair differs by one bit,
        // so everything collapses into a single bucket.
        let sigs = vec![sig(0b000, 3), sig(0b001, 3), sig(0b011, 3), sig(0b111, 3)];
        let bs = BucketSet::from_signatures(&sigs).merge_similar(2);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs.buckets()[0].members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_with_lower_p_widens_radius() {
        // 0000 vs 0011: hamming 2, so P = M-2 = 2 merges them but
        // P = M-1 = 3 does not.
        let sigs = vec![sig(0b0000, 4), sig(0b0011, 4)];
        let strict = BucketSet::from_signatures(&sigs).merge_similar(3);
        assert_eq!(strict.len(), 2);
        let loose = BucketSet::from_signatures(&sigs).merge_similar(2);
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn merge_p_eq_m_merges_nothing() {
        let sigs = vec![sig(0b00, 2), sig(0b01, 2)];
        let bs = BucketSet::from_signatures(&sigs).merge_similar(2);
        assert_eq!(bs.len(), 2);
    }

    #[test]
    fn empty_and_singleton() {
        let bs = BucketSet::from_signatures(&[]);
        assert!(bs.is_empty());
        assert_eq!(bs.merge_similar(0).len(), 0);
        let bs = BucketSet::from_signatures(&[sig(5, 4)]);
        assert_eq!(bs.merge_similar(3).len(), 1);
    }

    #[test]
    fn approx_gram_entries_sums_squares() {
        let sigs = vec![sig(0, 2), sig(0, 2), sig(1, 2)];
        let bs = BucketSet::from_signatures(&sigs);
        assert_eq!(bs.approx_gram_entries(), 4 + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds signature width")]
    fn oversized_p_panics() {
        let sigs = vec![sig(0, 2), sig(1, 2)];
        BucketSet::from_signatures(&sigs).merge_similar(3);
    }

    #[test]
    fn greedy_pairs_does_not_chain() {
        // 000–001–011–111: closure collapses to 1 bucket; greedy pairing
        // yields (000,001) and (011,111) — two buckets.
        let sigs = vec![sig(0b000, 3), sig(0b001, 3), sig(0b011, 3), sig(0b111, 3)];
        let bs = BucketSet::from_signatures(&sigs).merge_greedy_pairs(2);
        assert_eq!(bs.len(), 2);
        assert_eq!(bs.buckets()[0].members, vec![0, 1]);
        assert_eq!(bs.buckets()[1].members, vec![2, 3]);
    }

    #[test]
    fn greedy_pairs_keeps_at_least_half() {
        // Full 4-bit cube occupied: closure gives 1 bucket; greedy gives
        // exactly 8 pairs.
        let sigs: Vec<Signature> = (0..16).map(|b| sig(b, 4)).collect();
        let closure = BucketSet::from_signatures(&sigs).merge_similar(3);
        assert_eq!(closure.len(), 1);
        let pairs = BucketSet::from_signatures(&sigs).merge_greedy_pairs(3);
        assert_eq!(pairs.len(), 8);
        assert_eq!(pairs.num_points(), 16);
        let total: usize = pairs.sizes().iter().sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn greedy_pairs_no_match_is_identity() {
        let sigs = vec![sig(0b0000, 4), sig(0b1111, 4)];
        let bs = BucketSet::from_signatures(&sigs).merge_greedy_pairs(3);
        assert_eq!(bs.len(), 2);
    }

    #[test]
    fn merge_deterministic_representative() {
        let sigs = vec![sig(0b10, 2), sig(0b11, 2)];
        let bs = BucketSet::from_signatures(&sigs).merge_similar(1);
        assert_eq!(bs.len(), 1);
        // Representative is the lowest signature of the merged set.
        assert_eq!(bs.buckets()[0].signature, sig(0b10, 2));
    }
}
