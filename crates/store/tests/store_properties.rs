//! Property tests for the dataset store: any dataset packs to disk
//! and reads back bit-identical through both the mmap and buffered
//! paths; truncating or corrupting any byte of any file in the store
//! is a typed error, never a panic and never silently wrong data.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use dasc_linalg::PointsView;
use dasc_store::{shard_file_name, ReadMode, StoreError, StoreReader, StoreWriter, MANIFEST_FILE};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dasc-storeprop-{}-{tag}-{seq}.dstr",
        std::process::id()
    ))
}

fn pack(dir: &Path, rows: &[Vec<f64>], labels: Option<&[usize]>, dim: usize, shard_rows: usize) {
    let mut w = StoreWriter::create(dir, dim, labels.is_some(), shard_rows).expect("create");
    for (i, r) in rows.iter().enumerate() {
        w.push_row(r, labels.map(|ls| ls[i])).expect("push");
    }
    w.finish().expect("finish");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pack_then_read_is_bit_identical(
        n in 0usize..40,
        dim in 1usize..6,
        shard_rows in 1usize..9,
        with_labels in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Deterministic but irregular values, including negatives,
        // subnormal-ish magnitudes, and exact integers.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| {
                        let x = seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((i * dim + j) as u64);
                        f64::from_bits(0x3FF0_0000_0000_0000 | (x >> 12)) - 1.5
                    })
                    .collect()
            })
            .collect();
        let labels: Option<Vec<usize>> =
            with_labels.then(|| (0..n).map(|i| (i * 7) % 5).collect());

        let dir = temp_dir("roundtrip");
        pack(&dir, &rows, labels.as_deref(), dim, shard_rows);

        for mode in [ReadMode::Auto, ReadMode::Buffered] {
            let r = StoreReader::open_with(&dir, mode).expect("open");
            prop_assert_eq!(r.len(), n);
            prop_assert_eq!(r.dim(), dim);
            r.verify_all().expect("verify");
            for (i, row) in rows.iter().enumerate() {
                let got = PointsView::row(&r, i);
                prop_assert_eq!(got.len(), dim);
                for (a, b) in got.iter().zip(row) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            prop_assert_eq!(r.labels().expect("labels"), labels.clone());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic(
        cut_seed in any::<u64>(),
        hit_manifest in any::<bool>(),
    ) {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, -(i as f64)]).collect();
        let dir = temp_dir("trunc");
        pack(&dir, &rows, None, 2, 4);

        let target = if hit_manifest {
            dir.join(MANIFEST_FILE)
        } else {
            dir.join(shard_file_name(0))
        };
        let bytes = std::fs::read(&target).expect("read target");
        let cut = (cut_seed as usize) % bytes.len();
        std::fs::write(&target, &bytes[..cut]).expect("truncate");

        let opened = StoreReader::open(&dir);
        if hit_manifest {
            prop_assert!(opened.is_err(), "truncated manifest must not open");
        } else {
            let r = opened.expect("manifest intact");
            prop_assert!(r.verify_all().is_err(), "truncated shard must not verify");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_byte_corruption_is_detected(
        byte_seed in any::<u64>(),
        flip in 1u8..=255,
        hit_manifest in any::<bool>(),
    ) {
        let rows: Vec<Vec<f64>> = (0..5).map(|i| vec![0.25 * i as f64; 3]).collect();
        let dir = temp_dir("flip");
        pack(&dir, &rows, None, 3, 5);

        let target = if hit_manifest {
            dir.join(MANIFEST_FILE)
        } else {
            dir.join(shard_file_name(0))
        };
        let mut bytes = std::fs::read(&target).expect("read target");
        let pos = (byte_seed as usize) % bytes.len();
        bytes[pos] ^= flip;
        std::fs::write(&target, &bytes).expect("corrupt");

        let outcome = StoreReader::open(&dir).and_then(|r| r.verify_all());
        prop_assert!(outcome.is_err(), "flipped byte at {} escaped detection", pos);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupting_a_shard_checksum_field_is_checksum_class() {
    let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
    let dir = temp_dir("trailer");
    pack(&dir, &rows, None, 1, 4);

    let target = dir.join(shard_file_name(0));
    let mut bytes = std::fs::read(&target).expect("read shard");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&target, &bytes).expect("corrupt trailer");

    let r = StoreReader::open(&dir).expect("open");
    assert_eq!(
        r.shard(0).err(),
        Some(StoreError::ChecksumMismatch { shard: Some(0) })
    );
    std::fs::remove_dir_all(&dir).ok();
}
