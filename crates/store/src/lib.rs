//! # dasc-store — out-of-core dataset store
//!
//! The HPDC'12 system keeps its points in HDFS: map and reduce tasks
//! read their own splits locally and the jobflow moves *references*,
//! not data. This crate reproduces that layer for the Rust runtime:
//!
//! * a versioned binary on-disk format ([`format`]) — a `.dstr`
//!   directory of fixed-size shards plus a manifest, every byte
//!   covered by FNV-1a-64 checksums;
//! * a streaming writer ([`StoreWriter`]) that packs datasets in
//!   `O(shard)` memory;
//! * a zero-copy reader ([`StoreReader`]) that mmaps shards (vendored
//!   `libc` FFI shim, buffered-read fallback) and exposes them as
//!   borrowed [`dasc_linalg::FlatPointsView`]s — no `Vec<Vec<f64>>`
//!   round-trip;
//! * a worker-side LRU [`ShardCache`] keyed by content hash, bounded
//!   by `DASC_SHARD_CACHE_BYTES`, feeding the shard-addressed
//!   distributed runtime in `dasc-dist`.

pub mod cache;
pub mod error;
pub mod format;
pub mod mmap;
pub mod reader;
pub mod writer;

pub use cache::{ShardCache, DEFAULT_CACHE_BYTES};
pub use error::StoreError;
pub use format::{
    fnv1a64, shard_file_name, DatasetManifest, ShardMeta, DEFAULT_SHARD_ROWS, FORMAT_VERSION,
    MANIFEST_FILE,
};
pub use mmap::{FileBytes, ReadMode};
pub use reader::{Shard, StoreReader};
pub use writer::StoreWriter;
