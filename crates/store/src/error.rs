//! Error classes of the dataset store.
//!
//! Every way a `.dstr` directory can be malformed maps to a distinct
//! variant so callers (and the robustness test suite) can assert the
//! *exact* failure mode: a truncated file is [`StoreError::Truncated`],
//! never a checksum mismatch; a flipped payload byte is
//! [`StoreError::ChecksumMismatch`], never an I/O error.

use std::fmt;

/// Everything that can go wrong opening, reading, or fetching store
/// data. No variant panics: corrupt on-disk bytes always surface as an
/// `Err`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying filesystem error (open/read/write/create).
    Io(String),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// Recognized magic but an unsupported format version.
    BadVersion(u16),
    /// The file is shorter than its own header/shape claims.
    Truncated,
    /// Stored checksum does not match the bytes. `shard` is the shard
    /// index, or `None` when the manifest's content hash failed.
    ChecksumMismatch {
        /// Which shard failed, `None` for the manifest itself.
        shard: Option<u32>,
    },
    /// Internally inconsistent shape (row counts, byte lengths, or
    /// dimensions that don't add up).
    Shape(&'static str),
    /// A remote shard fetch failed (worker-side cache miss path).
    Fetch(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not a dasc store file (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported store format version {v}"),
            StoreError::Truncated => write!(f, "store file truncated"),
            StoreError::ChecksumMismatch { shard: Some(s) } => {
                write!(f, "checksum mismatch in shard {s}")
            }
            StoreError::ChecksumMismatch { shard: None } => {
                write!(f, "manifest content-hash mismatch")
            }
            StoreError::Shape(what) => write!(f, "inconsistent store shape: {what}"),
            StoreError::Fetch(e) => write!(f, "shard fetch failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}
