//! Streaming store writer: rows in, sharded files out.
//!
//! [`StoreWriter`] buffers at most one shard of rows at a time, so a
//! CSV→store pack runs in `O(shard)` memory regardless of dataset
//! size. Shard files are written as they fill; the manifest is written
//! last, by [`StoreWriter::finish`] — a crashed pack leaves a
//! directory without a manifest, which the reader refuses, so partial
//! packs can never be mistaken for complete ones.

use std::fs;
use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::format::{encode_manifest, encode_shard, shard_file_name, DatasetManifest, ShardMeta};

/// Writes a `.dstr` store directory one row at a time.
pub struct StoreWriter {
    dir: PathBuf,
    dim: usize,
    has_labels: bool,
    shard_rows: usize,
    buf_points: Vec<f64>,
    buf_labels: Vec<usize>,
    buf_rows: usize,
    shards: Vec<ShardMeta>,
    n: u64,
}

impl StoreWriter {
    /// Create (or re-create) a store directory. An existing manifest
    /// is removed up front so a half-finished overwrite is never
    /// readable as the *old* dataset.
    pub fn create(
        dir: &Path,
        dim: usize,
        has_labels: bool,
        shard_rows: usize,
    ) -> Result<Self, StoreError> {
        if shard_rows == 0 {
            return Err(StoreError::Shape("shard_rows must be positive"));
        }
        if shard_rows > u32::MAX as usize {
            return Err(StoreError::Shape("shard_rows exceeds u32"));
        }
        fs::create_dir_all(dir)?;
        let manifest = dir.join(crate::format::MANIFEST_FILE);
        if manifest.exists() {
            fs::remove_file(&manifest)?;
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            dim,
            has_labels,
            shard_rows,
            buf_points: Vec::with_capacity(shard_rows * dim),
            buf_labels: Vec::new(),
            buf_rows: 0,
            shards: Vec::new(),
            n: 0,
        })
    }

    /// Number of rows pushed so far.
    pub fn rows_written(&self) -> u64 {
        self.n + self.buf_rows as u64
    }

    /// Append one row (and its label, iff the store was created with
    /// labels).
    pub fn push_row(&mut self, point: &[f64], label: Option<usize>) -> Result<(), StoreError> {
        if point.len() != self.dim {
            return Err(StoreError::Shape("row dimension mismatch"));
        }
        if label.is_some() != self.has_labels {
            return Err(StoreError::Shape("label presence mismatch"));
        }
        self.buf_points.extend_from_slice(point);
        if let Some(l) = label {
            self.buf_labels.push(l);
        }
        self.buf_rows += 1;
        if self.buf_rows == self.shard_rows {
            self.flush_shard()?;
        }
        Ok(())
    }

    fn flush_shard(&mut self) -> Result<(), StoreError> {
        if self.buf_rows == 0 {
            return Ok(());
        }
        let index = self.shards.len() as u32;
        let labels = self.has_labels.then_some(self.buf_labels.as_slice());
        let (bytes, meta) = encode_shard(index, self.dim as u64, &self.buf_points, labels);
        fs::write(self.dir.join(shard_file_name(index)), &bytes)?;
        self.n += meta.rows;
        self.shards.push(meta);
        self.buf_points.clear();
        self.buf_labels.clear();
        self.buf_rows = 0;
        Ok(())
    }

    /// Flush the final partial shard and write the manifest. Returns
    /// the decoded manifest of the finished store.
    pub fn finish(mut self) -> Result<DatasetManifest, StoreError> {
        self.flush_shard()?;
        let (bytes, content_hash) = encode_manifest(
            self.n,
            self.dim as u64,
            self.has_labels,
            self.shard_rows as u64,
            &self.shards,
        );
        fs::write(self.dir.join(crate::format::MANIFEST_FILE), &bytes)?;
        Ok(DatasetManifest {
            content_hash,
            n: self.n,
            dim: self.dim as u64,
            has_labels: self.has_labels,
            shard_rows: self.shard_rows as u64,
            shards: self.shards,
        })
    }
}
