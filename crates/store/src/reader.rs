//! Zero-copy store reader.
//!
//! [`StoreReader`] opens a `.dstr` directory by validating the
//! manifest, then loads shards lazily on first touch — each shard is
//! mmap'd (buffered-read fallback), checksum-verified once, and cached
//! in an `Arc` for the reader's lifetime. On little-endian targets
//! with an 8-aligned payload (always true for a page-aligned mapping,
//! since the shard header is 64 bytes) the f64 payload is exposed as a
//! borrowed [`FlatPointsView`] straight over the mapping — no
//! `Vec<Vec<f64>>` round-trip, no copy. Otherwise the payload decodes
//! once into an owned buffer and the same view type points there.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use dasc_linalg::{FlatPointsView, PointsView};

use crate::error::StoreError;
use crate::format::{
    shard_file_name, validate_shard, DatasetManifest, ShardMeta, MANIFEST_FILE, SHARD_HEADER_LEN,
};
use crate::mmap::{read_file, FileBytes, ReadMode};

/// One loaded, checksum-verified shard.
#[derive(Debug)]
pub struct Shard {
    bytes: FileBytes,
    /// Owned f64 payload when zero-copy is unavailable (big-endian
    /// target or a misaligned owned buffer).
    decoded: Option<Vec<f64>>,
    labels: Option<Vec<usize>>,
    rows: usize,
    dim: usize,
}

impl Shard {
    /// Validate raw shard-file bytes against the manifest entry and
    /// wrap them. This is the single entry point for disk loads *and*
    /// network fetches — both paths get the same verification.
    pub fn from_bytes(
        bytes: FileBytes,
        index: u32,
        dim: u64,
        has_labels: bool,
        expected: &ShardMeta,
    ) -> Result<Self, StoreError> {
        validate_shard(&bytes, index, dim, has_labels, expected)?;
        let rows = expected.rows as usize;
        let d = dim as usize;
        let payload = &bytes[SHARD_HEADER_LEN..SHARD_HEADER_LEN + rows * d * 8];
        let zero_copy = cfg!(target_endian = "little") && (payload.as_ptr() as usize).is_multiple_of(8);
        let decoded = if zero_copy {
            None
        } else {
            Some(
                payload
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )
        };
        let labels = has_labels.then(|| {
            bytes[SHARD_HEADER_LEN + rows * d * 8..]
                .chunks_exact(8)
                .take(rows)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
                .collect()
        });
        Ok(Self {
            bytes,
            decoded,
            labels,
            rows,
            dim: d,
        })
    }

    /// Rows in this shard.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Point dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the points are served straight from the file bytes
    /// (observability/tests — false on the decode fallback).
    pub fn is_zero_copy(&self) -> bool {
        self.decoded.is_none()
    }

    /// The shard's points as a borrowed flat view.
    #[inline]
    pub fn points(&self) -> FlatPointsView<'_> {
        if let Some(v) = &self.decoded {
            return FlatPointsView::new(v, self.dim, self.rows);
        }
        let payload = &self.bytes[SHARD_HEADER_LEN..SHARD_HEADER_LEN + self.rows * self.dim * 8];
        // Alignment and endianness were checked at construction; the
        // backing bytes live as long as `self`.
        let floats = unsafe {
            std::slice::from_raw_parts(payload.as_ptr() as *const f64, self.rows * self.dim)
        };
        FlatPointsView::new(floats, self.dim, self.rows)
    }

    /// Row `r` of this shard.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        self.points().row(r)
    }

    /// Per-row labels, if the store carries them.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Resident cost for cache accounting: file bytes plus any decode
    /// buffers.
    pub fn cost_bytes(&self) -> usize {
        self.bytes.len()
            + self.decoded.as_ref().map_or(0, |v| v.len() * 8)
            + self.labels.as_ref().map_or(0, |v| v.len() * 8)
    }
}

/// Lazily-loading reader over a `.dstr` store directory.
pub struct StoreReader {
    dir: PathBuf,
    mode: ReadMode,
    manifest: DatasetManifest,
    shards: Vec<OnceLock<Arc<Shard>>>,
}

impl StoreReader {
    /// Open and validate the manifest; shards load lazily. Read mode
    /// comes from `DASC_STORE_NO_MMAP`.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        Self::open_with(dir, ReadMode::from_env())
    }

    /// Open with an explicit read mode (tests exercise both paths).
    pub fn open_with(dir: &Path, mode: ReadMode) -> Result<Self, StoreError> {
        let bytes = std::fs::read(dir.join(MANIFEST_FILE))?;
        let manifest = crate::format::decode_manifest(&bytes)?;
        let shards = (0..manifest.shards.len())
            .map(|_| OnceLock::new())
            .collect();
        Ok(Self {
            dir: dir.to_path_buf(),
            mode,
            manifest,
            shards,
        })
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &DatasetManifest {
        &self.manifest
    }

    /// Store directory on disk.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Number of points.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.manifest.n as usize
    }

    /// Point dimension.
    pub fn dim(&self) -> usize {
        self.manifest.dim as usize
    }

    /// Whether the store carries labels.
    pub fn has_labels(&self) -> bool {
        self.manifest.has_labels
    }

    /// Shard `idx`, loading and checksum-verifying it on first touch.
    pub fn shard(&self, idx: usize) -> Result<&Arc<Shard>, StoreError> {
        if let Some(s) = self.shards[idx].get() {
            return Ok(s);
        }
        let meta = self
            .manifest
            .shards
            .get(idx)
            .ok_or(StoreError::Shape("shard index out of range"))?;
        let bytes = read_file(&self.dir.join(shard_file_name(idx as u32)), self.mode)?;
        let shard = Arc::new(Shard::from_bytes(
            bytes,
            idx as u32,
            self.manifest.dim,
            self.manifest.has_labels,
            meta,
        )?);
        // A racing loader may have won; either Arc is equally valid.
        Ok(self.shards[idx].get_or_init(|| shard))
    }

    /// Raw shard-file bytes (for serving `ShardRequest`s — the bytes
    /// a worker needs to rebuild and verify the shard remotely).
    pub fn shard_file_bytes(&self, idx: usize) -> Result<Vec<u8>, StoreError> {
        if idx >= self.manifest.shards.len() {
            return Err(StoreError::Shape("shard index out of range"));
        }
        Ok(std::fs::read(self.dir.join(shard_file_name(idx as u32)))?)
    }

    /// Load and verify every shard. Call once before treating the
    /// reader as infallible (the [`PointsView`] impl panics on a
    /// shard that fails to load).
    pub fn verify_all(&self) -> Result<(), StoreError> {
        for i in 0..self.manifest.shards.len() {
            self.shard(i)?;
        }
        Ok(())
    }

    /// Gather the label column across all shards, if present.
    pub fn labels(&self) -> Result<Option<Vec<usize>>, StoreError> {
        if !self.manifest.has_labels {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.manifest.shards.len() {
            out.extend_from_slice(self.shard(i)?.labels().expect("labeled store"));
        }
        Ok(Some(out))
    }
}

impl PointsView for StoreReader {
    #[inline]
    fn len(&self) -> usize {
        StoreReader::len(self)
    }

    #[inline]
    fn dim(&self) -> usize {
        StoreReader::dim(self)
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        let (s, r) = self.manifest.locate(i);
        let shard = self
            .shard(s)
            .expect("shard load failed (verify_all surfaces this as an Err)");
        shard.row(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FLAG_LABELS;
    use crate::writer::StoreWriter;

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dasc-store-{}-{tag}-{seq}.dstr",
            std::process::id()
        ))
    }

    fn sample_rows(n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..d).map(|j| (i * d + j) as f64 * 0.5 - 3.0).collect())
            .collect()
    }

    fn pack(dir: &Path, rows: &[Vec<f64>], labels: Option<&[usize]>, shard_rows: usize) {
        let d = rows.first().map_or(0, Vec::len);
        let mut w = StoreWriter::create(dir, d, labels.is_some(), shard_rows).expect("create");
        for (i, r) in rows.iter().enumerate() {
            w.push_row(r, labels.map(|ls| ls[i])).expect("push");
        }
        w.finish().expect("finish");
    }

    #[test]
    fn roundtrip_bit_identical_in_both_read_modes() {
        let rows = sample_rows(10, 3);
        let dir = temp_dir("roundtrip");
        pack(&dir, &rows, None, 4);

        for mode in [ReadMode::Auto, ReadMode::Buffered] {
            let r = StoreReader::open_with(&dir, mode).expect("open");
            assert_eq!(r.len(), 10);
            assert_eq!(r.dim(), 3);
            assert_eq!(r.manifest().shards.len(), 3);
            r.verify_all().expect("verify");
            for (i, row) in rows.iter().enumerate() {
                let got = PointsView::row(&r, i);
                assert_eq!(got.len(), row.len());
                for (a, b) in got.iter().zip(row) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {i} mode {mode:?}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn labels_roundtrip() {
        let rows = sample_rows(5, 2);
        let labels: Vec<usize> = vec![3, 1, 4, 1, 5];
        let dir = temp_dir("labels");
        pack(&dir, &rows, Some(&labels), 2);

        let r = StoreReader::open(&dir).expect("open");
        assert!(r.has_labels());
        assert_eq!(r.labels().expect("labels"), Some(labels));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_path_is_zero_copy_on_little_endian_unix() {
        let rows = sample_rows(6, 2);
        let dir = temp_dir("zerocopy");
        pack(&dir, &rows, None, 6);
        let r = StoreReader::open_with(&dir, ReadMode::Auto).expect("open");
        let shard = r.shard(0).expect("shard");
        if cfg!(all(unix, target_endian = "little")) {
            assert!(shard.is_zero_copy(), "mmap'd LE shard should not decode");
        }
        assert_eq!(shard.row(3), rows[3].as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_payload_is_checksum_mismatch() {
        let rows = sample_rows(4, 2);
        let dir = temp_dir("corrupt");
        pack(&dir, &rows, None, 4);

        let shard_path = dir.join(shard_file_name(0));
        let mut bytes = std::fs::read(&shard_path).expect("read shard");
        bytes[SHARD_HEADER_LEN + 3] ^= 0x10;
        std::fs::write(&shard_path, &bytes).expect("rewrite shard");

        let r = StoreReader::open(&dir).expect("open");
        assert_eq!(
            r.shard(0).err(),
            Some(StoreError::ChecksumMismatch { shard: Some(0) })
        );
        assert!(r.verify_all().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_file_is_truncated_error() {
        let rows = sample_rows(4, 2);
        let dir = temp_dir("trunc");
        pack(&dir, &rows, None, 4);

        let shard_path = dir.join(shard_file_name(0));
        let bytes = std::fs::read(&shard_path).expect("read shard");
        for cut in [
            0,
            1,
            SHARD_HEADER_LEN - 1,
            SHARD_HEADER_LEN,
            bytes.len() - 1,
        ] {
            std::fs::write(&shard_path, &bytes[..cut]).expect("truncate shard");
            let r = StoreReader::open(&dir).expect("open");
            assert_eq!(r.shard(0).err(), Some(StoreError::Truncated), "cut {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let dir = temp_dir("nomanifest");
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(StoreReader::open(&dir), Err(StoreError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_flag_mismatch_with_shard_is_shape_error() {
        // Pack with labels, then doctor the manifest to claim none:
        // the per-shard flag check must refuse the mismatch.
        let rows = sample_rows(3, 2);
        let dir = temp_dir("flagswap");
        pack(&dir, &rows, Some(&[1, 2, 3]), 3);

        let mpath = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&mpath).expect("read manifest");
        let m = crate::format::decode_manifest(&bytes).expect("decode");
        assert!(m.has_labels);
        // Re-encode without the label flag but with shard metas whose
        // byte_len matches the labeled layout — decode_manifest itself
        // rejects that shape inconsistency.
        let (doctored, _) =
            crate::format::encode_manifest(m.n, m.dim, false, m.shard_rows, &m.shards);
        assert!(crate::format::decode_manifest(&doctored).is_err());
        let _ = FLAG_LABELS;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_rejects_shape_violations() {
        let dir = temp_dir("shapes");
        assert!(StoreWriter::create(&dir, 2, false, 0).is_err());
        let mut w = StoreWriter::create(&dir, 2, false, 4).expect("create");
        assert!(w.push_row(&[1.0], None).is_err());
        assert!(w.push_row(&[1.0, 2.0], Some(1)).is_err());
        assert!(w.push_row(&[1.0, 2.0], None).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_store_roundtrips() {
        let dir = temp_dir("empty");
        let w = StoreWriter::create(&dir, 3, false, 8).expect("create");
        let m = w.finish().expect("finish");
        assert_eq!(m.n, 0);
        let r = StoreReader::open(&dir).expect("open");
        assert_eq!(r.len(), 0);
        r.verify_all().expect("verify empty");
        std::fs::remove_dir_all(&dir).ok();
    }
}
