//! Binary layout of the `.dstr` dataset store.
//!
//! A store is a *directory* holding one manifest plus fixed-size
//! shards (HDFS-block style — the unit of distribution, caching, and
//! checksumming):
//!
//! ```text
//! data.dstr/
//!   manifest.dstr          DSTR | ver u16 | flags u16 | n u64 | d u64
//!                          | shard_rows u64 | num_shards u32
//!                          | num_shards × (rows u64, byte_len u64, checksum u64)
//!                          | content_hash u64            (FNV-1a-64 of all prior bytes)
//!   shard-00000.dsh        DSHD | ver u16 | flags u16 | index u32 | rows u32
//!                          | d u64 | zero padding to 64 B
//!                          | rows×d f64 LE payload
//!                          | rows × u64 LE labels        (iff flags bit 0)
//!                          | checksum u64                (FNV-1a-64 of header+payload+labels)
//! ```
//!
//! All integers and floats are little-endian. The 64-byte shard header
//! keeps the f64 payload 8-byte aligned relative to the file start, so
//! an mmap'd shard (page-aligned base) can expose the payload as a
//! borrowed `&[f64]` with no copy. The manifest's per-shard checksum
//! equals the shard's own trailer, so a shard fetched over the network
//! is verifiable against the manifest alone; the content hash covers
//! the manifest bytes — and through the embedded checksums,
//! transitively, every data byte in the store.

use crate::error::StoreError;

/// Magic bytes opening the manifest file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"DSTR";
/// Magic bytes opening each shard file.
pub const SHARD_MAGIC: [u8; 4] = *b"DSHD";
/// Current (only) format version.
pub const FORMAT_VERSION: u16 = 1;
/// Flags bit 0: shards carry a per-row label column.
pub const FLAG_LABELS: u16 = 1;
/// Fixed shard header length; a multiple of 8 so the payload stays
/// f64-aligned in a page-aligned mapping.
pub const SHARD_HEADER_LEN: usize = 64;
/// Manifest file name inside the store directory.
pub const MANIFEST_FILE: &str = "manifest.dstr";
/// Default rows per shard when the packer isn't told otherwise.
pub const DEFAULT_SHARD_ROWS: usize = 4096;

/// FNV-1a 64-bit — same parameters as `dasc-net`'s frame checksum
/// (reimplemented here so the store stays independent of the
/// transport crate).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// File name of shard `index` inside the store directory.
pub fn shard_file_name(index: u32) -> String {
    format!("shard-{index:05}.dsh")
}

/// Manifest entry for one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// Rows stored in this shard.
    pub rows: u64,
    /// Total shard file length in bytes (header + payload + labels +
    /// trailing checksum).
    pub byte_len: u64,
    /// FNV-1a-64 over the shard file minus its 8-byte trailer; equal
    /// to the trailer itself.
    pub checksum: u64,
}

/// Decoded manifest: the complete shape of a stored dataset plus the
/// shard table. This is what the coordinator ships to workers instead
/// of inline points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetManifest {
    /// FNV-1a-64 over the manifest bytes preceding the hash field —
    /// the dataset's identity for cache keying and ref submission.
    pub content_hash: u64,
    /// Total number of points.
    pub n: u64,
    /// Dimension of each point.
    pub dim: u64,
    /// Whether shards carry a label column.
    pub has_labels: bool,
    /// Nominal rows per shard (every shard but the last holds exactly
    /// this many).
    pub shard_rows: u64,
    /// Per-shard table, in shard order.
    pub shards: Vec<ShardMeta>,
}

impl DatasetManifest {
    /// `(shard index, row within shard)` of global row `i`.
    ///
    /// # Panics
    /// Panics if the store is empty (`shard_rows == 0`).
    #[inline]
    pub fn locate(&self, i: usize) -> (usize, usize) {
        let sr = self.shard_rows as usize;
        (i / sr, i % sr)
    }

    /// Expected byte length of shard `s` given its row count.
    pub fn expected_shard_len(&self, rows: u64) -> u64 {
        shard_byte_len(rows, self.dim, self.has_labels)
    }
}

/// Total file length of a shard holding `rows` rows of dimension `dim`.
pub fn shard_byte_len(rows: u64, dim: u64, has_labels: bool) -> u64 {
    let labels = if has_labels { rows * 8 } else { 0 };
    SHARD_HEADER_LEN as u64 + rows * dim * 8 + labels + 8
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a byte slice; every read
/// past the end is [`StoreError::Truncated`], never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated)?;
        if end > self.buf.len() {
            return Err(StoreError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Encode a manifest; returns the file bytes and the content hash.
pub fn encode_manifest(
    n: u64,
    dim: u64,
    has_labels: bool,
    shard_rows: u64,
    shards: &[ShardMeta],
) -> (Vec<u8>, u64) {
    let mut out = Vec::with_capacity(40 + shards.len() * 24);
    out.extend_from_slice(&MANIFEST_MAGIC);
    push_u16(&mut out, FORMAT_VERSION);
    push_u16(&mut out, if has_labels { FLAG_LABELS } else { 0 });
    push_u64(&mut out, n);
    push_u64(&mut out, dim);
    push_u64(&mut out, shard_rows);
    push_u32(&mut out, shards.len() as u32);
    for s in shards {
        push_u64(&mut out, s.rows);
        push_u64(&mut out, s.byte_len);
        push_u64(&mut out, s.checksum);
    }
    let hash = fnv1a64(&out);
    push_u64(&mut out, hash);
    (out, hash)
}

/// Decode and validate a manifest file: magic, version, content hash,
/// and internal shape consistency (row totals, shard sizing, byte
/// lengths).
pub fn decode_manifest(bytes: &[u8]) -> Result<DatasetManifest, StoreError> {
    let mut c = Cursor::new(bytes);
    if c.take(4)? != MANIFEST_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = c.u16()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let flags = c.u16()?;
    let has_labels = flags & FLAG_LABELS != 0;
    let n = c.u64()?;
    let dim = c.u64()?;
    let shard_rows = c.u64()?;
    let num_shards = c.u32()? as usize;
    // Guard the allocation before trusting the count: each entry needs
    // 24 bytes of body, so an absurd count on a short file is Truncated.
    if num_shards > bytes.len() / 24 + 1 {
        return Err(StoreError::Truncated);
    }
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        shards.push(ShardMeta {
            rows: c.u64()?,
            byte_len: c.u64()?,
            checksum: c.u64()?,
        });
    }
    let hashed_len = c.pos;
    let content_hash = c.u64()?;
    if c.pos != bytes.len() {
        return Err(StoreError::Shape("trailing bytes after manifest"));
    }
    if fnv1a64(&bytes[..hashed_len]) != content_hash {
        return Err(StoreError::ChecksumMismatch { shard: None });
    }

    if n > 0 && shard_rows == 0 {
        return Err(StoreError::Shape("zero shard_rows with data"));
    }
    let total: u64 = shards.iter().map(|s| s.rows).sum();
    if total != n {
        return Err(StoreError::Shape("shard rows do not sum to n"));
    }
    for (i, s) in shards.iter().enumerate() {
        let last = i + 1 == shards.len();
        if s.rows == 0 || s.rows > shard_rows || (!last && s.rows != shard_rows) {
            return Err(StoreError::Shape("shard row count out of range"));
        }
        if s.byte_len != shard_byte_len(s.rows, dim, has_labels) {
            return Err(StoreError::Shape("shard byte length inconsistent"));
        }
    }

    Ok(DatasetManifest {
        content_hash,
        n,
        dim,
        has_labels,
        shard_rows,
        shards,
    })
}

/// Encode one shard file; returns the file bytes and its manifest
/// entry.
///
/// # Panics
/// Panics if the buffer shapes disagree with `rows`/`dim` (writer
/// bug, not a data error).
pub fn encode_shard(
    index: u32,
    dim: u64,
    points: &[f64],
    labels: Option<&[usize]>,
) -> (Vec<u8>, ShardMeta) {
    let rows = if dim == 0 {
        0
    } else {
        assert_eq!(points.len() as u64 % dim, 0, "shard payload shape");
        points.len() as u64 / dim
    };
    if let Some(ls) = labels {
        assert_eq!(ls.len() as u64, rows, "shard label count");
    }
    let byte_len = shard_byte_len(rows, dim, labels.is_some());
    let mut out = Vec::with_capacity(byte_len as usize);
    out.extend_from_slice(&SHARD_MAGIC);
    push_u16(&mut out, FORMAT_VERSION);
    push_u16(&mut out, if labels.is_some() { FLAG_LABELS } else { 0 });
    push_u32(&mut out, index);
    push_u32(&mut out, rows as u32);
    push_u64(&mut out, dim);
    out.resize(SHARD_HEADER_LEN, 0);
    for &v in points {
        push_u64(&mut out, v.to_bits());
    }
    if let Some(ls) = labels {
        for &l in ls {
            push_u64(&mut out, l as u64);
        }
    }
    let checksum = fnv1a64(&out);
    push_u64(&mut out, checksum);
    (
        out,
        ShardMeta {
            rows,
            byte_len,
            checksum,
        },
    )
}

/// Validate a raw shard file against its manifest entry: length,
/// magic/version, header fields, and the FNV trailer. Returns the
/// payload offset (always [`SHARD_HEADER_LEN`]) on success.
pub fn validate_shard(
    bytes: &[u8],
    index: u32,
    dim: u64,
    has_labels: bool,
    expected: &ShardMeta,
) -> Result<(), StoreError> {
    if (bytes.len() as u64) < expected.byte_len {
        return Err(StoreError::Truncated);
    }
    if bytes.len() as u64 != expected.byte_len {
        return Err(StoreError::Shape("shard file longer than manifest entry"));
    }
    let body = &bytes[..bytes.len() - 8];
    let trailer = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if trailer != expected.checksum || fnv1a64(body) != trailer {
        return Err(StoreError::ChecksumMismatch { shard: Some(index) });
    }
    let mut c = Cursor::new(body);
    if c.take(4)? != SHARD_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = c.u16()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let flags = c.u16()?;
    if (flags & FLAG_LABELS != 0) != has_labels {
        return Err(StoreError::Shape(
            "shard label flag disagrees with manifest",
        ));
    }
    if c.u32()? != index {
        return Err(StoreError::Shape("shard index disagrees with file name"));
    }
    if u64::from(c.u32()?) != expected.rows {
        return Err(StoreError::Shape("shard row count disagrees with manifest"));
    }
    if c.u64()? != dim {
        return Err(StoreError::Shape("shard dimension disagrees with manifest"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_roundtrip() {
        let shards = vec![
            ShardMeta {
                rows: 4,
                byte_len: shard_byte_len(4, 3, true),
                checksum: 7,
            },
            ShardMeta {
                rows: 2,
                byte_len: shard_byte_len(2, 3, true),
                checksum: 9,
            },
        ];
        let (bytes, hash) = encode_manifest(6, 3, true, 4, &shards);
        let m = decode_manifest(&bytes).expect("decode");
        assert_eq!(m.content_hash, hash);
        assert_eq!(m.n, 6);
        assert_eq!(m.dim, 3);
        assert!(m.has_labels);
        assert_eq!(m.shard_rows, 4);
        assert_eq!(m.shards, shards);
        assert_eq!(m.locate(5), (1, 1));
    }

    #[test]
    fn manifest_truncation_at_every_offset_errors() {
        let shards = vec![ShardMeta {
            rows: 2,
            byte_len: shard_byte_len(2, 2, false),
            checksum: 1,
        }];
        let (bytes, _) = encode_manifest(2, 2, false, 2, &shards);
        for cut in 0..bytes.len() {
            let err = decode_manifest(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(err, StoreError::Truncated | StoreError::BadMagic),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn manifest_corruption_is_checksum_class() {
        let (mut bytes, _) = encode_manifest(0, 2, false, 4, &[]);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = decode_manifest(&bytes).expect_err("corrupt must fail");
        // Flipping a bit mid-file lands in a length/count field or the
        // hashed region; either way it must be a typed error.
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { shard: None }
                    | StoreError::Truncated
                    | StoreError::Shape(_)
                    | StoreError::BadVersion(_)
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn shard_roundtrip_and_validate() {
        let pts = [1.0, 2.0, 3.0, 4.0];
        let labels = [5usize, 6];
        let (bytes, meta) = encode_shard(3, 2, &pts, Some(&labels));
        assert_eq!(meta.rows, 2);
        assert_eq!(meta.byte_len as usize, bytes.len());
        validate_shard(&bytes, 3, 2, true, &meta).expect("valid shard");
    }

    #[test]
    fn shard_bitflip_is_checksum_mismatch() {
        let (mut bytes, meta) = encode_shard(0, 2, &[1.0, 2.0], None);
        // Flip one payload bit (first f64, past the 64-byte header).
        bytes[SHARD_HEADER_LEN] ^= 1;
        assert_eq!(
            validate_shard(&bytes, 0, 2, false, &meta),
            Err(StoreError::ChecksumMismatch { shard: Some(0) })
        );
    }

    #[test]
    fn shard_truncation_at_every_offset_errors() {
        let (bytes, meta) = encode_shard(1, 1, &[9.0, 8.0], None);
        for cut in 0..bytes.len() {
            let err = validate_shard(&bytes[..cut], 1, 1, false, &meta)
                .expect_err("truncated shard must fail");
            assert_eq!(err, StoreError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn wrong_index_and_flags_are_shape_errors() {
        let (bytes, meta) = encode_shard(2, 1, &[1.0], None);
        assert!(matches!(
            validate_shard(&bytes, 3, 1, false, &meta),
            Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Shape(_))
        ));
        assert!(matches!(
            validate_shard(&bytes, 2, 1, true, &meta),
            Err(StoreError::Shape(_))
        ));
    }
}
