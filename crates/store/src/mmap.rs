//! Dependency-free memory mapping with a buffered-read fallback.
//!
//! Shards open through [`read_file`], which memory-maps on Unix (via
//! the vendored `libc` FFI shim — raw `mmap`/`munmap`, no external
//! code) and falls back to an ordinary buffered read when mapping is
//! unavailable, fails, or is disabled with `DASC_STORE_NO_MMAP=1`.
//! Either way the caller gets [`FileBytes`], which derefs to `&[u8]`;
//! whether the bytes are borrowed from the page cache or owned on the
//! heap is invisible above this module.

use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

/// How to load a shard file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// mmap when possible, buffered read otherwise (the default).
    Auto,
    /// Always buffered read (used by tests and `DASC_STORE_NO_MMAP`).
    Buffered,
}

impl ReadMode {
    /// Resolve the process-wide default: `Auto` unless
    /// `DASC_STORE_NO_MMAP` is set to something other than `0`.
    pub fn from_env() -> Self {
        match std::env::var("DASC_STORE_NO_MMAP") {
            Ok(v) if v != "0" && !v.is_empty() => ReadMode::Buffered,
            _ => ReadMode::Auto,
        }
    }
}

/// A whole file's bytes: either a live read-only mapping or an owned
/// buffer.
pub enum FileBytes {
    /// Memory-mapped (Unix only).
    #[cfg(unix)]
    Mapped(Mmap),
    /// Read into the heap.
    Owned(Vec<u8>),
}

impl Deref for FileBytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            FileBytes::Mapped(m) => m,
            FileBytes::Owned(v) => v,
        }
    }
}

impl std::fmt::Debug for FileBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            FileBytes::Mapped(m) => write!(f, "FileBytes::Mapped({} bytes)", m.len()),
            FileBytes::Owned(v) => write!(f, "FileBytes::Owned({} bytes)", v.len()),
        }
    }
}

/// Whether these bytes came from an mmap (observability/tests).
pub fn is_mapped(bytes: &FileBytes) -> bool {
    match bytes {
        #[cfg(unix)]
        FileBytes::Mapped(_) => true,
        FileBytes::Owned(_) => false,
    }
}

/// Load a file per `mode`. mmap failure (or a zero-length file, which
/// `mmap` rejects) silently degrades to the buffered path — mapping is
/// an optimization, never a correctness requirement.
pub fn read_file(path: &Path, mode: ReadMode) -> std::io::Result<FileBytes> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len() as usize;
    #[cfg(unix)]
    if mode == ReadMode::Auto && len > 0 {
        if let Some(map) = Mmap::map(&file, len) {
            return Ok(FileBytes::Mapped(map));
        }
    }
    let _ = mode;
    let mut buf = Vec::with_capacity(len);
    file.read_to_end(&mut buf)?;
    Ok(FileBytes::Owned(buf))
}

/// A read-only private mapping of an entire file.
#[cfg(unix)]
pub struct Mmap {
    ptr: *mut libc::c_void,
    len: usize,
}

// Read-only, MAP_PRIVATE, and never handed out mutably: safe to share
// across threads.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Mmap {
    /// Map `len` bytes of `file` read-only; `None` if the kernel
    /// refuses (caller falls back to a buffered read).
    fn map(file: &File, len: usize) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ,
                libc::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return None;
        }
        Some(Self { ptr, len })
    }
}

#[cfg(unix)]
impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe {
            libc::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("dasc-mmap-{}-{tag}-{seq}", std::process::id()))
    }

    #[test]
    fn mapped_and_buffered_agree() {
        let path = temp_path("agree");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).expect("write temp file");

        let auto = read_file(&path, ReadMode::Auto).expect("auto read");
        let buf = read_file(&path, ReadMode::Buffered).expect("buffered read");
        assert_eq!(&auto[..], &payload[..]);
        assert_eq!(&buf[..], &payload[..]);
        assert!(!is_mapped(&buf));
        #[cfg(unix)]
        assert!(is_mapped(&auto), "unix Auto should mmap a non-empty file");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_degrades_to_owned() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").expect("write temp file");
        let bytes = read_file(&path, ReadMode::Auto).expect("read empty");
        assert!(bytes.is_empty());
        assert!(!is_mapped(&bytes));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("missing");
        assert!(read_file(&path, ReadMode::Auto).is_err());
    }
}
