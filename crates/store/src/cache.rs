//! Worker-side shard cache.
//!
//! Workers executing shard-addressed tasks resolve shards through a
//! [`ShardCache`]: a byte-bounded LRU keyed by `(content_hash, shard)`
//! so shards of different datasets never collide. On a miss the
//! caller-supplied fetch closure pulls the raw shard file (over
//! `dasc-net` in the distributed runtime, from disk in tests), the
//! bytes are checksum-verified against the manifest entry, and the
//! decoded shard is retained until evicted by size pressure.
//!
//! Capacity defaults to 256 MiB and is overridable with
//! `DASC_SHARD_CACHE_BYTES`. Every touch is counted in the global
//! metrics registry (`dasc_store_shard_cache_{hits,misses,evictions}_total`,
//! `dasc_store_shard_fetch_us`), so the federated coordinator
//! `/metrics` view shows per-worker cache behaviour with no extra
//! plumbing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::StoreError;
use crate::format::ShardMeta;
use crate::mmap::FileBytes;
use crate::reader::Shard;

/// Default cache capacity when `DASC_SHARD_CACHE_BYTES` is unset.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

struct Entry {
    shard: Arc<Shard>,
    cost: usize,
    last_used: u64,
}

struct Inner {
    entries: HashMap<(u64, u32), Entry>,
    bytes: usize,
    tick: u64,
}

/// Byte-bounded LRU over verified shards.
pub struct ShardCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ShardCache {
    /// Cache with an explicit byte capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            capacity: capacity_bytes,
        }
    }

    /// Cache sized from `DASC_SHARD_CACHE_BYTES` (bytes; default
    /// 256 MiB, invalid values fall back to the default).
    pub fn from_env() -> Self {
        let capacity = std::env::var("DASC_SHARD_CACHE_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CACHE_BYTES);
        Self::new(capacity)
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Currently resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("shard cache lock").bytes
    }

    /// Resolve `(content_hash, shard)` — from cache on a hit, else via
    /// `fetch` (raw shard-file bytes), verified against `meta` before
    /// anything enters the cache. A shard larger than the whole cache
    /// is returned but not retained.
    pub fn get_or_fetch(
        &self,
        content_hash: u64,
        shard: u32,
        dim: u64,
        has_labels: bool,
        meta: &ShardMeta,
        fetch: impl FnOnce() -> Result<Vec<u8>, StoreError>,
    ) -> Result<Arc<Shard>, StoreError> {
        let key = (content_hash, shard);
        {
            let mut inner = self.inner.lock().expect("shard cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.entries.get_mut(&key) {
                e.last_used = tick;
                dasc_obs::global().inc("dasc_store_shard_cache_hits_total", 1);
                return Ok(Arc::clone(&e.shard));
            }
        }

        dasc_obs::global().inc("dasc_store_shard_cache_misses_total", 1);
        let t0 = Instant::now();
        let bytes = fetch()?;
        let loaded = Arc::new(Shard::from_bytes(
            FileBytes::Owned(bytes),
            shard,
            dim,
            has_labels,
            meta,
        )?);
        dasc_obs::global().observe("dasc_store_shard_fetch_us", t0.elapsed().as_micros() as u64);

        let cost = loaded.cost_bytes();
        let mut inner = self.inner.lock().expect("shard cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.get_mut(&key) {
            // A racing fetch beat us; keep the resident copy.
            e.last_used = tick;
            return Ok(Arc::clone(&e.shard));
        }
        if cost <= self.capacity {
            while inner.bytes + cost > self.capacity {
                let Some((&victim, _)) = inner.entries.iter().min_by_key(|(_, e)| e.last_used)
                else {
                    break;
                };
                let evicted = inner.entries.remove(&victim).expect("victim present");
                inner.bytes -= evicted.cost;
                dasc_obs::global().inc("dasc_store_shard_cache_evictions_total", 1);
            }
            inner.bytes += cost;
            inner.entries.insert(
                key,
                Entry {
                    shard: Arc::clone(&loaded),
                    cost,
                    last_used: tick,
                },
            );
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_shard;

    fn shard_bytes(index: u32, rows: usize, dim: usize, fill: f64) -> (Vec<u8>, ShardMeta) {
        let pts: Vec<f64> = (0..rows * dim).map(|i| fill + i as f64).collect();
        encode_shard(index, dim as u64, &pts, None)
    }

    #[test]
    fn hit_miss_eviction_lifecycle_with_counters() {
        let reg = dasc_obs::global();
        let hits0 = reg.counter_value("dasc_store_shard_cache_hits_total");
        let miss0 = reg.counter_value("dasc_store_shard_cache_misses_total");
        let evict0 = reg.counter_value("dasc_store_shard_cache_evictions_total");

        let (b0, m0) = shard_bytes(0, 8, 4, 0.0);
        let (b1, m1) = shard_bytes(1, 8, 4, 100.0);
        // Capacity fits exactly one shard's resident cost.
        let cache = ShardCache::new(m0.byte_len as usize + 64);

        // Miss, then hit.
        let s = cache
            .get_or_fetch(7, 0, 4, false, &m0, || Ok(b0.clone()))
            .expect("first fetch");
        assert_eq!(s.rows(), 8);
        cache
            .get_or_fetch(7, 0, 4, false, &m0, || panic!("must be cached"))
            .expect("hit");

        // A second shard displaces the first.
        cache
            .get_or_fetch(7, 1, 4, false, &m1, || Ok(b1.clone()))
            .expect("second fetch");
        assert!(cache.resident_bytes() <= cache.capacity_bytes());
        cache
            .get_or_fetch(7, 0, 4, false, &m0, || Ok(b0.clone()))
            .expect("refetch after eviction");

        assert_eq!(
            reg.counter_value("dasc_store_shard_cache_hits_total") - hits0,
            1
        );
        assert_eq!(
            reg.counter_value("dasc_store_shard_cache_misses_total") - miss0,
            3
        );
        assert!(reg.counter_value("dasc_store_shard_cache_evictions_total") - evict0 >= 2);
    }

    #[test]
    fn corrupt_fetch_never_enters_cache() {
        let (mut bytes, meta) = shard_bytes(0, 4, 2, 1.0);
        bytes[crate::format::SHARD_HEADER_LEN] ^= 0xFF;
        let cache = ShardCache::new(1 << 20);
        let err = cache
            .get_or_fetch(1, 0, 2, false, &meta, || Ok(bytes.clone()))
            .expect_err("corrupt shard must fail");
        assert_eq!(err, StoreError::ChecksumMismatch { shard: Some(0) });
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn fetch_error_propagates() {
        let (_, meta) = shard_bytes(0, 2, 2, 0.0);
        let cache = ShardCache::new(1 << 20);
        let err = cache
            .get_or_fetch(1, 0, 2, false, &meta, || {
                Err(StoreError::Fetch("worker offline".into()))
            })
            .expect_err("fetch error");
        assert_eq!(err, StoreError::Fetch("worker offline".into()));
    }

    #[test]
    fn oversized_shard_served_but_not_retained() {
        let (b, m) = shard_bytes(0, 64, 8, 0.0);
        let cache = ShardCache::new(16); // smaller than any shard
        let s = cache
            .get_or_fetch(2, 0, 8, false, &m, || Ok(b.clone()))
            .expect("oversized fetch");
        assert_eq!(s.rows(), 64);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn different_datasets_do_not_collide() {
        let (b, m) = shard_bytes(0, 4, 2, 1.0);
        let cache = ShardCache::new(1 << 20);
        cache
            .get_or_fetch(10, 0, 2, false, &m, || Ok(b.clone()))
            .expect("dataset 10");
        // Same shard index, different content hash: must re-fetch.
        let mut fetched = false;
        cache
            .get_or_fetch(11, 0, 2, false, &m, || {
                fetched = true;
                Ok(b.clone())
            })
            .expect("dataset 11");
        assert!(fetched, "distinct datasets must not share cache entries");
    }
}
