//! Criterion microbenchmarks over the hot kernels behind the figures:
//! signature generation (Fig. 3/6 stage 1), bucket merging, Gram-block
//! assembly (Fig. 5/6), eigensolvers (per-bucket spectral step), and
//! K-means (final step of every algorithm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dasc_core::{KMeans, KMeansConfig};
use dasc_data::SyntheticConfig;
use dasc_kernel::{full_gram, ApproximateGram, Kernel};
use dasc_linalg::{lanczos, symmetric_eigen, LanczosOptions, Matrix};
use dasc_lsh::{BucketSet, LshConfig, SignatureModel};

fn bench_signatures(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsh_signatures");
    for &n in &[1024usize, 4096] {
        let ds = SyntheticConfig::blobs(n, 64, 16).generate();
        let model = SignatureModel::fit(&ds.points, &LshConfig::for_dataset(n));
        g.bench_with_input(BenchmarkId::new("hash_all", n), &n, |b, _| {
            b.iter(|| black_box(model.hash_all(&ds.points)))
        });
        g.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| black_box(SignatureModel::fit(&ds.points, &LshConfig::for_dataset(n))))
        });
    }
    g.finish();
}

fn bench_bucket_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket_merge");
    let ds = SyntheticConfig::blobs(8192, 64, 16).generate();
    let model = SignatureModel::fit(&ds.points, &LshConfig::with_bits(10));
    let sigs = model.hash_all(&ds.points);
    let buckets = BucketSet::from_signatures(&sigs);
    g.bench_function("from_signatures", |b| {
        b.iter(|| black_box(BucketSet::from_signatures(&sigs)))
    });
    g.bench_function("greedy_pairs_p_m_minus_1", |b| {
        b.iter(|| black_box(buckets.merge_greedy_pairs(9)))
    });
    g.bench_function("closure_p_m_minus_1", |b| {
        b.iter(|| black_box(buckets.merge_similar(9)))
    });
    g.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram");
    g.sample_size(20);
    let kernel = Kernel::gaussian(0.3);
    for &n in &[256usize, 512] {
        let ds = SyntheticConfig::blobs(n, 64, 8).generate();
        g.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| black_box(full_gram(&ds.points, &kernel)))
        });
        let cfg = LshConfig::with_bits(3);
        let model = SignatureModel::fit(&ds.points, &cfg);
        let buckets = BucketSet::from_signatures(&model.hash_all(&ds.points));
        g.bench_with_input(BenchmarkId::new("block_diagonal", n), &n, |b, _| {
            b.iter(|| black_box(ApproximateGram::from_buckets(&ds.points, &buckets, &kernel)))
        });
    }
    g.finish();
}

fn bench_eigensolvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("eigen");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |i, j| (-((i as f64 - j as f64) / 16.0).powi(2)).exp());
        g.bench_with_input(BenchmarkId::new("dense_full", n), &n, |b, _| {
            b.iter(|| black_box(symmetric_eigen(&a)))
        });
        g.bench_with_input(BenchmarkId::new("lanczos_top8", n), &n, |b, _| {
            b.iter(|| black_box(lanczos(&a, &LanczosOptions::top(8))))
        });
    }
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans");
    g.sample_size(20);
    for &n in &[1024usize, 4096] {
        let ds = SyntheticConfig::blobs(n, 16, 8).generate();
        g.bench_with_input(BenchmarkId::new("k8", n), &n, |b, _| {
            b.iter(|| black_box(KMeans::new(KMeansConfig::new(8)).run(&ds.points)))
        });
    }
    g.finish();
}

fn bench_consumers(c: &mut Criterion) {
    // The three downstream consumers of the approximate Gram matrix:
    // spectral clustering is covered end-to-end in `ablations`; here the
    // ridge and KPCA solves, exact vs block-diagonal.
    let mut g = c.benchmark_group("consumers");
    g.sample_size(10);
    let n = 512usize;
    let ds = SyntheticConfig::blobs(n, 16, 8).generate();
    let kernel = Kernel::gaussian(0.3);
    let targets: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let model = SignatureModel::fit(&ds.points, &LshConfig::with_bits(3));
    let buckets = BucketSet::from_signatures(&model.hash_all(&ds.points));
    let gram = ApproximateGram::from_buckets(&ds.points, &buckets, &kernel);

    g.bench_function("ridge_exact", |b| {
        b.iter(|| {
            black_box(dasc_kernel::RidgeModel::fit_exact(
                &ds.points, &targets, kernel, 1e-3,
            ))
        })
    });
    g.bench_function("ridge_blocks", |b| {
        b.iter(|| {
            black_box(dasc_kernel::RidgeModel::fit_blocks(
                &gram, &targets, kernel, 1e-3,
            ))
        })
    });
    g.bench_function("kpca_exact_8d", |b| {
        b.iter(|| black_box(dasc_kernel::kernel_pca(&ds.points, &kernel, 8)))
    });
    g.bench_function("kpca_blocks_8d", |b| {
        b.iter(|| black_box(dasc_kernel::kernel_pca_blocks(&gram, 8)))
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.sample_size(20);
    let n = 1024usize;
    let ds = SyntheticConfig::blobs(n, 8, 8).generate();
    let labels = ds.labels.clone().expect("labelled");
    let shifted: Vec<usize> = labels.iter().map(|&l| (l + 1) % 8).collect();
    g.bench_function("accuracy_hungarian", |b| {
        b.iter(|| black_box(dasc_metrics::accuracy(&shifted, &labels)))
    });
    g.bench_function("dbi", |b| {
        b.iter(|| black_box(dasc_metrics::davies_bouldin(&ds.points, &labels, 8)))
    });
    g.bench_function("silhouette", |b| {
        b.iter(|| black_box(dasc_metrics::silhouette(&ds.points, &labels, 8)))
    });
    g.bench_function("nmi", |b| {
        b.iter(|| black_box(dasc_metrics::nmi(&shifted, &labels)))
    });
    g.finish();
}

fn bench_kdtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn");
    g.sample_size(20);
    let n = 4096usize;
    let ds = SyntheticConfig::blobs(n, 8, 16).generate();
    let tree = dasc_lsh::KdTree::build(&ds.points);
    g.bench_function("kdtree_build_4096x8", |b| {
        b.iter(|| black_box(dasc_lsh::KdTree::build(&ds.points)))
    });
    g.bench_function("kdtree_10nn_query", |b| {
        b.iter(|| black_box(tree.nearest(&ds.points, &ds.points[17], 10, Some(17))))
    });
    g.bench_function("brute_force_10nn_query", |b| {
        b.iter(|| {
            let q = &ds.points[17];
            let mut all: Vec<(usize, f64)> = ds
                .points
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 17)
                .map(|(i, p)| {
                    let d: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                    (i, d)
                })
                .collect();
            all.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN"));
            all.truncate(10);
            black_box(all)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_signatures,
    bench_bucket_merge,
    bench_gram,
    bench_eigensolvers,
    bench_kmeans,
    bench_consumers,
    bench_metrics,
    bench_kdtree
);
criterion_main!(benches);
