//! Runtime ablations over DASC's design choices (DESIGN.md §5): merge
//! strategy, signature width M, hash family, and threshold rule. The
//! quality counterparts live in the `ablation_quality` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dasc_core::{Dasc, DascConfig};
use dasc_data::SyntheticConfig;
use dasc_kernel::Kernel;
use dasc_lsh::{
    LshConfig, MergeStrategy, MinHash, PStableLsh, PcaHash, SignRandomProjection, SignatureModel,
    ThresholdRule,
};

fn dataset(n: usize) -> dasc_data::Dataset {
    SyntheticConfig::blobs(n, 64, 16).seed(0xAB1A).generate()
}

fn bench_merge_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_merge_strategy");
    g.sample_size(10);
    let ds = dataset(2048);
    let kernel = Kernel::gaussian(0.3);
    for (label, strategy) in [
        ("greedy_pairs", MergeStrategy::GreedyPairs),
        ("closure", MergeStrategy::TransitiveClosure),
        ("none", MergeStrategy::None),
    ] {
        g.bench_function(label, |b| {
            let cfg = DascConfig::for_dataset(2048, 16)
                .kernel(kernel)
                .lsh(LshConfig::with_bits(5).merge_strategy(strategy));
            b.iter(|| black_box(Dasc::new(cfg.clone()).run(&ds.points)))
        });
    }
    g.finish();
}

fn bench_m_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_m_sweep");
    g.sample_size(10);
    let ds = dataset(2048);
    let kernel = Kernel::gaussian(0.3);
    for &m in &[2usize, 4, 6, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let cfg = DascConfig::for_dataset(2048, 16)
                .kernel(kernel)
                .lsh(LshConfig::with_bits(m));
            b.iter(|| black_box(Dasc::new(cfg.clone()).run(&ds.points)))
        });
    }
    g.finish();
}

fn bench_hash_families(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_hash_family");
    let ds = dataset(4096);
    let m = 8usize;
    let paper = SignatureModel::fit(&ds.points, &LshConfig::with_bits(m));
    let srp = SignRandomProjection::new(m, 64, 7);
    let mh = MinHash::new(m, 7);
    g.bench_function("paper_axis_threshold", |b| {
        b.iter(|| black_box(paper.hash_all(&ds.points)))
    });
    g.bench_function("sign_random_projection", |b| {
        b.iter(|| black_box(srp.hash_all(&ds.points)))
    });
    g.bench_function("min_hash", |b| {
        b.iter(|| black_box(mh.hash_all(&ds.points)))
    });
    let ps = PStableLsh::new(m, 64, 1.0, 7);
    g.bench_function("p_stable", |b| {
        b.iter(|| black_box(ps.hash_all(&ds.points)))
    });
    let pca = PcaHash::fit(&ds.points, m);
    g.bench_function("pca_hash", |b| {
        b.iter(|| black_box(pca.hash_all(&ds.points)))
    });
    g.finish();
}

fn bench_threshold_rules(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_threshold_rule");
    let ds = dataset(4096);
    for (label, rule) in [
        ("histogram_valley", ThresholdRule::HistogramValley),
        ("median", ThresholdRule::Median),
        ("midpoint", ThresholdRule::Midpoint),
    ] {
        g.bench_function(label, |b| {
            let cfg = LshConfig::with_bits(8).threshold_rule(rule);
            b.iter(|| black_box(SignatureModel::fit(&ds.points, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_merge_strategy,
    bench_m_sweep,
    bench_hash_families,
    bench_threshold_rules
);
criterion_main!(benches);
