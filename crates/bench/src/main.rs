//! Index of the figure/table regenerators. Run any of them with
//! `cargo run --release -p dasc-bench --bin <name> [--full]`.

fn main() {
    println!("dasc-bench: per-figure/table regenerators (see DESIGN.md §4)\n");
    for (bin, what) in [
        ("fig1_scalability", "Figure 1  — analytic time/memory model"),
        ("fig2_collision", "Figure 2  — collision probability vs M"),
        ("table1_categories", "Table 1   — Wikipedia category counts"),
        ("fig3_accuracy_wiki", "Figure 3  — accuracy, 4 algorithms"),
        ("fig4_dbi_ase", "Figure 4  — DBI + ASE, synthetic data"),
        ("fig5_fnorm", "Figure 5  — Frobenius-norm ratio vs buckets"),
        ("fig6_time_memory", "Figure 6  — measured time + memory"),
        ("table3_elasticity", "Table 3   — 16/32/64-node elasticity"),
        ("fterm_selection", "Sec. 5.2  — tf-idf term-count pilot"),
        (
            "ablation_quality",
            "DESIGN §5 — merge/M/hash-rule ablations",
        ),
        (
            "scalability_sweep",
            "Fig. 1 (measured) — growth per doubling",
        ),
    ] {
        println!("  cargo run --release -p dasc-bench --bin {bin:<22} # {what}");
    }
    println!("\nPass --full (or DASC_SCALE=full) for paper-scale sweeps.");
}
