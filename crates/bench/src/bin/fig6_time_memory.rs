//! Figure 6 — measured processing time and memory for DASC, SC and PSC
//! on the Wikipedia(-like) corpus.
//!
//! Times are wall-clock on this machine (the paper used a five-node
//! Hadoop lab cluster); memory is the similarity-structure footprint at
//! the paper's 4-byte convention. Expect the paper's *shape*: DASC far
//! below PSC, PSC far below SC, with the baselines dropping out as N
//! grows.
//!
//! DASC timings come from the `dasc-obs` stage tracer: the run's span
//! tree yields both the total and the per-stage breakdown printed under
//! each row, so the bench reports the same numbers a `--trace-out`
//! capture would show.

use std::time::Duration;

use dasc_bench::{kb, print_header, print_row, secs, time_it, Scale};
use dasc_core::{
    Dasc, DascConfig, ParallelSpectral, PscConfig, SpectralClustering, SpectralConfig,
};
use dasc_data::WikiCorpusConfig;
use dasc_kernel::{gram_memory_bytes, Kernel};
use dasc_lsh::{default_signature_bits, LshConfig, ThresholdRule};

fn main() {
    let scale = Scale::from_env();
    let exps: Vec<u32> = scale.pick(vec![10, 11, 12], vec![10, 11, 12, 13, 14]);
    let sc_cap = scale.pick(1usize << 11, 1usize << 12);
    let psc_cap = scale.pick(1usize << 12, 1usize << 13);

    print_header(
        "Figure 6: time (s) and memory (KB) vs dataset size",
        &["log2(N)", "DASC t/mem", "SC t/mem", "PSC t/mem"],
    );

    for e in exps {
        let n = 1usize << e;
        let ds = WikiCorpusConfig::new(n).seed(0xF166).generate();
        let k = ds.num_classes().expect("labelled corpus");
        let kernel = Kernel::gaussian_median_heuristic(&ds.points);

        // A finer, balanced partition (median thresholds, +3 bits): the
        // regime the paper ran in, where Σ Nᵢ² sits far below both the
        // full matrix and PSC's t-NN storage. The paper itself prescribes
        // data-dependent balanced hashing for skewed (tf-idf) marginals.
        let m = default_signature_bits(n) + 3;
        let tracer = dasc_obs::tracer();
        tracer.enable();
        let run_span = tracer.span("bench.dasc.run");
        let dasc_res = Dasc::new(
            DascConfig::for_dataset(n, k)
                .kernel(kernel)
                .lsh(LshConfig::with_bits(m).threshold_rule(ThresholdRule::Median)),
        )
        .run(&ds.points);
        let dasc_t = run_span.finish();
        let spans = tracer.drain();
        tracer.disable();
        let stage_totals = dasc_obs::stage_totals(&spans);
        let dasc_cell = format!("{}/{}", secs(dasc_t), kb(dasc_res.approx_gram_bytes));

        let sc_cell = if n <= sc_cap {
            let (_, t) = time_it(|| {
                SpectralClustering::new(SpectralConfig::new(k).kernel(kernel)).run(&ds.points)
            });
            format!("{}/{}", secs(t), kb(gram_memory_bytes(n)))
        } else {
            "-".to_string()
        };

        let psc_cell = if n <= psc_cap {
            let (res, t) = time_it(|| {
                ParallelSpectral::new(PscConfig::new(k).kernel(kernel).neighbors(40))
                    .run(&ds.points)
            });
            format!("{}/{}", secs(t), kb(res.sparse_memory_bytes))
        } else {
            "-".to_string()
        };

        print_row(&[e.to_string(), dasc_cell, sc_cell, psc_cell]);

        // Per-stage DASC breakdown from the traced spans (top-level
        // pipeline stages only; dasc.cluster includes its per-bucket
        // children).
        let stage = |name: &str| -> String {
            stage_totals
                .get(name)
                .map_or_else(|| "-".to_string(), |(_, d)| secs(*d))
        };
        let accounted: Duration = ["dasc.lsh", "dasc.bucket", "dasc.gram", "dasc.cluster"]
            .iter()
            .filter_map(|s| stage_totals.get(*s).map(|(_, d)| *d))
            .sum();
        println!(
            "         dasc stages: lsh {} | bucket {} | gram {} | cluster {} (accounted {})",
            stage("dasc.lsh"),
            stage("dasc.bucket"),
            stage("dasc.gram"),
            stage("dasc.cluster"),
            secs(accounted),
        );
    }

    println!(
        "\nShape check: DASC's memory curve is orders of magnitude flatter \
         than SC's and clearly below PSC's sparse storage (paper Fig. 6b); \
         baselines stop where they stop scaling (Fig. 6a)."
    );
}
