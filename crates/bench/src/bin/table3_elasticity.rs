//! Table 3 — elasticity: the same DASC job replayed on Amazon-EMR
//! clusters of 16, 32 and 64 nodes.
//!
//! The run executes once on this machine through the MapReduce engine;
//! its recorded task bag (map tasks sized by data volume, one reduce
//! task per bucket) is then scheduled onto each cluster size (Table 2
//! slot configuration) by the deterministic LPT simulator.
//!
//! Workload: an LSH-aligned grid mixture (256 clusters on a binary grid
//! over the leading dimensions) — the high-collision-probability regime
//! the paper's Figure 2 analysis assumes for its Wikipedia corpus, where
//! buckets align with cluster structure and parallelism is abundant.
//! Expected shape: time ≈ halves per doubling of nodes while accuracy
//! and memory are byte-identical (same recorded task bag).

use dasc_bench::{kb, print_header, print_row, Scale};
use dasc_core::{Dasc, DascConfig};
use dasc_data::SyntheticConfig;
use dasc_kernel::Kernel;
use dasc_lsh::LshConfig;
use dasc_mapreduce::ClusterConfig;
use dasc_metrics::accuracy;

fn main() {
    let scale = Scale::from_env();
    let bits = 8usize; // 256 grid clusters
    let n = scale.pick(1usize << 15, 1usize << 17);
    let k = 1usize << bits;

    eprintln!("generating grid mixture (N = {n}, K = {k}) ...");
    let ds = SyntheticConfig::grid(n, 64, bits).seed(0x7AB3).generate();
    let truth = ds.labels.as_ref().expect("labelled");
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);

    // One execution through the MapReduce engine records the task bag.
    let mut executor = ClusterConfig::local_lab();
    executor.records_per_split = 64;
    eprintln!("running DASC through the MapReduce engine ...");
    let result = Dasc::new(
        DascConfig::for_dataset(n, k)
            .kernel(kernel)
            .lsh(LshConfig::with_bits(bits)),
    )
    .run_distributed(&ds.points, &executor);
    let acc = accuracy(&result.clustering.assignments, truth);

    print_header(
        &format!(
            "Table 3: DASC on EMR clusters (N = {n}, K = {k}, {} buckets, \
             {} map + {} reduce tasks)",
            result.num_buckets,
            result.stage1.num_map_tasks(),
            result.stage2.num_reduce_tasks()
        ),
        &["nodes", "accuracy", "memory KB", "sim time (s)", "speedup"],
    );
    let t16 = result.simulate_total(&ClusterConfig::emr(16));
    for nodes in [64usize, 32, 16] {
        let cluster = ClusterConfig::emr(nodes);
        let t = result.simulate_total(&cluster);
        print_row(&[
            nodes.to_string(),
            format!("{acc:.3}"),
            kb(result.approx_gram_bytes),
            format!("{:.4}", t.as_secs_f64()),
            format!("{:.2}x", t16.as_secs_f64() / t.as_secs_f64()),
        ]);
    }

    // Bonus (beyond the paper): the same task bag under a straggler
    // model, with and without Hadoop-style speculative execution.
    use dasc_mapreduce::{simulate_with_stragglers, StragglerModel};
    let model = StragglerModel {
        fraction: 0.1,
        slowdown: 6.0,
        seed: 0x57A6,
    };
    print_header(
        "Bonus: stragglers (10% of tasks, 6x slower) on 32 nodes",
        &["mode", "sim time (s)"],
    );
    let reduce_slots = ClusterConfig::emr(32).total_reduce_slots();
    let clean =
        dasc_mapreduce::simulate_makespan(&result.stage2.reduce_task_durations, reduce_slots);
    let slow = simulate_with_stragglers(
        &result.stage2.reduce_task_durations,
        reduce_slots,
        &model,
        false,
    );
    let spec = simulate_with_stragglers(
        &result.stage2.reduce_task_durations,
        reduce_slots,
        &model,
        true,
    );
    for (label, t) in [
        ("no stragglers", clean),
        ("stragglers", slow),
        ("+speculation", spec),
    ] {
        print_row(&[label.to_string(), format!("{:.4}", t.as_secs_f64())]);
    }

    println!(
        "\nShape check: the paper reports 20.3 h / 40.75 h / 78.85 h for \
         64/32/16 nodes — time ≈ halves per doubling while accuracy and \
         memory stay flat. Verify the same ratio structure above; the \
         bonus table shows speculation recovering most of the straggler \
         penalty."
    );
}
