//! Figure 5 — Frobenius-norm ratio of the approximated Gram matrix to
//! the exact one, as the number of buckets grows.
//!
//! The paper varies buckets from 4 to 4K over datasets of 4K–512K
//! points. Block norms and the exact norm are computed streaming, so no
//! `N×N` matrix is ever materialized (the paper hit a memory ceiling at
//! 512K points for exactly that reason).

use dasc_bench::{full_gram_fnorm_streaming, print_header, print_row, Scale};
use dasc_data::SyntheticConfig;
use dasc_kernel::Kernel;
use dasc_lsh::{BucketSet, LshConfig, SignatureModel};

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = scale.pick(
        vec![1 << 12, 1 << 13],
        vec![1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16],
    );
    let bucket_exps: Vec<usize> = vec![2, 4, 6, 8, 10, 12]; // B = 4 … 4096

    let mut cols = vec!["buckets".to_string()];
    cols.extend(sizes.iter().map(|n| format!("N={n}")));
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    print_header("Figure 5: ||approx||_F / ||full||_F", &col_refs);

    // A moderately dispersed dataset and a bandwidth wide enough that
    // cross-bucket similarities carry real mass — the regime Figure 5
    // plots (ratios spanning ~1.0 down to ~0.65).
    let kernel = Kernel::gaussian(1.2);
    let datasets: Vec<(usize, Vec<Vec<f64>>, f64)> = sizes
        .iter()
        .map(|&n| {
            let ds = SyntheticConfig::paper_default(n, 16)
                .spread(0.2)
                .noise_fraction(0.35)
                .seed(0xF1_65)
                .generate();
            let full = full_gram_fnorm_streaming(&ds.points, &kernel);
            (n, ds.points, full)
        })
        .collect();

    for &be in &bucket_exps {
        let mut row = vec![format!("2^{be}")];
        for (n, points, full_norm) in &datasets {
            if (1usize << be) >= *n {
                row.push("-".to_string());
                continue;
            }
            // M = log2(B) signature bits, merging disabled so the bucket
            // count is governed by M (the figure's x-axis).
            let cfg = LshConfig::with_bits(be).merge_p(be);
            let model = SignatureModel::fit(points, &cfg);
            let sigs = model.hash_all(points);
            let buckets = BucketSet::from_signatures(&sigs);
            // Streaming block norms: √Σ_b ‖S_b‖²_F.
            let approx_sq: f64 = buckets
                .buckets()
                .iter()
                .map(|b| {
                    let sub: Vec<Vec<f64>> = b.members.iter().map(|&i| points[i].clone()).collect();
                    let f = full_gram_fnorm_streaming(&sub, &kernel);
                    f * f
                })
                .sum();
            row.push(format!("{:.4}", approx_sq.sqrt() / full_norm));
        }
        print_row(&row);
    }

    println!(
        "\nShape check: ratio decreases with more buckets; for a fixed bucket \
         count, larger datasets keep a higher ratio (paper Figure 5)."
    );
}
