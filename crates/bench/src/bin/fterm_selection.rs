//! Section 5.2's term-selection study: spectral-clustering accuracy as
//! the number of retained tf-idf terms `F` sweeps 6 … 16 on a 1,084
//! document sample (the paper's own pilot that fixed `F = 11`).

use dasc_bench::{print_header, print_row};
use dasc_core::{SpectralClustering, SpectralConfig};
use dasc_data::WikiCorpusConfig;
use dasc_kernel::Kernel;
use dasc_metrics::accuracy;

fn main() {
    let n = 1084usize; // the paper's sample size
    print_header(
        "Section 5.2: accuracy vs retained tf-idf terms F (N = 1084)",
        &["F", "accuracy"],
    );

    for f in 6..=16usize {
        let ds = WikiCorpusConfig::new(n).f_terms(f).seed(0xF7E12).generate();
        let truth = ds.labels.as_ref().expect("labelled corpus");
        let k = ds.num_classes().expect("labelled corpus");
        let kernel = Kernel::gaussian_median_heuristic(&ds.points);
        let res = SpectralClustering::new(SpectralConfig::new(k).kernel(kernel)).run(&ds.points);
        let acc = accuracy(&res.clustering.assignments, truth);
        print_row(&[f.to_string(), format!("{acc:.3}")]);
    }

    println!(
        "\nShape check: accuracy improves with F and plateaus around F ≈ 11 \
         (the paper saw no significant gain beyond 11)."
    );
}
