//! Figure 4 — internal quality (DBI, Eq. 20; ASE, Eq. 21) on the
//! synthetic 64-dimensional dataset for DASC, SC, PSC and NYST.

use dasc_bench::{print_header, print_row, Scale};
use dasc_core::{
    Dasc, DascConfig, Nystrom, NystromConfig, ParallelSpectral, PscConfig, SpectralClustering,
    SpectralConfig,
};
use dasc_data::SyntheticConfig;
use dasc_kernel::Kernel;
use dasc_metrics::{ase, davies_bouldin};

struct Quality {
    dbi: f64,
    ase: f64,
}

fn quality(points: &[Vec<f64>], assignments: &[usize], k: usize) -> Quality {
    Quality {
        dbi: davies_bouldin(points, assignments, k),
        ase: ase(points, assignments, k),
    }
}

fn main() {
    let scale = Scale::from_env();
    let exps: Vec<u32> = scale.pick(vec![10, 11, 12], vec![10, 11, 12, 13, 14]);
    let sc_cap = scale.pick(1usize << 12, 1usize << 13);
    let psc_cap = scale.pick(1usize << 12, 1usize << 14);
    let k = 8usize;

    print_header(
        "Figure 4(a)+(b): DBI and ASE vs dataset size (synthetic, d=64)",
        &[
            "log2(N)",
            "DASC dbi/ase",
            "SC dbi/ase",
            "PSC dbi/ase",
            "NYST dbi/ase",
        ],
    );

    for e in exps {
        let n = 1usize << e;
        let ds = SyntheticConfig::paper_default(n, k)
            .spread(0.08)
            .noise_fraction(0.1)
            .seed(0xF164)
            .generate();
        let kernel = Kernel::gaussian_median_heuristic(&ds.points);

        let dasc = {
            let res = Dasc::new(DascConfig::for_dataset(n, k).kernel(kernel)).run(&ds.points);
            let q = quality(
                &ds.points,
                &res.clustering.assignments,
                res.clustering.num_clusters,
            );
            format!("{:.2}/{:.2}", q.dbi, q.ase)
        };

        let sc = if n <= sc_cap {
            let res =
                SpectralClustering::new(SpectralConfig::new(k).kernel(kernel)).run(&ds.points);
            let q = quality(&ds.points, &res.clustering.assignments, k);
            format!("{:.2}/{:.2}", q.dbi, q.ase)
        } else {
            "-".to_string()
        };

        let psc = if n <= psc_cap {
            let res = ParallelSpectral::new(PscConfig::new(k).kernel(kernel).neighbors(40))
                .run(&ds.points);
            let q = quality(&ds.points, &res.clustering.assignments, k);
            format!("{:.2}/{:.2}", q.dbi, q.ase)
        } else {
            "-".to_string()
        };

        let nyst = {
            let res = Nystrom::new(NystromConfig::new(k).kernel(kernel)).run(&ds.points);
            let q = quality(&ds.points, &res.clustering.assignments, k);
            format!("{:.2}/{:.2}", q.dbi, q.ase)
        };

        print_row(&[e.to_string(), dasc, sc, psc, nyst]);
    }

    println!(
        "\nShape check: DASC tracks SC closely on both indices; PSC/NYST sit \
         visibly apart (paper: ~30%/40% worse ASE)."
    );
}
