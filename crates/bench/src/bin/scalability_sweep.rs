//! Empirical counterpart of Figure 1: measured DASC wall time and
//! approximate-Gram memory as the dataset doubles, with the per-doubling
//! growth factor. The analytic model says SC grows 4× per doubling and
//! DASC sub-quadratically; this sweep verifies the measured behaviour of
//! the implementation matches the model's shape.

use dasc_bench::{print_header, print_row, time_it, Scale};
use dasc_core::{Dasc, DascConfig};
use dasc_data::SyntheticConfig;
use dasc_kernel::Kernel;

fn main() {
    let scale = Scale::from_env();
    let exps: Vec<u32> = scale.pick(vec![10, 11, 12, 13], vec![10, 11, 12, 13, 14, 15, 16]);

    print_header(
        "Empirical scalability: DASC time/memory per doubling",
        &["log2(N)", "time (s)", "x prev", "gram KB", "x prev"],
    );

    let mut prev: Option<(f64, usize)> = None;
    for e in exps {
        let n = 1usize << e;
        let ds = SyntheticConfig::paper_default(n, 16)
            .seed(0x5CA1E)
            .generate();
        let kernel = Kernel::gaussian_median_heuristic(&ds.points);
        let (res, t) =
            time_it(|| Dasc::new(DascConfig::for_dataset(n, 16).kernel(kernel)).run(&ds.points));
        let secs = t.as_secs_f64();
        let (t_factor, m_factor) = match prev {
            Some((pt, pm)) => (
                format!("{:.2}", secs / pt),
                format!("{:.2}", res.approx_gram_bytes as f64 / pm as f64),
            ),
            None => ("-".into(), "-".into()),
        };
        print_row(&[
            e.to_string(),
            format!("{secs:.3}"),
            t_factor,
            (res.approx_gram_bytes / 1024).to_string(),
            m_factor,
        ]);
        prev = Some((secs, res.approx_gram_bytes));
    }

    println!(
        "\nShape check: growth factors should sit well below the 4.0x per \
         doubling of an O(N²) method (Figure 1's analytic claim, measured)."
    );
}
