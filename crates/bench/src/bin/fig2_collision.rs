//! Figure 2 — collision probability vs. number of hash functions `M`
//! (Eq. 18), for dataset sizes 1M … 1G.

use dasc_analysis::wiki_collision_probability;
use dasc_bench::{print_header, print_row};

fn main() {
    let sizes: Vec<(&str, f64)> = vec![
        ("1M", 2f64.powi(20)),
        ("2M", 2f64.powi(21)),
        ("4M", 2f64.powi(22)),
        ("8M", 2f64.powi(23)),
        ("16M", 2f64.powi(24)),
        ("32M", 2f64.powi(25)),
        ("64M", 2f64.powi(26)),
        ("128M", 2f64.powi(27)),
        ("256M", 2f64.powi(28)),
        ("512M", 2f64.powi(29)),
        ("1G", 2f64.powi(30)),
    ];

    let mut cols = vec!["M"];
    cols.extend(sizes.iter().map(|(name, _)| *name));
    print_header("Figure 2: P(similar points share a bucket)", &cols);

    for m in (5..=35u32).step_by(5) {
        let mut row = vec![m.to_string()];
        for &(_, n) in &sizes {
            row.push(format!("{:.4}", wiki_collision_probability(n, m)));
        }
        print_row(&row);
    }

    println!(
        "\nShape check: sub-linear decrease in M (tunable accuracy/parallelism \
         tradeoff, Section 4.2)."
    );
}
