//! End-to-end pipeline benchmark with machine-readable output.
//!
//! Runs the full DASC pipeline (LSH → bucket → Gram → cluster) on
//! synthetic blobs at two or three sizes, once pinned to a single
//! thread and once on the configured pool, and writes
//! `BENCH_pipeline.json`: per-stage wall-clock (from the same obs span
//! guards that fill [`dasc_core::DascStageTimes`]), threads used,
//! points/s, and the per-size parallel speedup.
//!
//! Usage: `bench_pipeline [--full] [--out PATH]`. Sizes default to the
//! quick set; `--full`/`DASC_SCALE=full` switches to paper-adjacent
//! sizes (20k+). The parallel run uses `DASC_NUM_THREADS` (default:
//! available cores), so `DASC_NUM_THREADS=4 bench_pipeline --full`
//! reproduces the 4-thread acceptance measurement. The pipeline runs
//! use the process kernel backend (`DASC_KERNEL`); a separate
//! micro-benchmark times the raw Gram distance kernel on *every*
//! backend the host supports and reports per-backend GFLOP/s under
//! `kernel_gram_gflops`.

use std::fmt::Write as _;
use std::time::Instant;

use dasc_bench::Scale;
use dasc_core::{Dasc, DascConfig, DascResult, KernelBackend};
use dasc_data::SyntheticConfig;
use dasc_linalg::gemm;

#[derive(Clone)]
struct Run {
    n: usize,
    dim: usize,
    threads: usize,
    total_s: f64,
    points_per_s: f64,
    result: DascResult,
}

impl Run {
    /// Effective Gram-stage throughput in GFLOP/s, counting the
    /// micro-kernel's norm-expansion work: `2d` flops per stored entry
    /// (the `A·Bᵀ` multiply-adds; the norm/exp passes are O(n) and O(1)
    /// per entry and are left out, so this slightly undercounts).
    fn gram_gflops(&self) -> f64 {
        let gram_s = self.result.times.gram.as_secs_f64();
        if gram_s <= 0.0 {
            return 0.0;
        }
        let entries = (self.result.approx_gram_bytes / 4) as f64;
        2.0 * self.dim as f64 * entries / gram_s / 1e9
    }
}

fn run_once(points: &[Vec<f64>], k: usize, threads: usize) -> Run {
    let cfg = DascConfig::for_dataset(points.len(), k).seed(0xBE7C);
    let pool = dasc_pool::Pool::new(threads);
    let t0 = Instant::now();
    let result = pool.install(|| Dasc::new(cfg).run(points));
    let total_s = t0.elapsed().as_secs_f64();
    Run {
        n: points.len(),
        dim: points.first().map_or(0, Vec::len),
        threads,
        total_s,
        points_per_s: points.len() as f64 / total_s,
        result,
    }
}

fn json_run(out: &mut String, run: &Run) {
    let t = &run.result.times;
    write!(
        out,
        concat!(
            "{{\"n\": {}, \"threads\": {}, \"total_s\": {:.6}, ",
            "\"points_per_s\": {:.1}, \"buckets\": {}, ",
            "\"approx_gram_bytes\": {}, \"gram_gflops\": {:.4}, ",
            "\"eigen_path\": \"{}\", \"stages_s\": {{",
            "\"lsh\": {:.6}, \"bucketing\": {:.6}, ",
            "\"gram\": {:.6}, \"clustering\": {:.6}, ",
            "\"laplacian\": {:.6}, \"eigen\": {:.6}, \"kmeans\": {:.6}}}}}"
        ),
        run.n,
        run.threads,
        run.total_s,
        run.points_per_s,
        run.result.buckets.len(),
        run.result.approx_gram_bytes,
        run.gram_gflops(),
        run.result.eigen_path.as_str(),
        t.lsh.as_secs_f64(),
        t.bucketing.as_secs_f64(),
        t.gram.as_secs_f64(),
        t.clustering.as_secs_f64(),
        t.laplacian.as_secs_f64(),
        t.eigen.as_secs_f64(),
        t.kmeans.as_secs_f64(),
    )
    .expect("write to string");
}

/// Time the raw Gram distance kernel (`sq_dists_into_with`) on one
/// backend: an `n × n` squared-distance panel at the paper-default
/// dimensionality, best of `reps` — the same `2·d` flops/entry
/// accounting as [`Run::gram_gflops`], without LSH/eigen noise. This is
/// the number the acceptance criterion compares across backends.
fn gram_kernel_gflops(backend: KernelBackend, n: usize, dim: usize, reps: usize) -> f64 {
    let data: Vec<f64> = (0..n * dim)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x % 1000) as f64 / 250.0 - 2.0
        })
        .collect();
    let norms = gemm::row_sq_norms_flat_with(backend, &data, dim);
    let mut out = vec![0.0; n * n];
    let mut best_s = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        gemm::sq_dists_into_with(
            backend, &data, n, &norms, &data, n, &norms, dim, &mut out, n,
        );
        best_s = best_s.min(t0.elapsed().as_secs_f64());
    }
    // Keep the buffer observable so the kernel can't be optimized out.
    assert!(out.iter().all(|&d| d >= 0.0));
    2.0 * dim as f64 * (n * n) as f64 / best_s / 1e9
}

fn main() {
    let scale = Scale::from_env();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_pipeline.json".to_string())
    };
    let sizes: &[usize] = scale.pick(&[1_000, 4_000][..], &[5_000, 20_000, 50_000][..]);
    let k = 16usize;
    let par_threads = dasc_pool::configured_threads();
    let backend = KernelBackend::resolved();

    // Per-backend Gram kernel micro-benchmark: every backend this host
    // supports, timed on the same panel shape.
    let micro_n = 4_000usize;
    let micro_dim = 64usize;
    let mut kernel_gflops: Vec<(KernelBackend, f64)> = Vec::new();
    for be in KernelBackend::all_available() {
        eprintln!(
            "kernel micro-bench ({}, n={micro_n}, d={micro_dim})...",
            be.as_str()
        );
        let gflops = gram_kernel_gflops(be, micro_n, micro_dim, 3);
        eprintln!("  {}: {gflops:.2} GFLOP/s", be.as_str());
        kernel_gflops.push((be, gflops));
    }

    let mut runs: Vec<(Run, Run)> = Vec::new();
    for &n in sizes {
        let ds = SyntheticConfig::paper_default(n, k).seed(0xDA7A).generate();
        eprintln!("n={n}: sequential run...");
        let seq = run_once(&ds.points, k, 1);
        // With a 1-wide pool the "parallel" run is configuration-
        // identical to the sequential one; reuse it so the recorded
        // speedup is exactly 1.0 instead of scheduling noise (the seed
        // benchmark recorded a meaningless 0.96× at n=1000 this way).
        let par = if par_threads == 1 {
            eprintln!("n={n}: pool width 1, reusing sequential run");
            seq.clone()
        } else {
            eprintln!("n={n}: parallel run ({par_threads} threads)...");
            run_once(&ds.points, k, par_threads)
        };
        assert_eq!(
            seq.result.clustering.assignments, par.result.clustering.assignments,
            "clustering must be thread-count independent"
        );
        eprintln!(
            "n={n}: seq {:.3}s, par {:.3}s, speedup {:.2}x",
            seq.total_s,
            par.total_s,
            seq.total_s / par.total_s
        );
        runs.push((seq, par));
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pipeline\",\n");
    write!(
        json,
        "  \"parallel_threads\": {par_threads},\n  \"kernel_backend\": \"{}\",\n",
        backend.as_str()
    )
    .expect("write to string");
    json.push_str("  \"kernel_gram_gflops\": {");
    for (i, (be, gflops)) in kernel_gflops.iter().enumerate() {
        write!(
            json,
            "{}\"{}\": {gflops:.4}",
            if i == 0 { "" } else { ", " },
            be.as_str()
        )
        .expect("write to string");
    }
    json.push_str("},\n  \"runs\": [\n");
    for (i, (seq, par)) in runs.iter().enumerate() {
        for (j, run) in [seq, par].into_iter().enumerate() {
            json.push_str("    ");
            json_run(&mut json, run);
            if i + 1 < runs.len() || j == 0 {
                json.push(',');
            }
            json.push('\n');
        }
    }
    json.push_str("  ],\n  \"speedup\": [\n");
    for (i, (seq, par)) in runs.iter().enumerate() {
        writeln!(
            json,
            "    {{\"n\": {}, \"speedup\": {:.3}}}{}",
            seq.n,
            seq.total_s / par.total_s,
            if i + 1 < runs.len() { "," } else { "" }
        )
        .expect("write to string");
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
