//! End-to-end pipeline benchmark with machine-readable output.
//!
//! Runs the full DASC pipeline (LSH → bucket → Gram → cluster) on
//! synthetic blobs at two or three sizes, once pinned to a single
//! thread and once on the configured pool, and writes
//! `BENCH_pipeline.json`: per-stage wall-clock (from the same obs span
//! guards that fill [`dasc_core::DascStageTimes`]), threads used,
//! points/s, and the per-size parallel speedup.
//!
//! Usage: `bench_pipeline [--full] [--out PATH]`. Sizes default to the
//! quick set; `--full`/`DASC_SCALE=full` switches to paper-adjacent
//! sizes (20k+). The parallel run uses `DASC_NUM_THREADS` (default:
//! available cores), so `DASC_NUM_THREADS=4 bench_pipeline --full`
//! reproduces the 4-thread acceptance measurement.

use std::fmt::Write as _;
use std::time::Instant;

use dasc_bench::Scale;
use dasc_core::{Dasc, DascConfig, DascResult};
use dasc_data::SyntheticConfig;

struct Run {
    n: usize,
    dim: usize,
    threads: usize,
    total_s: f64,
    points_per_s: f64,
    result: DascResult,
}

impl Run {
    /// Effective Gram-stage throughput in GFLOP/s, counting the
    /// micro-kernel's norm-expansion work: `2d` flops per stored entry
    /// (the `A·Bᵀ` multiply-adds; the norm/exp passes are O(n) and O(1)
    /// per entry and are left out, so this slightly undercounts).
    fn gram_gflops(&self) -> f64 {
        let gram_s = self.result.times.gram.as_secs_f64();
        if gram_s <= 0.0 {
            return 0.0;
        }
        let entries = (self.result.approx_gram_bytes / 4) as f64;
        2.0 * self.dim as f64 * entries / gram_s / 1e9
    }
}

fn run_once(points: &[Vec<f64>], k: usize, threads: usize) -> Run {
    let cfg = DascConfig::for_dataset(points.len(), k).seed(0xBE7C);
    let pool = dasc_pool::Pool::new(threads);
    let t0 = Instant::now();
    let result = pool.install(|| Dasc::new(cfg).run(points));
    let total_s = t0.elapsed().as_secs_f64();
    Run {
        n: points.len(),
        dim: points.first().map_or(0, Vec::len),
        threads,
        total_s,
        points_per_s: points.len() as f64 / total_s,
        result,
    }
}

fn json_run(out: &mut String, run: &Run) {
    let t = &run.result.times;
    write!(
        out,
        concat!(
            "{{\"n\": {}, \"threads\": {}, \"total_s\": {:.6}, ",
            "\"points_per_s\": {:.1}, \"buckets\": {}, ",
            "\"approx_gram_bytes\": {}, \"gram_gflops\": {:.4}, ",
            "\"eigen_path\": \"{}\", \"stages_s\": {{",
            "\"lsh\": {:.6}, \"bucketing\": {:.6}, ",
            "\"gram\": {:.6}, \"clustering\": {:.6}, ",
            "\"laplacian\": {:.6}, \"eigen\": {:.6}, \"kmeans\": {:.6}}}}}"
        ),
        run.n,
        run.threads,
        run.total_s,
        run.points_per_s,
        run.result.buckets.len(),
        run.result.approx_gram_bytes,
        run.gram_gflops(),
        run.result.eigen_path.as_str(),
        t.lsh.as_secs_f64(),
        t.bucketing.as_secs_f64(),
        t.gram.as_secs_f64(),
        t.clustering.as_secs_f64(),
        t.laplacian.as_secs_f64(),
        t.eigen.as_secs_f64(),
        t.kmeans.as_secs_f64(),
    )
    .expect("write to string");
}

fn main() {
    let scale = Scale::from_env();
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_pipeline.json".to_string())
    };
    let sizes: &[usize] = scale.pick(&[1_000, 4_000][..], &[5_000, 20_000, 50_000][..]);
    let k = 16usize;
    let par_threads = dasc_pool::configured_threads();

    let mut runs: Vec<(Run, Run)> = Vec::new();
    for &n in sizes {
        let ds = SyntheticConfig::paper_default(n, k).seed(0xDA7A).generate();
        eprintln!("n={n}: sequential run...");
        let seq = run_once(&ds.points, k, 1);
        eprintln!(
            "n={n}: parallel run ({par_threads} thread{})...",
            if par_threads == 1 { "" } else { "s" }
        );
        let par = run_once(&ds.points, k, par_threads);
        assert_eq!(
            seq.result.clustering.assignments, par.result.clustering.assignments,
            "clustering must be thread-count independent"
        );
        eprintln!(
            "n={n}: seq {:.3}s, par {:.3}s, speedup {:.2}x",
            seq.total_s,
            par.total_s,
            seq.total_s / par.total_s
        );
        runs.push((seq, par));
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pipeline\",\n");
    write!(
        json,
        "  \"parallel_threads\": {par_threads},\n  \"runs\": [\n"
    )
    .expect("write to string");
    for (i, (seq, par)) in runs.iter().enumerate() {
        for (j, run) in [seq, par].into_iter().enumerate() {
            json.push_str("    ");
            json_run(&mut json, run);
            if i + 1 < runs.len() || j == 0 {
                json.push(',');
            }
            json.push('\n');
        }
    }
    json.push_str("  ],\n  \"speedup\": [\n");
    for (i, (seq, par)) in runs.iter().enumerate() {
        writeln!(
            json,
            "    {{\"n\": {}, \"speedup\": {:.3}}}{}",
            seq.n,
            seq.total_s / par.total_s,
            if i + 1 < runs.len() { "," } else { "" }
        )
        .expect("write to string");
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
