//! Distributed-runtime benchmark with machine-readable output.
//!
//! Starts a real TCP coordinator plus a configurable number of worker
//! loops on localhost, submits the Fig. 6 DASC jobflow over the wire at
//! two or three dataset sizes, and writes `BENCH_dist.json`: per-stage
//! wall-clock as measured by the coordinator, worker count, shuffle
//! volume, and end-to-end points/s, plus `obs_overhead_pct`: the
//! relative cost of running the largest size with full telemetry
//! (heartbeat metrics federation + merged trace collection) versus
//! telemetry-off workers. Every run is checked bit-identical against
//! the in-process distributed engine before it is reported.
//!
//! Each size is additionally submitted *by reference* against a packed
//! `.dstr` store, so the JSON records both `shuffle_bytes` (inline:
//! tasks carry points) and `shuffle_bytes_ref` (shard-addressed: tasks
//! carry shard tables, workers pull shards through their caches). The
//! ref run is asserted bit-identical to the inline run.
//!
//! Usage: `bench_dist [--full] [--workers N] [--out PATH]`. Sizes
//! default to the quick set; `--full`/`DASC_SCALE=full` switches to
//! paper-adjacent sizes. Workers default to 2 (the smallest cluster
//! that exercises the shuffle).

use std::fmt::Write as _;
use std::time::Instant;

use dasc_bench::Scale;
use dasc_core::{Dasc, DascConfig};
use dasc_data::{dataset_to_store, Dataset, SyntheticConfig};
use dasc_dist::{worker, Coordinator, JobClient, JobData, JobOutcome, JobSpec, WorkerOptions};
use dasc_mapreduce::ClusterConfig;

struct Run {
    n: usize,
    dim: usize,
    total_s: f64,
    outcome: JobOutcome,
    ref_total_s: f64,
    ref_shuffle_bytes: u64,
}

fn json_run(out: &mut String, run: &Run) {
    let o = &run.outcome;
    write!(
        out,
        concat!(
            "{{\"n\": {}, \"dim\": {}, \"workers\": {}, \"total_s\": {:.6}, ",
            "\"points_per_s\": {:.1}, \"buckets\": {}, ",
            "\"shuffle_records\": {}, \"shuffle_bytes\": {}, ",
            "\"ref_total_s\": {:.6}, \"shuffle_bytes_ref\": {}, ",
            "\"task_retries\": {}, \"stages_s\": {{",
            "\"map\": {:.6}, \"reduce\": {:.6}}}}}"
        ),
        run.n,
        run.dim,
        o.workers_used,
        run.total_s,
        run.n as f64 / run.total_s,
        o.num_buckets,
        o.shuffle_records,
        o.shuffle_bytes,
        run.ref_total_s,
        run.ref_shuffle_bytes,
        o.task_retries,
        o.stage1_us as f64 / 1e6,
        o.stage2_us as f64 / 1e6,
    )
    .expect("write to string");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let scale = Scale::from_env();
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_dist.json".to_string());
    let num_workers: usize = arg_after("--workers")
        .map(|w| w.parse().expect("--workers takes a number"))
        .unwrap_or(2)
        .max(1);
    let sizes: &[usize] = scale.pick(&[1_000, 4_000][..], &[5_000, 20_000, 50_000][..]);
    let k = 16usize;

    let cluster = ClusterConfig::emr(num_workers);
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let mut workers: Vec<_> = (0..num_workers)
        .map(|i| worker::spawn(&addr, WorkerOptions::named(format!("bench-w{i}"))))
        .collect();

    let mut runs: Vec<Run> = Vec::new();
    for &n in sizes {
        let ds = SyntheticConfig::paper_default(n, k).seed(0xDA7A).generate();
        let config = DascConfig::for_dataset(n, k).seed(0xBE7C);
        let spec = JobSpec {
            data: JobData::Inline {
                points: ds.points.clone(),
            },
            k,
            kernel: config.kernel,
            num_bits: 0,
            seed: config.seed,
            consolidate: config.consolidate,
            collect_trace: false,
        };

        eprintln!("n={n}: distributed run ({num_workers} workers over TCP)...");
        let mut client = JobClient::connect(&addr, &cluster);
        let t0 = Instant::now();
        let outcome = client.run(spec, |_, _, _| {}).expect("distributed job");
        let total_s = t0.elapsed().as_secs_f64();

        let baseline =
            Dasc::new(config.clone()).run_distributed(&ds.points, &ClusterConfig::emr_default());
        assert_eq!(
            outcome.assignments, baseline.clustering.assignments,
            "distributed output must match the in-process engine"
        );

        // The same job by reference against a packed store: tasks ship
        // shard tables, not points.
        let store_dir =
            std::env::temp_dir().join(format!("dasc-bench-dist-{}-{n}.dstr", std::process::id()));
        let manifest = dataset_to_store(
            &Dataset::new(ds.points.clone(), None, "bench"),
            &store_dir,
            1024,
        )
        .expect("pack store");
        let ref_spec = JobSpec {
            data: JobData::Ref {
                path: store_dir.to_string_lossy().into_owned(),
                content_hash: manifest.content_hash,
            },
            k,
            kernel: config.kernel,
            num_bits: 0,
            seed: config.seed,
            consolidate: config.consolidate,
            collect_trace: false,
        };
        eprintln!("n={n}: shard-addressed run from {}...", store_dir.display());
        let t0 = Instant::now();
        let ref_outcome = client.run(ref_spec, |_, _, _| {}).expect("ref job");
        let ref_total_s = t0.elapsed().as_secs_f64();
        std::fs::remove_dir_all(&store_dir).ok();
        assert_eq!(
            ref_outcome.assignments, outcome.assignments,
            "shard-addressed output must match the inline path"
        );

        eprintln!(
            "n={n}: {total_s:.3}s end to end, map {:.3}s + reduce {:.3}s, \
             {} bytes shuffled inline vs {} by ref",
            outcome.stage1_us as f64 / 1e6,
            outcome.stage2_us as f64 / 1e6,
            outcome.shuffle_bytes,
            ref_outcome.shuffle_bytes,
        );
        runs.push(Run {
            n,
            dim: ds.points.first().map_or(0, Vec::len),
            total_s,
            outcome,
            ref_total_s,
            ref_shuffle_bytes: ref_outcome.shuffle_bytes,
        });
    }

    // Observability overhead: the largest size once with full telemetry
    // (heartbeat metrics federation + distributed trace collection) and
    // once against fresh telemetry-off workers with tracing disabled.
    // Reported as a relative slowdown so BENCH_dist.json records what
    // the cluster-wide observability plane costs.
    let obs_overhead_pct = {
        let n = *sizes.last().expect("at least one size");
        let ds = SyntheticConfig::paper_default(n, k).seed(0xDA7A).generate();
        let config = DascConfig::for_dataset(n, k).seed(0xBE7C);
        let spec = |collect_trace: bool| JobSpec {
            data: JobData::Inline {
                points: ds.points.clone(),
            },
            k,
            kernel: config.kernel,
            num_bits: 0,
            seed: config.seed,
            consolidate: config.consolidate,
            collect_trace,
        };
        let mut client = JobClient::connect(&addr, &cluster);

        eprintln!("n={n}: telemetry-on run (heartbeat metrics + merged trace)...");
        let t0 = Instant::now();
        client
            .run(spec(true), |_, _, _| {})
            .expect("telemetry-on job");
        let on_s = t0.elapsed().as_secs_f64();

        for w in workers.drain(..) {
            w.shutdown().expect("worker shutdown");
        }
        workers.extend((0..num_workers).map(|i| {
            let mut opts = WorkerOptions::named(format!("bench-quiet-w{i}"));
            opts.telemetry = false;
            worker::spawn(&addr, opts)
        }));
        // Untimed warmup so the replacement workers' registration and
        // cold caches don't get billed to the telemetry-off side (the
        // telemetry-on run was already warm from the main loop).
        client.run(spec(false), |_, _, _| {}).expect("warmup job");

        eprintln!("n={n}: telemetry-off run...");
        let t0 = Instant::now();
        client
            .run(spec(false), |_, _, _| {})
            .expect("telemetry-off job");
        let off_s = t0.elapsed().as_secs_f64();

        let pct = (on_s - off_s) / off_s * 100.0;
        eprintln!("observability overhead: on {on_s:.3}s vs off {off_s:.3}s ({pct:+.1}%)");
        pct
    };

    for w in workers {
        w.shutdown().expect("worker shutdown");
    }
    coordinator.shutdown();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"dist\",\n");
    write!(
        json,
        "  \"workers\": {num_workers},\n  \"obs_overhead_pct\": {obs_overhead_pct:.2},\n  \"runs\": [\n"
    )
    .expect("write to string");
    for (i, run) in runs.iter().enumerate() {
        json.push_str("    ");
        json_run(&mut json, run);
        if i + 1 < runs.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
