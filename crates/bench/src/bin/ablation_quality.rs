//! Quality ablations over DASC's design choices (DESIGN.md §5):
//!
//! 1. bucket-merge rule `P = M−1` vs. no merging;
//! 2. signature width `M` sweep (accuracy vs. parallelism, Figure 2's
//!    tradeoff measured empirically);
//! 3. dimension-selection and threshold rules of the hash family.

use dasc_bench::{print_header, print_row, Scale};
use dasc_core::{Dasc, DascConfig};
use dasc_data::SyntheticConfig;
use dasc_kernel::Kernel;
use dasc_lsh::{DimensionSelection, LshConfig, ThresholdRule};
use dasc_metrics::accuracy;

fn run_with(points: &[Vec<f64>], truth: &[usize], k: usize, lsh: LshConfig) -> (f64, usize, usize) {
    let kernel = Kernel::gaussian_median_heuristic(points);
    let res = Dasc::new(
        DascConfig::for_dataset(points.len(), k)
            .kernel(kernel)
            .lsh(lsh),
    )
    .run(points);
    (
        accuracy(&res.clustering.assignments, truth),
        res.buckets.len(),
        res.approx_gram_bytes,
    )
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(1usize << 11, 1usize << 13);
    let k = 16usize;
    let ds = SyntheticConfig::paper_default(n, k).seed(0xAB1A).generate();
    let truth = ds.labels.as_ref().expect("labelled");
    let m_default = dasc_lsh::default_signature_bits(n);

    // --- Ablation 1: merge rule. ---
    print_header(
        &format!("Ablation: bucket merging (N = {n}, M = {m_default})"),
        &["merge P", "accuracy", "buckets", "gram bytes"],
    );
    for (label, p) in [("M-1 (paper)", m_default - 1), ("M (off)", m_default)] {
        let (acc, buckets, bytes) = run_with(
            &ds.points,
            truth,
            k,
            LshConfig::with_bits(m_default).merge_p(p),
        );
        print_row(&[
            label.to_string(),
            format!("{acc:.3}"),
            buckets.to_string(),
            bytes.to_string(),
        ]);
    }

    // --- Ablation 2: signature width M. ---
    print_header(
        &format!("Ablation: signature width M (N = {n})"),
        &["M", "accuracy", "buckets", "gram bytes"],
    );
    for m in [2usize, 3, 4, 5, 6, 8] {
        let (acc, buckets, bytes) = run_with(&ds.points, truth, k, LshConfig::with_bits(m));
        print_row(&[
            m.to_string(),
            format!("{acc:.3}"),
            buckets.to_string(),
            bytes.to_string(),
        ]);
    }

    // --- Ablation 3: hash-family internals. ---
    print_header(
        &format!("Ablation: dimension/threshold rules (N = {n}, M = {m_default})"),
        &["variant", "accuracy", "buckets", "gram bytes"],
    );
    let variants: Vec<(&str, LshConfig)> = vec![
        ("top-span+valley", LshConfig::with_bits(m_default)),
        (
            "weighted+valley",
            LshConfig::with_bits(m_default).selection(DimensionSelection::SpanWeighted { seed: 7 }),
        ),
        (
            "top-span+median",
            LshConfig::with_bits(m_default).threshold_rule(ThresholdRule::Median),
        ),
        (
            "top-span+midpoint",
            LshConfig::with_bits(m_default).threshold_rule(ThresholdRule::Midpoint),
        ),
    ];
    for (label, lsh) in variants {
        let (acc, buckets, bytes) = run_with(&ds.points, truth, k, lsh);
        print_row(&[
            label.to_string(),
            format!("{acc:.3}"),
            buckets.to_string(),
            bytes.to_string(),
        ]);
    }

    // --- Ablation 4: bucket balance across hash families on skewed
    // (tf-idf-like) data — the regime where the paper concedes a
    // "different hashing function" (spectral hashing) is needed.
    let wiki = dasc_data::WikiCorpusConfig::new(scale.pick(2048, 8192))
        .categories(32)
        .seed(0xAB1B)
        .generate();
    let m_wiki = 6usize;
    print_header(
        &format!(
            "Ablation: bucket balance on skewed data (N = {}, M = {m_wiki})",
            wiki.points.len()
        ),
        &["family", "buckets", "largest", "gini-ish"],
    );
    let families: Vec<(&str, Vec<dasc_lsh::Signature>)> = vec![
        (
            "paper valley",
            dasc_lsh::SignatureModel::fit(&wiki.points, &LshConfig::with_bits(m_wiki))
                .hash_all(&wiki.points),
        ),
        (
            "paper median",
            dasc_lsh::SignatureModel::fit(
                &wiki.points,
                &LshConfig::with_bits(m_wiki).threshold_rule(ThresholdRule::Median),
            )
            .hash_all(&wiki.points),
        ),
        (
            "sign-random-proj",
            dasc_lsh::SignRandomProjection::new(m_wiki, wiki.dims(), 5).hash_all(&wiki.points),
        ),
        (
            "p-stable",
            dasc_lsh::PStableLsh::new(m_wiki, wiki.dims(), 0.5, 5).hash_all(&wiki.points),
        ),
        (
            "pca-hash",
            dasc_lsh::PcaHash::fit(&wiki.points, m_wiki).hash_all(&wiki.points),
        ),
    ];
    for (name, sigs) in families {
        let buckets = dasc_lsh::BucketSet::from_signatures(&sigs);
        let sizes = buckets.sizes();
        let largest = sizes.iter().copied().max().unwrap_or(0);
        // Σ(sᵢ/N)² — 1/T for perfect balance, →1 for one giant bucket.
        let n = wiki.points.len() as f64;
        let conc: f64 = sizes.iter().map(|&s| (s as f64 / n).powi(2)).sum();
        print_row(&[
            name.to_string(),
            buckets.len().to_string(),
            largest.to_string(),
            format!("{conc:.3}"),
        ]);
    }

    println!(
        "\nRead: merging recovers accuracy lost at bucket boundaries at the \
         cost of fewer/larger buckets; larger M trades accuracy for \
         parallelism and memory; the paper's valley thresholds avoid \
         splitting dense regions on clustered data, while data-dependent \
         balanced families (pca-hash — the paper's 'spectral hashing' \
         remedy) fix the skewed-marginal case."
    );
}
