//! Table 1 — Wikipedia dataset size vs. number of categories, with the
//! paper's Eq. 15 line fit and the synthetic corpus generator's actual
//! category counts.

use dasc_bench::{print_header, print_row};
use dasc_data::{wiki_num_categories, WikiCorpusConfig, TABLE1_SIZES};

fn main() {
    print_header(
        "Table 1: Wikipedia clustering information",
        &["size", "table K", "Eq.15 fit", "generator K"],
    );
    for &(n, k_table) in &TABLE1_SIZES {
        let fit = wiki_num_categories(n);
        let gen_k = WikiCorpusConfig::new(n).effective_categories();
        print_row(&[
            n.to_string(),
            k_table.to_string(),
            fit.to_string(),
            gen_k.to_string(),
        ]);
    }
    println!(
        "\nNote: Eq. 15 is the paper's own line fit; it tracks Table 1's head \
         and departs at the tail (see EXPERIMENTS.md)."
    );
}
