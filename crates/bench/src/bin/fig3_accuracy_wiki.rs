//! Figure 3 — clustering accuracy on the Wikipedia(-like) corpus for
//! DASC, SC, PSC and NYST as the dataset grows.
//!
//! The paper plots 2¹⁰ … 2²² documents; the default scale runs the head
//! of that range (pass `--full` for more). As in the paper, the
//! heavyweight baselines stop early: "some algorithms we compare against
//! did not scale … some curves do not cover the whole range".

use dasc_bench::{print_header, print_row, time_it, Scale};
use dasc_core::{
    Dasc, DascConfig, Nystrom, NystromConfig, ParallelSpectral, PscConfig, SpectralClustering,
    SpectralConfig,
};
use dasc_data::WikiCorpusConfig;
use dasc_kernel::Kernel;
use dasc_metrics::accuracy;

fn main() {
    let scale = Scale::from_env();
    let exps: Vec<u32> = scale.pick(vec![10, 11, 12], vec![10, 11, 12, 13, 14]);
    let sc_cap = scale.pick(1usize << 12, 1usize << 13);
    let psc_cap = scale.pick(1usize << 12, 1usize << 14);

    print_header(
        "Figure 3: accuracy vs dataset size (Wikipedia-like corpus)",
        &["log2(N)", "K", "DASC", "SC", "PSC", "NYST"],
    );

    for e in exps {
        let n = 1usize << e;
        let ds = WikiCorpusConfig::new(n).seed(0xF163).generate();
        let truth = ds.labels.as_ref().expect("labelled corpus");
        let k = ds.num_classes().expect("labelled corpus");
        let kernel = Kernel::gaussian_median_heuristic(&ds.points);

        let (dasc_res, _) =
            time_it(|| Dasc::new(DascConfig::for_dataset(n, k).kernel(kernel)).run(&ds.points));
        let dasc_acc = accuracy(&dasc_res.clustering.assignments, truth);

        let sc_acc = if n <= sc_cap {
            let res =
                SpectralClustering::new(SpectralConfig::new(k).kernel(kernel)).run(&ds.points);
            format!("{:.3}", accuracy(&res.clustering.assignments, truth))
        } else {
            "-".to_string()
        };

        let psc_acc = if n <= psc_cap {
            let res = ParallelSpectral::new(PscConfig::new(k).kernel(kernel).neighbors(40))
                .run(&ds.points);
            format!("{:.3}", accuracy(&res.clustering.assignments, truth))
        } else {
            "-".to_string()
        };

        let nyst_acc = {
            let res = Nystrom::new(NystromConfig::new(k).kernel(kernel)).run(&ds.points);
            format!("{:.3}", accuracy(&res.clustering.assignments, truth))
        };

        print_row(&[
            e.to_string(),
            k.to_string(),
            format!("{dasc_acc:.3}"),
            sc_acc,
            psc_acc,
            nyst_acc,
        ]);
    }

    println!(
        "\nShape check: DASC ≈ SC, both above PSC/NYST; missing cells mark \
         baselines that no longer scale (paper Figure 3 behaviour)."
    );
}
