//! Figure 1 — analytic scalability of DASC vs. SC (Eqs. 11–12).
//!
//! Reproduces both panels: processing time (hours, log₂) and memory
//! (KB, log₂) for datasets of 2²⁰ … 2²⁹ points, β = 50 µs, C = 1024
//! machines — exactly the constants the paper plots.

use dasc_analysis::{
    dasc_memory_bytes, dasc_time_seconds, sc_memory_bytes, sc_time_seconds, CostModel,
};
use dasc_bench::{print_header, print_row};

fn main() {
    let model = CostModel::default();
    print_header(
        "Figure 1(a): processing time, log2(hours)",
        &["log2(N)", "DASC", "SC"],
    );
    for e in 20..=29u32 {
        let n = 2f64.powi(e as i32);
        let dasc_h = dasc_time_seconds(n, &model) / 3600.0;
        let sc_h = sc_time_seconds(n, &model) / 3600.0;
        print_row(&[
            e.to_string(),
            format!("{:.2}", dasc_h.log2()),
            format!("{:.2}", sc_h.log2()),
        ]);
    }

    print_header(
        "Figure 1(b): memory usage, log2(KB)",
        &["log2(N)", "DASC", "SC"],
    );
    for e in 20..=29u32 {
        let n = 2f64.powi(e as i32);
        let dasc_kb = dasc_memory_bytes(n) / 1024.0;
        let sc_kb = sc_memory_bytes(n) / 1024.0;
        print_row(&[
            e.to_string(),
            format!("{:.2}", dasc_kb.log2()),
            format!("{:.2}", sc_kb.log2()),
        ]);
    }

    println!("\nShape check: SC grows ~2 log2/step (quadratic); DASC sub-quadratic.");
}
