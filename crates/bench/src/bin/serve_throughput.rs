//! Online-serving throughput: single-point assignments/sec and latency
//! percentiles for a frozen DASC model (ISSUE acceptance target:
//! ≥ 100k single-point assignments/sec at d = 16, K = 8, release).
//!
//! Measures the in-process [`AssignmentEngine`] hot path — hashing,
//! signature lookup, Eq. 6 neighbor probes, centroid scans — which is
//! exactly what an HTTP worker runs per request, minus socket I/O.
//! Output is a single JSON object so CI can scrape it.
//!
//! Latency percentiles come from the obs-backed [`LatencyRecorder`]'s
//! log₂ histogram and report the geometric midpoint of the winning
//! bucket (within √2 of the true quantile).

use std::time::Instant;

use dasc_core::{Dasc, DascConfig};
use dasc_data::SyntheticConfig;
use dasc_kernel::Kernel;
use dasc_lsh::LshConfig;
use dasc_serve::{AssignmentEngine, LatencyRecorder, ModelArtifact};

const DIMS: usize = 16;
const CLUSTERS: usize = 8;
const TRAIN_POINTS: usize = 4_000;
const WARMUP: usize = 10_000;
const MEASURED: usize = 200_000;

fn main() {
    let ds = SyntheticConfig::blobs(TRAIN_POINTS, DIMS, CLUSTERS)
        .seed(42)
        .generate();
    let cfg = DascConfig::for_dataset(ds.points.len(), CLUSTERS)
        .kernel(Kernel::gaussian_median_heuristic(&ds.points))
        .lsh(LshConfig::with_bits(12))
        .seed(42);
    let train_start = Instant::now();
    let trained = Dasc::new(cfg).train(&ds.points);
    let artifact = ModelArtifact::from_trained(&trained, &ds.points);
    let train_secs = train_start.elapsed().as_secs_f64();
    let engine = AssignmentEngine::new(&artifact);

    // Probe stream: the training points plus jittered copies, cycled.
    // Jitter keeps some probes off the exact tier so the bench also
    // exercises the neighbor/fallback paths.
    let mut probes: Vec<Vec<f64>> = ds.points.clone();
    for (i, p) in ds.points.iter().enumerate().take(TRAIN_POINTS / 2) {
        let mut q = p.clone();
        q[i % DIMS] += 2.5;
        probes.push(q);
    }

    for p in probes.iter().cycle().take(WARMUP) {
        std::hint::black_box(engine.assign(p));
    }

    let latency = LatencyRecorder::new();
    let run_start = Instant::now();
    for p in probes.iter().cycle().take(MEASURED) {
        let t = Instant::now();
        std::hint::black_box(engine.assign(p));
        latency.record_micros(t.elapsed().as_micros() as u64);
    }
    let elapsed = run_start.elapsed().as_secs_f64();
    let per_sec = MEASURED as f64 / elapsed;
    let counts = engine.routing_counts();

    println!(
        "{{\"bench\":\"serve_throughput\",\"dims\":{DIMS},\"clusters\":{CLUSTERS},\
         \"train_points\":{TRAIN_POINTS},\"train_seconds\":{train_secs:.3},\
         \"measured_assignments\":{MEASURED},\"elapsed_seconds\":{elapsed:.4},\
         \"assignments_per_sec\":{per_sec:.0},\
         \"p50_us\":{},\"p99_us\":{},\"mean_us\":{:.3},\
         \"routing\":{{\"exact\":{},\"one_bit_neighbor\":{},\"global_fallback\":{}}}}}",
        latency.percentile_micros(0.50),
        latency.percentile_micros(0.99),
        latency.mean_micros(),
        counts.exact,
        counts.one_bit_neighbor,
        counts.global_fallback,
    );

    if per_sec < 100_000.0 {
        eprintln!("WARN: below the 100k assignments/sec acceptance target");
        std::process::exit(1);
    }
}
