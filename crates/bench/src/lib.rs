//! Shared harness utilities for the per-figure/per-table regenerator
//! binaries (see DESIGN.md §4 for the experiment index).

use std::time::{Duration, Instant};

use dasc_kernel::Kernel;
use rayon::prelude::*;

/// Run scale: `Small` finishes in seconds on a laptop; `Full` approaches
/// the paper's ranges (minutes to hours). Selected by a `--full` CLI
/// flag or `DASC_SCALE=full`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-quick default.
    Small,
    /// Paper-scale sweep.
    Full,
}

impl Scale {
    /// Parse from process args and environment.
    pub fn from_env() -> Self {
        let argv_full = std::env::args().any(|a| a == "--full");
        let env_full = std::env::var("DASC_SCALE")
            .map(|v| v.eq_ignore_ascii_case("full"))
            .unwrap_or(false);
        if argv_full || env_full {
            Scale::Full
        } else {
            Scale::Small
        }
    }

    /// Pick `small` or `full` by scale.
    pub fn pick<T>(self, small: T, full: T) -> T {
        match self {
            Scale::Small => small,
            Scale::Full => full,
        }
    }
}

/// Time a closure, returning `(result, duration)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Print a header row followed by an underline, fixed 14-char columns.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Print one data row, fixed 14-char columns.
pub fn print_row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

/// Format a byte count as KB with the paper's convention.
pub fn kb(bytes: usize) -> String {
    format!("{:.0}", bytes as f64 / 1024.0)
}

/// Format a duration in seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Frobenius norm of the *full* Gram matrix computed streaming — O(N²)
/// time, O(1) memory — so Figure 5 can compare against exact norms at
/// sizes where materializing the matrix would not fit (the paper stopped
/// at 512 K for exactly this reason; streaming removes the ceiling).
pub fn full_gram_fnorm_streaming(points: &[Vec<f64>], kernel: &Kernel) -> f64 {
    let n = points.len();
    let total: f64 = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut acc = 0.0;
            // Diagonal term once, off-diagonal twice (symmetry).
            let kii = kernel.eval(&points[i], &points[i]);
            acc += kii * kii;
            for j in (i + 1)..n {
                let v = kernel.eval(&points[i], &points[j]);
                acc += 2.0 * v * v;
            }
            acc
        })
        .sum();
    total.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_kernel::full_gram;

    #[test]
    fn streaming_fnorm_matches_dense() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64) / 20.0, ((i * 3) % 7) as f64 / 7.0])
            .collect();
        let k = Kernel::gaussian(0.4);
        let dense = full_gram(&pts, &k).frobenius_norm();
        let streamed = full_gram_fnorm_streaming(&pts, &k);
        assert!((dense - streamed).abs() < 1e-10);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Small.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
