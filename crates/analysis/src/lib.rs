//! Closed-form cost and accuracy models from Section 4 of the paper.
//!
//! These are the equations behind the two purely analytic figures:
//!
//! * **Figure 1** — time (Eq. 11) and memory (Eq. 12) of DASC vs. plain
//!   spectral clustering for 2²⁰…2²⁹ points on a 1024-node cluster with
//!   β = 50 µs per machine operation.
//! * **Figure 2** — collision probability of near-duplicate points as a
//!   function of the signature width `M` (Eqs. 13–19), using the
//!   Wikipedia fit `K = 17(log₂N − 9)` (Eq. 15).
//!
//! ```
//! use dasc_analysis::{dasc_memory_bytes, sc_memory_bytes};
//!
//! // Eq. 10: the approximation divides memory by the bucket count.
//! let n = (1u64 << 20) as f64;
//! let ratio = sc_memory_bytes(n) / dasc_memory_bytes(n);
//! assert_eq!(ratio, 512.0); // B = 2^(20/2 - 1)
//! ```

pub mod collision;
pub mod cost;

pub use collision::{collision_p1, collision_p2, wiki_collision_probability};
pub use cost::{
    dasc_memory_bytes, dasc_memory_bytes_general, dasc_operations_general, dasc_time_seconds,
    default_buckets, sc_memory_bytes, sc_operations, sc_time_seconds, space_reduction_ratio,
    time_reduction_ratio, time_reduction_ratio_general, CostModel,
};

/// Eq. 15: the Wikipedia category fit `K = 17(log₂N − 9)`, clamped to at
/// least 1 (duplicated from `dasc-data` so this crate stays
/// dependency-free; both are tested against the same anchors).
pub fn wiki_k(n: f64) -> f64 {
    (17.0 * (n.log2() - 9.0)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wiki_k_anchor() {
        assert_eq!(wiki_k(1024.0), 17.0);
        assert_eq!(wiki_k(2048.0), 34.0);
        // Clamped below the fit's zero crossing.
        assert_eq!(wiki_k(2.0), 1.0);
    }
}
