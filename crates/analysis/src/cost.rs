//! Time and memory models (Eqs. 3, 7–12).
//!
//! The paper assumes buckets of equal size `N/B` to derive upper bounds
//! on the reduction ratios; these functions reproduce those exact
//! expressions so Figure 1 can be regenerated point for point.

use crate::wiki_k;

/// Number of buckets implied by the default signature rule:
/// `M = log₂(N)/2 − 1` bits → `B = 2^M` buckets.
pub fn default_buckets(n: f64) -> f64 {
    let m = (n.log2() / 2.0 - 1.0).max(1.0);
    2f64.powf(m)
}

/// Parameters of the Figure 1 model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Average machine-operation time β, seconds (paper: 50 µs, citing
    /// Hennessy & Patterson).
    pub beta: f64,
    /// Cluster size `C` (paper: 1024 nodes).
    pub machines: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            beta: 50e-6,
            machines: 1024.0,
        }
    }
}

/// Eq. 11: DASC processing time in seconds.
///
/// `Time = (β/C) [ M·N + B² + 2N + (2N² + 34N(log₂N − 9)) / B ]`
/// with `M = log₂B` and `K = 17(log₂N − 9)`.
pub fn dasc_time_seconds(n: f64, model: &CostModel) -> f64 {
    let b = default_buckets(n);
    let m = b.log2();
    let k = wiki_k(n);
    let per_bucket = (2.0 * n * n + 2.0 * k * n) / b;
    model.beta / model.machines * (m * n + b * b + 2.0 * n + per_bucket)
}

/// The plain-SC counterpart of Eq. 11 (the Eq. 8 numerator):
/// `Time = (β/C)(2N² + 2KN + 2N)`.
pub fn sc_time_seconds(n: f64, model: &CostModel) -> f64 {
    let k = wiki_k(n);
    model.beta / model.machines * (2.0 * n * n + 2.0 * k * n + 2.0 * n)
}

/// Eq. 12: DASC memory in bytes, single-precision:
/// `Memory = 4·B·(N/B)² = 4N²/B`.
pub fn dasc_memory_bytes(n: f64) -> f64 {
    4.0 * n * n / default_buckets(n)
}

/// Full-matrix memory: `4N²` bytes.
pub fn sc_memory_bytes(n: f64) -> f64 {
    4.0 * n * n
}

/// Eq. 8's limit: the time-reduction ratio `α ≈ 1/B` under uniform
/// buckets.
pub fn time_reduction_ratio(n: f64) -> f64 {
    1.0 / default_buckets(n)
}

/// Eq. 3's operation count for DASC with an **arbitrary** bucket
/// profile: `M·N + B² + 2N + Σᵢ (2Nᵢ² + 2KᵢNᵢ)`. This is the exact
/// pre-upper-bound expression; Eq. 8's uniform assumption is only the
/// bound.
///
/// # Panics
/// Panics if `bucket_sizes` and `bucket_ks` differ in length.
pub fn dasc_operations_general(n: f64, m: f64, bucket_sizes: &[f64], bucket_ks: &[f64]) -> f64 {
    assert_eq!(
        bucket_sizes.len(),
        bucket_ks.len(),
        "bucket size/K profiles must align"
    );
    let b = bucket_sizes.len() as f64;
    let per_bucket: f64 = bucket_sizes
        .iter()
        .zip(bucket_ks)
        .map(|(&ni, &ki)| 2.0 * ni * ni + 2.0 * ki * ni)
        .sum();
    m * n + b * b + 2.0 * n + per_bucket
}

/// The Eq. 7 denominator: plain SC's operation count
/// `2N² + 2KN + 2N`.
pub fn sc_operations(n: f64, k: f64) -> f64 {
    2.0 * n * n + 2.0 * k * n + 2.0 * n
}

/// Eq. 7 exactly: the time-reduction ratio `α` for an arbitrary bucket
/// profile. Uniform buckets approach the `1/B` bound; skew pushes the
/// ratio toward 1.
pub fn time_reduction_ratio_general(
    n: f64,
    m: f64,
    k: f64,
    bucket_sizes: &[f64],
    bucket_ks: &[f64],
) -> f64 {
    dasc_operations_general(n, m, bucket_sizes, bucket_ks) / sc_operations(n, k)
}

/// Eq. 9's numerator: the approximated matrix's memory in bytes for an
/// arbitrary bucket profile, `4 Σ Nᵢ²`.
pub fn dasc_memory_bytes_general(bucket_sizes: &[f64]) -> f64 {
    4.0 * bucket_sizes.iter().map(|&ni| ni * ni).sum::<f64>()
}

/// Eq. 10: the space-reduction ratio `γ = 1/B` under uniform buckets.
pub fn space_reduction_ratio(n: f64) -> f64 {
    1.0 / default_buckets(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_buckets_rule() {
        // N = 2^20 → M = 9 → B = 512.
        assert_eq!(default_buckets((1u64 << 20) as f64), 512.0);
        // N = 2^28 → M = 13 → B = 8192.
        assert_eq!(default_buckets((1u64 << 28) as f64), 8192.0);
    }

    #[test]
    fn dasc_is_faster_and_smaller_than_sc_at_scale() {
        let model = CostModel::default();
        for e in 20..=29u32 {
            let n = (1u64 << e) as f64;
            assert!(dasc_time_seconds(n, &model) < sc_time_seconds(n, &model));
            assert!(dasc_memory_bytes(n) < sc_memory_bytes(n));
        }
    }

    #[test]
    fn reduction_ratios_match_bucket_count() {
        let n = (1u64 << 24) as f64;
        let b = default_buckets(n);
        assert_eq!(time_reduction_ratio(n), 1.0 / b);
        assert_eq!(space_reduction_ratio(n), 1.0 / b);
    }

    #[test]
    fn figure1_shape_subquadratic_growth() {
        // Doubling N must grow DASC time by clearly less than the 4×
        // quadratic factor SC shows.
        let model = CostModel::default();
        let n = (1u64 << 24) as f64;
        let dasc_factor = dasc_time_seconds(2.0 * n, &model) / dasc_time_seconds(n, &model);
        let sc_factor = sc_time_seconds(2.0 * n, &model) / sc_time_seconds(n, &model);
        assert!(sc_factor > 3.9, "sc factor {sc_factor}");
        assert!(dasc_factor < 3.5, "dasc factor {dasc_factor}");

        let mem_factor = dasc_memory_bytes(2.0 * n) / dasc_memory_bytes(n);
        assert!(mem_factor < 4.0);
    }

    #[test]
    fn general_ratio_approaches_one_over_b_for_uniform_buckets() {
        let n = 65536.0;
        let b = 64usize;
        let sizes = vec![n / b as f64; b];
        let ks = vec![4.0; b];
        let alpha = time_reduction_ratio_general(n, 6.0, 256.0, &sizes, &ks);
        // Within 2x of 1/B (the bound neglects the linear terms).
        assert!(alpha < 2.0 / b as f64, "alpha {alpha}");
        assert!(alpha > 0.5 / b as f64, "alpha {alpha}");
    }

    #[test]
    fn skewed_buckets_worsen_the_ratio() {
        let n = 4096.0;
        let uniform = vec![n / 8.0; 8];
        // One giant bucket holding half the data.
        let mut skewed = vec![n / 16.0; 7];
        skewed.push(n - 7.0 * n / 16.0);
        let ks = vec![2.0; 8];
        let a_u = time_reduction_ratio_general(n, 3.0, 16.0, &uniform, &ks);
        let a_s = time_reduction_ratio_general(n, 3.0, 16.0, &skewed, &ks);
        assert!(a_s > a_u, "skew did not worsen ratio: {a_s} vs {a_u}");
    }

    #[test]
    fn general_memory_matches_uniform_formula() {
        let n = 1024.0;
        let b = 16usize;
        let sizes = vec![n / b as f64; b];
        let general = dasc_memory_bytes_general(&sizes);
        assert!((general - 4.0 * n * n / b as f64).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "profiles must align")]
    fn misaligned_profiles_panic() {
        dasc_operations_general(10.0, 2.0, &[5.0, 5.0], &[1.0]);
    }

    #[test]
    fn figure1_magnitudes_are_plausible() {
        // Sanity-check against the plotted scale: at N = 2²⁰ the paper's
        // log₂(hours) plot puts SC near 2⁵ h and DASC well below it.
        let model = CostModel::default();
        let n = (1u64 << 20) as f64;
        let sc_hours = sc_time_seconds(n, &model) / 3600.0;
        let dasc_hours = dasc_time_seconds(n, &model) / 3600.0;
        assert!(sc_hours > 20.0 && sc_hours < 40.0, "sc {sc_hours} h");
        assert!(dasc_hours < sc_hours / 100.0, "dasc {dasc_hours} h");
    }
}
