//! Collision-probability accuracy model (Eqs. 13–19, Figure 2).
//!
//! Two points that differ significantly in `r` of `d` dimensions collide
//! under one axis-threshold hash bit with probability `(d−r)/d`; an
//! `M`-bit signature collides with probability `((d−r)/d)^M` (Eq. 13),
//! and a whole cluster of `N/K` points stays together with probability
//! `P1^{N/K}` (Eq. 14). The Wikipedia instantiation (Eqs. 15–18) fixes
//! `r = 5`, `F = 11` terms and `K = 17(log₂N − 9)`.

use crate::wiki_k;

/// Eq. 13: single-pair collision probability `P1 = ((d − r)/d)^M`.
///
/// # Panics
/// Panics unless `0 < d`, `r <= d`.
pub fn collision_p1(d: f64, r: f64, m: u32) -> f64 {
    assert!(d > 0.0, "d must be positive");
    assert!((0.0..=d).contains(&r), "r must be in [0, d]");
    ((d - r) / d).powi(m as i32)
}

/// Eq. 14: probability that all `N/K` points of an average cluster share
/// a bucket, `P2 = P1^{N/K}`.
pub fn collision_p2(d: f64, r: f64, m: u32, n: f64, k: f64) -> f64 {
    assert!(k > 0.0, "k must be positive");
    collision_p1(d, r, m).powf(n / k)
}

/// Eqs. 15–18: the Wikipedia-parameterized collision probability
/// plotted in Figure 2,
/// `P2 = (1 − 5/(6K + 5N))^{M·N/K}` with `K = 17(log₂N − 9)`.
///
/// Derivation: with `F = 11` terms per document and `r = 5` differing
/// dimensions, the corpus dimensionality is `d = K(11 − r) + N·r`
/// (Eq. 17), so `(d − r)/d = 1 − 5/(6K + 5N)` up to the `−r` term the
/// paper drops as negligible.
pub fn wiki_collision_probability(n: f64, m: u32) -> f64 {
    let k = wiki_k(n);
    let d = 6.0 * k + 5.0 * n;
    (1.0 - 5.0 / d).powf(m as f64 * n / k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_known_values() {
        assert_eq!(collision_p1(10.0, 0.0, 8), 1.0);
        assert_eq!(collision_p1(10.0, 10.0, 1), 0.0);
        assert!((collision_p1(10.0, 5.0, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn p1_decreases_with_more_bits() {
        let a = collision_p1(11.0, 5.0, 5);
        let b = collision_p1(11.0, 5.0, 20);
        assert!(b < a);
    }

    #[test]
    fn p2_is_p1_to_cluster_size() {
        let p1 = collision_p1(20.0, 2.0, 4);
        let p2 = collision_p2(20.0, 2.0, 4, 100.0, 10.0);
        assert!((p2 - p1.powf(10.0)).abs() < 1e-12);
    }

    #[test]
    fn figure2_monotone_in_m() {
        // Collision probability decreases sub-linearly as M grows.
        let n = 1_048_576.0; // 1M
        let mut last = 1.0;
        for m in 5..=35u32 {
            let p = wiki_collision_probability(n, m);
            assert!(p <= last && p > 0.0, "m={m}: {p} vs {last}");
            last = p;
        }
    }

    #[test]
    fn figure2_range_matches_plot() {
        // Figure 2's y-axis spans roughly 0.7–1.0 across 1M…1G points
        // and M = 5…35.
        for e in [20u32, 24, 27, 30] {
            let n = 2f64.powi(e as i32);
            for m in [5u32, 20, 35] {
                let p = wiki_collision_probability(n, m);
                assert!(
                    (0.6..=1.0).contains(&p),
                    "N=2^{e}, M={m}: p={p} outside plot range"
                );
            }
        }
    }

    #[test]
    fn figure2_dataset_size_dependence() {
        // The paper's prose claims collision probability *decreases* with
        // dataset size at fixed M, but Eq. 18's asymptotics give
        // ln p ≈ −M/K with K = 17(log₂N − 9) growing in N, so the
        // formula itself yields the opposite trend. We implement Eq. 18
        // as written; this test pins the formula's actual behaviour and
        // EXPERIMENTS.md records the discrepancy.
        let m = 20u32;
        let p_small = wiki_collision_probability(2f64.powi(20), m);
        let p_large = wiki_collision_probability(2f64.powi(30), m);
        assert!(p_large > p_small, "Eq. 18: {p_large} vs {p_small}");
        // Both stay in the plotted band.
        assert!(p_small > 0.6 && p_large < 1.0);
    }

    #[test]
    #[should_panic(expected = "r must be in")]
    fn r_above_d_panics() {
        collision_p1(5.0, 6.0, 2);
    }
}
