//! Property tests for snapshot merging — the algebra behind metrics
//! federation. The coordinator folds every worker's snapshot into one
//! view with [`MetricsSnapshot::merge`], so that operation must be a
//! faithful sum: nothing lost, nothing double-counted, for disjoint and
//! overlapping series alike.

use std::collections::BTreeMap;

use dasc_obs::{HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Strategy: a histogram snapshot with counts scattered over a handful
/// of (possibly repeated) bucket indices.
fn histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::vec((0usize..HISTOGRAM_BUCKETS, 1u64..1000), 0..8),
        any::<u32>(),
    )
        .prop_map(|(entries, sum)| {
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for (i, c) in entries {
                buckets[i] += c;
            }
            HistogramSnapshot {
                count: buckets.iter().sum(),
                sum: sum as u64,
                buckets,
            }
        })
}

/// Series names drawn from a tiny alphabet so merges exercise both
/// disjoint and colliding keys (one name carries a label block).
fn name_for(i: u8) -> String {
    ["a", "b", "c", "d{w=\"1\"}"][i as usize % 4].to_string()
}

/// Strategy: a snapshot with a few counters, gauges, and histograms
/// under alphabet names (later duplicates overwrite, as a real
/// `BTreeMap` registry would never hold duplicate keys anyway).
fn snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        prop::collection::vec((any::<u8>(), any::<u32>()), 0..4),
        prop::collection::vec((any::<u8>(), any::<i32>()), 0..4),
        prop::collection::vec((any::<u8>(), histogram()), 0..4),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(k, v)| (name_for(k), v as u64))
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(k, v)| (name_for(k), v as i64))
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|(k, v)| (name_for(k), v))
                .collect(),
        })
}

proptest! {
    #[test]
    fn merge_preserves_counter_totals(a in snapshot(), b in snapshot()) {
        let merged = a.clone().merge(b.clone());
        // Every key from either side survives with the summed value;
        // no extra keys appear.
        let mut expected: BTreeMap<String, u64> = a.counters.clone();
        for (k, v) in &b.counters {
            *expected.entry(k.clone()).or_insert(0) += v;
        }
        prop_assert_eq!(&merged.counters, &expected);
    }

    #[test]
    fn merge_preserves_histogram_mass(a in snapshot(), b in snapshot()) {
        let merged = a.clone().merge(b.clone());
        let mass = |s: &MetricsSnapshot| -> (u64, u64, u64) {
            s.histograms.values().fold((0, 0, 0), |(c, sum, bk), h| {
                (c + h.count, sum + h.sum, bk + h.buckets.iter().sum::<u64>())
            })
        };
        let (ca, sa, ba) = mass(&a);
        let (cb, sb, bb) = mass(&b);
        prop_assert_eq!(mass(&merged), (ca + cb, sa + sb, ba + bb));
        // Overlapping series merged exactly bucket-wise.
        for (name, h) in &merged.histograms {
            match (a.histograms.get(name), b.histograms.get(name)) {
                (Some(ha), Some(hb)) => {
                    for i in 0..HISTOGRAM_BUCKETS {
                        prop_assert_eq!(h.buckets[i], ha.buckets[i] + hb.buckets[i]);
                    }
                }
                (Some(only), None) | (None, Some(only)) => prop_assert_eq!(h, only),
                (None, None) => prop_assert!(false, "phantom series {}", name),
            }
        }
    }

    #[test]
    fn merge_with_empty_is_identity(a in snapshot()) {
        prop_assert_eq!(a.clone().merge(MetricsSnapshot::default()), a.clone());
        prop_assert_eq!(MetricsSnapshot::default().merge(a.clone()), a);
    }

    #[test]
    fn labeling_makes_merges_collision_free(a in snapshot(), b in snapshot()) {
        // The federation invariant: snapshots re-keyed with distinct
        // worker labels never collide, so each series survives intact.
        let merged = a.clone().with_label("worker", "w1")
            .merge(b.clone().with_label("worker", "w2"));
        prop_assert_eq!(
            merged.counters.len(),
            a.counters.len() + b.counters.len()
        );
        prop_assert_eq!(
            merged.histograms.len(),
            a.histograms.len() + b.histograms.len()
        );
        for (k, v) in &a.counters {
            prop_assert_eq!(merged.counters.get(&dasc_obs::labeled(k, "worker", "w1")), Some(v));
        }
    }
}
