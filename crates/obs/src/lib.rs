//! Unified observability for the DASC workspace: one metrics registry,
//! one span tracer, one exposition format.
//!
//! The paper's evaluation (Figs. 1, 6; Table 3) is about *where time
//! and memory go* — per-stage runtime of LSH signing, bucketing and
//! merging, per-bucket eigensolves, and k-means. This crate is the
//! single instrumentation layer behind those numbers:
//!
//! * [`metrics`] — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   log₂ [`Histogram`]s with lock-free hot-path recording and a
//!   point-in-time [`MetricsSnapshot`]. A process-wide registry is at
//!   [`metrics::global`]; subsystems needing isolation own their own.
//! * [`trace`] — `span!("lsh.sign")`-style RAII stage spans with
//!   parent/child nesting and thread ids, exportable as Chrome
//!   trace-event JSON ([`trace::chrome_trace_json`]) or a
//!   human-readable stage table ([`trace::stage_table`]).
//! * [`prometheus`] — text exposition of a snapshot, served by
//!   `dasc-serve` at `GET /metrics`.
//!
//! Dependency-free by design (std only): every other crate in the
//! workspace can instrument itself without pulling anything in.

pub mod metrics;
pub mod prometheus;
pub mod trace;

pub use metrics::{
    global, labeled, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use trace::{
    chrome_trace_json, chrome_trace_json_lanes, stage_table, stage_totals, tracer, InstantRecord,
    SpanGuard, SpanRecord, TraceLane, Tracer,
};
