//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`].
//!
//! Registry names may embed a label block
//! (`requests_total{endpoint="assign"}`): series sharing a base name
//! are grouped under one `# TYPE` line, and histogram `le` labels are
//! appended to the user's labels. Base names are sanitized to the
//! Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`); dots become
//! underscores, so dotted registry names stay readable.

use crate::metrics::{bucket_upper_edge, HistogramSnapshot, MetricsSnapshot};

/// Split a registry name into (sanitized base, label block without
/// braces).
fn split_name(name: &str) -> (String, &str) {
    let (base, labels) = match name.split_once('{') {
        Some((b, rest)) => (b, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    };
    let mut clean = String::with_capacity(base.len());
    for (i, c) in base.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            clean.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            clean.push('_');
            clean.push(c);
        } else {
            clean.push('_');
        }
    }
    if clean.is_empty() {
        clean.push('_');
    }
    (clean, labels)
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn type_line(out: &mut String, emitted: &mut Vec<String>, base: &str, kind: &str) {
    if !emitted.iter().any(|b| b == base) {
        out.push_str(&format!("# TYPE {base} {kind}\n"));
        emitted.push(base.to_string());
    }
}

fn render_histogram(out: &mut String, base: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let cum = h.cumulative();
    // Buckets up to the highest populated one keep the output compact;
    // `+Inf` always closes the series.
    let last = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1)
        .min(h.buckets.len() - 1);
    for (i, &c) in cum.iter().enumerate().take(last + 1) {
        out.push_str(&format!(
            "{base}_bucket{{{labels}{sep}le=\"{}\"}} {c}\n",
            bucket_upper_edge(i)
        ));
    }
    out.push_str(&format!(
        "{base}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
        h.count
    ));
    let lb = braced(labels);
    out.push_str(&format!("{base}_sum{lb} {}\n", h.sum));
    out.push_str(&format!("{base}_count{lb} {}\n", h.count));
}

/// Render a snapshot as Prometheus text exposition.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut emitted: Vec<String> = Vec::new();
    for (name, value) in &snapshot.counters {
        let (base, labels) = split_name(name);
        type_line(&mut out, &mut emitted, &base, "counter");
        out.push_str(&format!("{base}{} {value}\n", braced(labels)));
    }
    for (name, value) in &snapshot.gauges {
        let (base, labels) = split_name(name);
        type_line(&mut out, &mut emitted, &base, "gauge");
        out.push_str(&format!("{base}{} {value}\n", braced(labels)));
    }
    for (name, h) in &snapshot.histograms {
        let (base, labels) = split_name(name);
        type_line(&mut out, &mut emitted, &base, "histogram");
        render_histogram(&mut out, &base, labels, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn sanitizes_base_names() {
        assert_eq!(split_name("dasc.lsh.sign").0, "dasc_lsh_sign");
        assert_eq!(split_name("9lives").0, "_9lives");
        assert_eq!(split_name("ok_name:sub").0, "ok_name:sub");
    }

    #[test]
    fn splits_label_blocks() {
        let (base, labels) = split_name("req_total{endpoint=\"assign\"}");
        assert_eq!(base, "req_total");
        assert_eq!(labels, "endpoint=\"assign\"");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let r = Registry::new();
        r.inc("runs_total", 2);
        r.gauge("depth").set(-3);
        let h = r.histogram("lat_us{endpoint=\"assign\"}");
        h.record(1);
        h.record(3);
        h.record(3);
        let text = render(&r.snapshot());

        assert!(text.contains("# TYPE runs_total counter"));
        assert!(text.contains("runs_total 2"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -3"));
        assert!(text.contains("# TYPE lat_us histogram"));
        // Cumulative buckets: 1 obs < 2, 3 obs < 4.
        assert!(text.contains("lat_us_bucket{endpoint=\"assign\",le=\"2\"} 1"));
        assert!(text.contains("lat_us_bucket{endpoint=\"assign\",le=\"4\"} 3"));
        assert!(text.contains("lat_us_bucket{endpoint=\"assign\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_sum{endpoint=\"assign\"} 7"));
        assert!(text.contains("lat_us_count{endpoint=\"assign\"} 3"));
    }

    #[test]
    fn type_line_emitted_once_per_base() {
        let r = Registry::new();
        r.inc("route_total{tier=\"exact\"}", 1);
        r.inc("route_total{tier=\"global\"}", 2);
        let text = render(&r.snapshot());
        assert_eq!(text.matches("# TYPE route_total counter").count(), 1);
        assert!(text.contains("route_total{tier=\"exact\"} 1"));
        assert!(text.contains("route_total{tier=\"global\"} 2"));
    }

    #[test]
    fn every_line_is_wellformed() {
        let r = Registry::new();
        r.inc("a.b-c/total", 1);
        r.observe("h", 100);
        let text = render(&r.snapshot());
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ")
                    || line
                        .split_once(' ')
                        .is_some_and(|(series, v)| !series.is_empty() && v.parse::<f64>().is_ok()),
                "malformed line: {line}"
            );
        }
    }
}
