//! Span-based stage tracing.
//!
//! A [`SpanGuard`] measures one pipeline stage RAII-style; nesting on
//! the same thread records parent/child links. The global [`Tracer`] is
//! disabled by default — guards then cost two `Instant::now()` calls
//! and record nothing — and can be enabled for a run to collect every
//! span, export it as Chrome trace-event JSON (loadable in
//! `chrome://tracing` / Perfetto), or aggregate it into a stage table.
//!
//! ```
//! let tracer = dasc_obs::trace::tracer();
//! tracer.enable();
//! {
//!     let _outer = dasc_obs::span!("dasc.lsh");
//!     let _inner = dasc_obs::span!("dasc.lsh.sign");
//! }
//! let spans = tracer.drain();
//! assert_eq!(spans.len(), 2);
//! println!("{}", dasc_obs::trace::chrome_trace_json(&spans));
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within this tracer.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Stage name, e.g. `dasc.lsh.sign`.
    pub name: String,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Start offset from the tracer epoch, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub dur_us: u64,
}

/// Collects spans while enabled. One global instance ([`tracer`]) is
/// shared by the whole pipeline.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

thread_local! {
    /// Per-thread stack of open span ids (parent linking).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Small dense id for the current thread (Chrome trace `tid`).
fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// New tracer, disabled, with its epoch at construction time.
    pub fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Start collecting spans.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stop collecting spans (already-collected spans are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Whether spans are currently collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a span. The guard records on drop (or [`SpanGuard::finish`])
    /// if the tracer was enabled when the span opened. Guards must be
    /// dropped in LIFO order per thread for parent links to be right —
    /// the natural order for scoped stage timing.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let active = if self.is_enabled() {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let parent = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied();
                s.push(id);
                parent
            });
            Some(ActiveSpan {
                id,
                parent,
                name: name.to_string(),
            })
        } else {
            None
        };
        SpanGuard {
            tracer: self,
            start: Instant::now(),
            active,
        }
    }

    /// Take every collected span, ordered by start time, leaving the
    /// tracer empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("tracer lock"));
        spans.sort_by_key(|s| (s.start_us, s.id));
        spans
    }

    /// Discard every collected span.
    pub fn clear(&self) {
        self.spans.lock().expect("tracer lock").clear();
    }

    fn record(&self, active: ActiveSpan, start: Instant, end: Instant) {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&active.id) {
                s.pop();
            } else {
                // Out-of-order drop: unlink rather than corrupt the
                // stack for the surviving spans.
                s.retain(|&id| id != active.id);
            }
        });
        let record = SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread: thread_ordinal(),
            start_us: start.duration_since(self.epoch).as_micros() as u64,
            dur_us: end.duration_since(start).as_micros() as u64,
        };
        self.spans.lock().expect("tracer lock").push(record);
    }
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
}

/// RAII guard for one span. Always measures wall time; records into the
/// tracer only if tracing was enabled when it opened.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    start: Instant,
    active: Option<ActiveSpan>,
}

impl SpanGuard<'_> {
    /// Close the span now and return its measured duration (available
    /// whether or not the tracer recorded it — callers use this to feed
    /// stage-time structs without a second clock read).
    pub fn finish(mut self) -> Duration {
        let end = Instant::now();
        if let Some(active) = self.active.take() {
            self.tracer.record(active, self.start, end);
        }
        end.duration_since(self.start)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            self.tracer.record(active, self.start, Instant::now());
        }
    }
}

/// The process-wide tracer used by the `span!` macro.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

/// Open a span on the global tracer: `let _g = span!("dasc.gram");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::tracer().span($name)
    };
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render spans as a Chrome trace-event JSON array of complete (`"X"`)
/// events — drop the output into `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let pid = std::process::id();
    let mut out = String::with_capacity(spans.len() * 96 + 2);
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str(&format!(
            "\",\"cat\":\"dasc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{},\"args\":{{\"id\":{}{}}}}}",
            s.start_us,
            s.dur_us,
            s.thread,
            s.id,
            s.parent
                .map(|p| format!(",\"parent\":{p}"))
                .unwrap_or_default(),
        ));
    }
    out.push_str("\n]\n");
    out
}

/// A point-in-time marker in a [`TraceLane`] — task retries, fencing
/// decisions, worker deaths. Rendered as a Chrome `"i"` instant event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstantRecord {
    /// Marker label, e.g. `task 7 retried (attempt 2)`.
    pub name: String,
    /// Offset from the shared trace epoch, microseconds.
    pub ts_us: u64,
}

/// One process lane of a merged multi-process trace: the coordinator
/// plus one lane per worker. `pid` keys the lane in Chrome/Perfetto;
/// `label` becomes its displayed process name via a `process_name`
/// metadata event. Span and instant timestamps must already be rebased
/// onto the shared epoch (the coordinator rebases worker span logs at
/// assignment time).
#[derive(Clone, Debug, Default)]
pub struct TraceLane {
    /// Stable lane id (Chrome trace `pid`).
    pub pid: u64,
    /// Displayed process name, e.g. the worker's registered name.
    pub label: String,
    /// Complete spans in this lane.
    pub spans: Vec<SpanRecord>,
    /// Point-in-time markers in this lane.
    pub instants: Vec<InstantRecord>,
}

/// Render a merged multi-lane trace as Chrome trace-event JSON: one
/// `process_name` metadata (`"M"`) event per lane, every span as a
/// complete (`"X"`) event under its lane's `pid`, and every marker as
/// a process-scoped instant (`"i"`) event.
pub fn chrome_trace_json_lanes(lanes: &[TraceLane]) -> String {
    let mut out = String::new();
    out.push('[');
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n{");
    };
    for lane in lanes {
        sep(&mut out);
        out.push_str(&format!(
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"",
            lane.pid
        ));
        escape_json(&lane.label, &mut out);
        out.push_str("\"}}");
        for s in &lane.spans {
            sep(&mut out);
            out.push_str("\"name\":\"");
            escape_json(&s.name, &mut out);
            out.push_str(&format!(
                "\",\"cat\":\"dasc\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"id\":{}{}}}}}",
                s.start_us,
                s.dur_us,
                lane.pid,
                s.thread,
                s.id,
                s.parent
                    .map(|p| format!(",\"parent\":{p}"))
                    .unwrap_or_default(),
            ));
        }
        for i in &lane.instants {
            sep(&mut out);
            out.push_str("\"name\":\"");
            escape_json(&i.name, &mut out);
            out.push_str(&format!(
                "\",\"cat\":\"dasc\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{},\"pid\":{},\"tid\":0}}",
                i.ts_us, lane.pid,
            ));
        }
    }
    out.push_str("\n]\n");
    out
}

/// Total duration and call count per distinct span name.
pub fn stage_totals(spans: &[SpanRecord]) -> BTreeMap<String, (u64, Duration)> {
    let mut totals: BTreeMap<String, (u64, Duration)> = BTreeMap::new();
    for s in spans {
        let e = totals.entry(s.name.clone()).or_default();
        e.0 += 1;
        e.1 += Duration::from_micros(s.dur_us);
    }
    totals
}

/// Render spans as a human-readable stage table: one row per distinct
/// name with call count, total and mean wall time, and share of the
/// traced wall-clock window.
pub fn stage_table(spans: &[SpanRecord]) -> String {
    if spans.is_empty() {
        return "stage timings: (no spans recorded)\n".to_string();
    }
    let window_us = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0)
        .saturating_sub(spans.iter().map(|s| s.start_us).min().unwrap_or(0))
        .max(1);
    let mut rows: Vec<(String, u64, Duration)> = stage_totals(spans)
        .into_iter()
        .map(|(name, (calls, total))| (name, calls, total))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));

    let name_w = rows
        .iter()
        .map(|(n, _, _)| n.len())
        .max()
        .unwrap_or(5)
        .max("stage".len());
    let mut out = format!(
        "{:<name_w$}  {:>7}  {:>12}  {:>12}  {:>6}\n",
        "stage", "calls", "total_ms", "mean_ms", "%"
    );
    for (name, calls, total) in rows {
        let total_ms = total.as_secs_f64() * 1e3;
        out.push_str(&format!(
            "{name:<name_w$}  {calls:>7}  {total_ms:>12.3}  {:>12.3}  {:>6.1}\n",
            total_ms / calls as f64,
            100.0 * total.as_micros() as f64 / window_us as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_but_measures() {
        let t = Tracer::new();
        let g = t.span("quiet");
        std::thread::sleep(Duration::from_millis(2));
        let d = g.finish();
        assert!(d >= Duration::from_millis(2));
        assert!(t.drain().is_empty());
    }

    #[test]
    fn nesting_links_parents() {
        let t = Tracer::new();
        t.enable();
        {
            let _a = t.span("outer");
            {
                let _b = t.span("inner");
            }
            let _c = t.span("sibling");
        }
        let spans = t.drain();
        assert_eq!(spans.len(), 3);
        let by_name: BTreeMap<&str, &SpanRecord> =
            spans.iter().map(|s| (s.name.as_str(), s)).collect();
        let outer = by_name["outer"];
        assert_eq!(outer.parent, None);
        assert_eq!(by_name["inner"].parent, Some(outer.id));
        assert_eq!(by_name["sibling"].parent, Some(outer.id));
        // Children fit inside the parent window.
        for child in ["inner", "sibling"] {
            let c = by_name[child];
            assert!(c.start_us >= outer.start_us);
            assert!(c.start_us + c.dur_us <= outer.start_us + outer.dur_us + 1);
        }
    }

    #[test]
    fn spans_from_multiple_threads_are_collected() {
        let t = Tracer::new();
        t.enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    let _g = t.span("worker");
                });
            }
        });
        let spans = t.drain();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn drain_empties_and_sorts() {
        let t = Tracer::new();
        t.enable();
        let a = t.span("a");
        drop(a);
        let b = t.span("b");
        drop(b);
        let spans = t.drain();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].start_us <= spans[1].start_us);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn chrome_trace_is_structured() {
        let t = Tracer::new();
        t.enable();
        {
            let _g = t.span("stage.\"quoted\"");
        }
        let json = chrome_trace_json(&t.drain());
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("stage.\\\"quoted\\\""));
    }

    #[test]
    fn lanes_export_metadata_spans_and_instants() {
        let lanes = vec![
            TraceLane {
                pid: 0,
                label: "coordinator".into(),
                spans: vec![SpanRecord {
                    id: 1,
                    parent: None,
                    name: "dist.job".into(),
                    thread: 0,
                    start_us: 0,
                    dur_us: 500,
                }],
                instants: vec![InstantRecord {
                    name: "task 7 retried (attempt 2)".into(),
                    ts_us: 250,
                }],
            },
            TraceLane {
                pid: 1,
                label: "w\"1".into(),
                spans: vec![SpanRecord {
                    id: 2,
                    parent: Some(1),
                    name: "dist.task.map".into(),
                    thread: 3,
                    start_us: 100,
                    dur_us: 50,
                }],
                instants: vec![],
            },
        ];
        let json = chrome_trace_json_lanes(&lanes);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // One process_name metadata event per lane, escaped labels.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("w\\\"1"));
        // Spans carry their lane's pid and their own tid/parent.
        assert!(json.contains("\"pid\":1,\"tid\":3,\"args\":{\"id\":2,\"parent\":1}"));
        // The retry marker is a process-scoped instant event.
        assert!(json.contains("\"ph\":\"i\",\"s\":\"p\",\"ts\":250,\"pid\":0"));
    }

    #[test]
    fn stage_table_aggregates() {
        let t = Tracer::new();
        t.enable();
        for _ in 0..3 {
            let _g = t.span("repeat");
        }
        {
            let _g = t.span("once");
        }
        let spans = t.drain();
        let totals = stage_totals(&spans);
        assert_eq!(totals["repeat"].0, 3);
        assert_eq!(totals["once"].0, 1);
        let table = stage_table(&spans);
        assert!(table.contains("repeat"));
        assert!(table.contains("once"));
        assert!(table.starts_with("stage"));
    }

    #[test]
    fn span_macro_uses_global_tracer() {
        // Global tracer is shared across tests; only assert our span
        // shows up, not the total count.
        tracer().enable();
        {
            let _g = crate::span!("obs.test.macro_span");
        }
        let spans = tracer().drain();
        tracer().disable();
        assert!(spans.iter().any(|s| s.name == "obs.test.macro_span"));
    }
}
