//! The metrics registry: named counters, gauges, and log₂ histograms.
//!
//! Hot-path recording is lock-free: callers resolve a metric once
//! (`registry.counter("name")` returns an `Arc` handle) and then
//! increment plain atomics. The registry map itself is only locked at
//! registration and snapshot time. Names may carry a Prometheus-style
//! label block (`requests_total{endpoint="assign"}`); the exposition
//! layer ([`crate::prometheus`]) keeps labels intact and groups series
//! by base name.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of log₂ histogram buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// (values of 0 land in bucket 0). `2^39` µs ≈ 6.4 days when recording
/// microseconds; plenty for any latency or size distribution we track.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotone counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by`.
    pub fn add(&self, by: u64) {
        self.value.fetch_add(by, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, bytes held).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Concurrent log₂ histogram with count and sum, generalizing the
/// latency recorder that used to live in `dasc-serve`.
///
/// Recording is two atomic adds plus one atomic increment; percentile
/// queries walk the 40 buckets. Values are unit-agnostic (we record
/// microseconds, bytes, and record counts with the same type).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }
}

/// Bucket index for a value: `floor(log2(max(v, 1)))`, clamped to the
/// last bucket.
pub fn bucket_index(v: u64) -> usize {
    (63 - v.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive-exclusive upper edge of bucket `i` (`2^(i+1)`).
pub fn bucket_upper_edge(i: usize) -> u64 {
    1u64 << (i + 1)
}

/// Geometric midpoint of bucket `i`: `2^(i+0.5)`, the unbiased point
/// estimate for a log₂ bucket (the upper edge overestimates by √2 on
/// average).
pub fn bucket_geometric_mid(i: usize) -> u64 {
    ((1u64 << i) as f64 * std::f64::consts::SQRT_2).round() as u64
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum() as f64 / n as f64
    }

    /// Approximate percentile (`q` in `[0, 1]`): the geometric midpoint
    /// of the histogram bucket containing the q-quantile, so reported
    /// percentiles are unbiased within a factor of √2 rather than
    /// systematically high by up to 2× as an upper-edge estimate is.
    ///
    /// Contract: an *empty* histogram returns 0 for **every** `q`,
    /// including `q = 1.0` — there is no observation to estimate, so no
    /// bucket midpoint (not even the last one) is ever reported.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_geometric_mid(i);
            }
        }
        bucket_geometric_mid(HISTOGRAM_BUCKETS - 1)
    }

    /// Point-in-time copy of the full distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Frozen copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Cumulative count of observations `< 2^(i+1)` for each bucket —
    /// the Prometheus `le` series.
    pub fn cumulative(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut cum = self.buckets;
        for i in 1..HISTOGRAM_BUCKETS {
            cum[i] += cum[i - 1];
        }
        cum
    }

    /// Fold another snapshot's observations into this one: counts and
    /// sums add, buckets merge position-wise. This is exact — log₂
    /// buckets are aligned by construction, so merging distributions
    /// from different processes loses nothing beyond the bucketing
    /// already applied at record time.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// Inject a `key="value"` label into a metric name that may already
/// carry a label block: `labeled("x", "w", "a")` → `x{w="a"}` while
/// `labeled(r#"x{e="y"}"#, "w", "a")` → `x{e="y",w="a"}`. Backslashes
/// and quotes in the value are escaped per the Prometheus text format.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    let value = value.replace('\\', "\\\\").replace('"', "\\\"");
    match name.strip_suffix('}').and_then(|s| s.split_once('{')) {
        Some((base, existing)) => format!("{base}{{{existing},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Point-in-time copy of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge another snapshot into this one *additively*: counters and
    /// gauges sum, histograms fold bucket-wise (the merged distribution
    /// is exactly what one registry would have recorded). Series that
    /// must stay distinct — the same metric observed by two workers —
    /// must be disambiguated first via [`MetricsSnapshot::with_label`].
    pub fn merge(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            *self.gauges.entry(name).or_insert(0) += v;
        }
        for (name, h) in other.histograms {
            match self.histograms.entry(name) {
                Entry::Occupied(mut e) => e.get_mut().merge_from(&h),
                Entry::Vacant(e) => {
                    e.insert(h);
                }
            }
        }
        self
    }

    /// Re-key every series with an extra label. Metrics federation tags
    /// each worker's snapshot with `worker="<name>"` before merging so
    /// per-worker series survive the additive [`MetricsSnapshot::merge`].
    pub fn with_label(self, key: &str, value: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .into_iter()
                .map(|(n, v)| (labeled(&n, key, value), v))
                .collect(),
            gauges: self
                .gauges
                .into_iter()
                .map(|(n, v)| (labeled(&n, key, value), v))
                .collect(),
            histograms: self
                .histograms
                .into_iter()
                .map(|(n, v)| (labeled(&n, key, value), v))
                .collect(),
        }
    }

    /// True when no metric is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A named-metric registry. Cheap to create; one global instance
/// ([`global`]) collects process-wide pipeline metrics, while
/// subsystems that need isolation (e.g. one HTTP server per test) hold
/// their own.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Get-or-register in one of the registry's maps: read-lock fast path,
/// write lock only on first registration.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().expect("registry lock").get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(
        w.entry(name.to_string())
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl Registry {
    /// New, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`. The returned handle records
    /// without touching the registry again.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Convenience: add `by` to counter `name` (read-lock fast path).
    pub fn inc(&self, name: &str, by: u64) {
        self.counter(name).add(by);
    }

    /// Convenience: record `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Current value of counter `name` (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("registry lock")
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry. Pipeline stages (DASC, MapReduce, the
/// serving engine) record here; exporters merge it into their output.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("hits");
        c.inc();
        c.add(4);
        assert_eq!(r.counter_value("hits"), 5);
        assert_eq!(r.counter_value("misses"), 0);

        let g = r.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn handles_are_interned() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_edge(0), 2);
        assert_eq!(bucket_geometric_mid(0), 1);
        assert_eq!(bucket_geometric_mid(3), 11); // [8,16) → 11.3
        assert_eq!(bucket_geometric_mid(13), 11585); // [8192,16384)
    }

    #[test]
    fn percentile_uses_geometric_midpoint() {
        let h = Histogram::new();
        // 99 fast (~8) and one slow (~8192) observation.
        for _ in 0..99 {
            h.record(8);
        }
        h.record(8192);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.50), 11);
        assert_eq!(h.percentile(0.99), 11);
        assert_eq!(h.percentile(1.0), 11585);
        assert!((h.mean() - (99.0 * 8.0 + 8192.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero_for_every_quantile() {
        // The documented contract: with no observations there is no
        // bucket to estimate from, so every q — including the q=1.0
        // maximum — reports 0 rather than any bucket midpoint.
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(q), 0, "q={q}");
        }
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn concurrent_histogram_hammer_preserves_invariants() {
        // Multi-thread hammer: every recorded observation must be
        // accounted for in count, sum, and the bucket totals.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = &h;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Mix of magnitudes across threads.
                        h.record((i % 1000) + t);
                    }
                });
            }
        });
        let n = THREADS * PER_THREAD;
        assert_eq!(h.count(), n);
        let expected_sum: u64 = (0..THREADS)
            .map(|t| (0..PER_THREAD).map(|i| (i % 1000) + t).sum::<u64>())
            .sum();
        assert_eq!(h.sum(), expected_sum);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().sum::<u64>(), n);
        assert_eq!(snap.cumulative()[HISTOGRAM_BUCKETS - 1], n);
        // p100 must sit in the bucket of the largest value (1006).
        assert_eq!(h.percentile(1.0), bucket_geometric_mid(bucket_index(1006)));
    }

    #[test]
    fn concurrent_registry_registration() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.inc("hits", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter_value("hits"), 8000);
    }

    #[test]
    fn snapshot_merge_is_additive() {
        let a = Registry::new();
        a.inc("shared", 1);
        a.inc("only_a", 2);
        a.observe("lat", 5);
        let b = Registry::new();
        b.inc("shared", 10);
        b.observe("lat", 300);
        b.observe("only_b_lat", 7);
        let merged = a.snapshot().merge(b.snapshot());
        assert_eq!(merged.counters["shared"], 11);
        assert_eq!(merged.counters["only_a"], 2);
        let lat = &merged.histograms["lat"];
        assert_eq!(lat.count, 2);
        assert_eq!(lat.sum, 305);
        assert_eq!(lat.buckets[bucket_index(5)], 1);
        assert_eq!(lat.buckets[bucket_index(300)], 1);
        assert_eq!(merged.histograms["only_b_lat"].count, 1);
    }

    #[test]
    fn histogram_merge_from_overlapping_buckets() {
        let a = Histogram::new();
        a.record(5);
        a.record(6);
        let b = Histogram::new();
        b.record(7);
        let mut snap = a.snapshot();
        snap.merge_from(&b.snapshot());
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 18);
        assert_eq!(snap.buckets[bucket_index(5)], 3);
    }

    #[test]
    fn labeled_injects_into_bare_and_labeled_names() {
        assert_eq!(labeled("x_total", "worker", "w1"), "x_total{worker=\"w1\"}");
        assert_eq!(
            labeled("x_total{endpoint=\"assign\"}", "worker", "w1"),
            "x_total{endpoint=\"assign\",worker=\"w1\"}"
        );
        // Values are escaped per the Prometheus text format.
        assert_eq!(
            labeled("x", "worker", "a\"b\\c"),
            "x{worker=\"a\\\"b\\\\c\"}"
        );
    }

    #[test]
    fn with_label_rekeys_every_series() {
        let r = Registry::new();
        r.inc("hits", 3);
        r.gauge("depth").set(-2);
        r.observe("lat{endpoint=\"x\"}", 9);
        let snap = r.snapshot().with_label("worker", "w7");
        assert_eq!(snap.counters["hits{worker=\"w7\"}"], 3);
        assert_eq!(snap.gauges["depth{worker=\"w7\"}"], -2);
        assert_eq!(
            snap.histograms["lat{endpoint=\"x\",worker=\"w7\"}"].count,
            1
        );
    }

    #[test]
    fn global_registry_is_shared() {
        global().inc("obs.test.global_counter", 3);
        assert!(global().counter_value("obs.test.global_counter") >= 3);
    }
}
