//! Mapper / reducer abstractions, mirroring Hadoop's `Mapper` and
//! `Reducer` interfaces (Algorithms 1 and 2 in the paper implement these
//! for the LSH signature stage).

use std::hash::Hash;

/// Emits intermediate `(key, value)` pairs from one input record.
///
/// A mapper must be `Sync`: the engine shares one instance across map
/// tasks, exactly as one Hadoop mapper class is instantiated per JVM.
pub trait Mapper: Sync {
    /// Input key type (e.g. the point index).
    type InKey: Send;
    /// Input value type (e.g. the feature vector).
    type InValue: Send;
    /// Intermediate key (e.g. the LSH signature).
    type OutKey: Clone + Ord + Hash + Send;
    /// Intermediate value (e.g. the point index).
    type OutValue: Send;

    /// Process one record, emitting any number of intermediate pairs.
    fn map(
        &self,
        key: Self::InKey,
        value: Self::InValue,
        emit: &mut dyn FnMut(Self::OutKey, Self::OutValue),
    );
}

/// Folds all values that share one intermediate key into output records.
pub trait Reducer: Sync {
    /// Intermediate key type (matches the mapper's `OutKey`).
    type Key: Send;
    /// Intermediate value type (matches the mapper's `OutValue`).
    type Value: Send;
    /// Final output record type.
    type Out: Send;

    /// Process one key group.
    fn reduce(&self, key: Self::Key, values: Vec<Self::Value>, emit: &mut dyn FnMut(Self::Out));
}

/// Adapter turning a closure into a [`Mapper`].
///
/// ```
/// use dasc_mapreduce::{FnMapper, Mapper};
/// let m = FnMapper::new(|k: usize, v: f64, emit: &mut dyn FnMut(usize, f64)| {
///     emit(k % 2, v);
/// });
/// let mut out = Vec::new();
/// m.map(3, 1.5, &mut |k, v| out.push((k, v)));
/// assert_eq!(out, vec![(1, 1.5)]);
/// ```
pub struct FnMapper<F, IK, IV, OK, OV> {
    f: F,
    #[allow(clippy::type_complexity)] // zero-sized variance marker
    _marker: std::marker::PhantomData<fn(IK, IV) -> (OK, OV)>,
}

impl<F, IK, IV, OK, OV> FnMapper<F, IK, IV, OK, OV>
where
    F: Fn(IK, IV, &mut dyn FnMut(OK, OV)) + Sync,
{
    /// Wrap a closure as a mapper.
    pub fn new(f: F) -> Self {
        Self {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<F, IK, IV, OK, OV> Mapper for FnMapper<F, IK, IV, OK, OV>
where
    F: Fn(IK, IV, &mut dyn FnMut(OK, OV)) + Sync,
    IK: Send,
    IV: Send,
    OK: Clone + Ord + Hash + Send,
    OV: Send,
{
    type InKey = IK;
    type InValue = IV;
    type OutKey = OK;
    type OutValue = OV;

    fn map(&self, key: IK, value: IV, emit: &mut dyn FnMut(OK, OV)) {
        (self.f)(key, value, emit)
    }
}

/// Adapter turning a closure into a [`Reducer`].
pub struct FnReducer<F, K, V, O> {
    f: F,
    _marker: std::marker::PhantomData<fn(K, V) -> O>,
}

impl<F, K, V, O> FnReducer<F, K, V, O>
where
    F: Fn(K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    /// Wrap a closure as a reducer.
    pub fn new(f: F) -> Self {
        Self {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<F, K, V, O> Reducer for FnReducer<F, K, V, O>
where
    F: Fn(K, Vec<V>, &mut dyn FnMut(O)) + Sync,
    K: Send,
    V: Send,
    O: Send,
{
    type Key = K;
    type Value = V;
    type Out = O;

    fn reduce(&self, key: K, values: Vec<V>, emit: &mut dyn FnMut(O)) {
        (self.f)(key, values, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_mapper_emits_multiple() {
        let m = FnMapper::new(|_k: usize, v: u32, emit: &mut dyn FnMut(u32, u32)| {
            emit(v, v);
            emit(v + 1, v);
        });
        let mut out = Vec::new();
        m.map(0, 9, &mut |k, v| out.push((k, v)));
        assert_eq!(out, vec![(9, 9), (10, 9)]);
    }

    #[test]
    fn fn_reducer_folds_group() {
        let r = FnReducer::new(
            |k: String, vs: Vec<u32>, emit: &mut dyn FnMut((String, u32))| {
                emit((k, vs.iter().sum()));
            },
        );
        let mut out = Vec::new();
        r.reduce("a".into(), vec![1, 2, 3], &mut |o| out.push(o));
        assert_eq!(out, vec![("a".to_string(), 6)]);
    }
}
