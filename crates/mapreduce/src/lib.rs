//! In-process MapReduce engine with a simulated cluster topology.
//!
//! The DASC paper runs on Hadoop 0.20.2 — a five-node lab cluster and
//! Amazon Elastic MapReduce with 16/32/64 nodes (Tables 2–3). This crate
//! is the substitute substrate: a faithful, miniature MapReduce that
//!
//! * executes real map → shuffle (partition + sort) → reduce phases on
//!   real threads, bounded by the configured `nodes × slots` exactly the
//!   way Hadoop task trackers bound concurrent tasks;
//! * keeps per-task timing so the [`sim`] scheduler can replay the same
//!   task bag on a *different* cluster size and report the makespan — the
//!   mechanism behind the Table 3 elasticity experiment;
//! * provides an in-memory replicated block store ([`dfs`]) standing in
//!   for HDFS/S3.
//!
//! Determinism: the shuffle uses a seeded FNV-style partitioner and a
//! stable sort, so a job's output is a pure function of its input and
//! configuration regardless of thread interleaving.

pub mod config;
pub mod counters;
pub mod dfs;
pub mod engine;
pub mod job;
pub mod jobflow;
pub mod partition;
pub mod sim;
pub mod stats;

pub use config::ClusterConfig;
pub use counters::Counters;
pub use dfs::{Dfs, DfsError};
pub use engine::{reduce_groups, run_job, run_map_combine, run_map_only, split_ranges, JobOutput};
pub use job::{FnMapper, FnReducer, Mapper, Reducer};
pub use jobflow::{JobFlow, StepReport};
pub use partition::hash_partition;
pub use sim::{
    simulate_makespan, simulate_on_cluster, simulate_with_stragglers, simulate_with_stragglers_on,
    ScheduleReport, StragglerModel,
};
pub use stats::JobStats;
