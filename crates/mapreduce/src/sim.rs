//! Deterministic task-bag scheduler for elasticity experiments.
//!
//! The Table 3 experiment asks: given the *same* work, how does wall time
//! change with 16, 32 or 64 nodes? The engine records every task's
//! duration; this module replays a task bag onto an arbitrary slot count
//! using the greedy longest-processing-time (LPT) list-scheduling rule —
//! the same earliest-available-slot behaviour a Hadoop job tracker
//! exhibits once all tasks are queued.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::config::ClusterConfig;
use crate::stats::JobStats;

/// Outcome of simulating a job's task bag on a particular cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Makespan of the map phase.
    pub map_makespan: Duration,
    /// Makespan of the reduce phase (starts after all maps finish, as in
    /// a barrier shuffle).
    pub reduce_makespan: Duration,
    /// Total simulated job time (map + shuffle barrier + reduce).
    pub total: Duration,
    /// Cluster size used.
    pub nodes: usize,
}

/// Schedule a bag of independent task durations onto `slots` parallel
/// slots with the LPT heuristic; returns the makespan.
///
/// # Panics
/// Panics if `slots == 0`.
pub fn simulate_makespan(durations: &[Duration], slots: usize) -> Duration {
    assert!(slots > 0, "simulate_makespan: zero slots");
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted: Vec<Duration> = durations.to_vec();
    sorted.sort_unstable_by_key(|d| Reverse(*d));
    // Min-heap of slot finish times.
    let mut heap: BinaryHeap<Reverse<Duration>> = (0..slots.min(sorted.len()))
        .map(|_| Reverse(Duration::ZERO))
        .collect();
    for d in sorted {
        let Reverse(earliest) = heap.pop().expect("heap nonempty");
        heap.push(Reverse(earliest + d));
    }
    heap.into_iter()
        .map(|Reverse(t)| t)
        .max()
        .unwrap_or(Duration::ZERO)
}

/// First-order straggler model for the simulator.
///
/// Hadoop's speculative execution launches a backup copy of a task that
/// runs well past the normal duration; the task completes when either
/// copy does. At this simulator's level of abstraction:
///
/// * a straggling task's duration is multiplied by `slowdown`;
/// * with speculation, the effective duration is capped at `2d` (the
///   backup launches once the normal duration `d` has elapsed and takes
///   another `d`), and the backup occupies a slot for `d` — modeled as
///   an extra task in the bag.
#[derive(Clone, Copy, Debug)]
pub struct StragglerModel {
    /// Fraction of tasks that straggle (deterministically chosen by
    /// position hash + seed).
    pub fraction: f64,
    /// Duration multiplier for stragglers (≥ 1).
    pub slowdown: f64,
    /// Selection seed.
    pub seed: u64,
}

impl StragglerModel {
    /// Whether task `i` straggles under this model.
    fn straggles(&self, i: usize) -> bool {
        // Cheap deterministic spread: golden-ratio hash of (i, seed).
        let h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seed)
            .rotate_left(17)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (h >> 40) as f64 / (1u64 << 24) as f64 <= self.fraction
    }
}

/// Schedule a task bag with stragglers, optionally with speculative
/// execution. The speculation cap is the
/// [`ClusterConfig::emr_default`] knob (`2×` the normal duration); use
/// [`simulate_with_stragglers_on`] to simulate under a tuned cluster.
///
/// # Panics
/// Panics if `slots == 0`, `fraction ∉ [0, 1]`, or `slowdown < 1`.
pub fn simulate_with_stragglers(
    durations: &[Duration],
    slots: usize,
    model: &StragglerModel,
    speculative: bool,
) -> Duration {
    simulate_with_stragglers_capped(
        durations,
        slots,
        model,
        speculative,
        ClusterConfig::emr_default().speculation_cap,
    )
}

/// [`simulate_with_stragglers`] on a specific cluster: slot count and
/// speculation cap both come from `config`, so the simulator shares the
/// engine's and `dasc-dist`'s knob set.
///
/// # Panics
/// Panics if `config` admits zero map slots, `fraction ∉ [0, 1]`, or
/// `slowdown < 1`.
pub fn simulate_with_stragglers_on(
    durations: &[Duration],
    config: &ClusterConfig,
    model: &StragglerModel,
    speculative: bool,
) -> Duration {
    simulate_with_stragglers_capped(
        durations,
        config.total_map_slots(),
        model,
        speculative,
        config.speculation_cap,
    )
}

fn simulate_with_stragglers_capped(
    durations: &[Duration],
    slots: usize,
    model: &StragglerModel,
    speculative: bool,
    speculation_cap: f64,
) -> Duration {
    assert!(
        (0.0..=1.0).contains(&model.fraction),
        "straggler fraction must be in [0, 1]"
    );
    assert!(model.slowdown >= 1.0, "slowdown must be at least 1");
    assert!(speculation_cap >= 1.0, "speculation cap must be at least 1");
    let mut bag: Vec<Duration> = Vec::with_capacity(durations.len() * 2);
    for (i, &d) in durations.iter().enumerate() {
        if model.straggles(i) {
            let slow = d.mul_f64(model.slowdown);
            if speculative {
                // Completion capped at `speculation_cap × d` (the backup
                // launches at d and the cap bounds the race); the backup
                // consumes a slot for d.
                bag.push(slow.min(d.mul_f64(speculation_cap)));
                bag.push(d);
            } else {
                bag.push(slow);
            }
        } else {
            bag.push(d);
        }
    }
    simulate_makespan(&bag, slots)
}

/// Replay the task bag recorded in `stats` on `config`'s slot counts.
pub fn simulate_on_cluster(stats: &JobStats, config: &ClusterConfig) -> ScheduleReport {
    let map_makespan = simulate_makespan(&stats.map_task_durations, config.total_map_slots());
    let reduce_makespan =
        simulate_makespan(&stats.reduce_task_durations, config.total_reduce_slots());
    ScheduleReport {
        map_makespan,
        reduce_makespan,
        total: map_makespan + reduce_makespan,
        nodes: config.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn single_slot_sums() {
        let d = vec![ms(1), ms(2), ms(3)];
        assert_eq!(simulate_makespan(&d, 1), ms(6));
    }

    #[test]
    fn enough_slots_takes_max() {
        let d = vec![ms(5), ms(2), ms(9)];
        assert_eq!(simulate_makespan(&d, 3), ms(9));
        assert_eq!(simulate_makespan(&d, 100), ms(9));
    }

    #[test]
    fn lpt_balances_two_slots() {
        // {9, 5, 2}: LPT gives slots {9} and {5,2} → makespan 9.
        let d = vec![ms(9), ms(5), ms(2)];
        assert_eq!(simulate_makespan(&d, 2), ms(9));
        // {4,3,3,2}: LPT gives {4,2} and {3,3} → makespan 6.
        let d = vec![ms(4), ms(3), ms(3), ms(2)];
        assert_eq!(simulate_makespan(&d, 2), ms(6));
    }

    #[test]
    fn empty_bag_is_zero() {
        assert_eq!(simulate_makespan(&[], 4), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero slots")]
    fn zero_slots_panics() {
        simulate_makespan(&[ms(1)], 0);
    }

    #[test]
    fn doubling_nodes_roughly_halves_uniform_bag() {
        // 256 equal tasks: exactly inverse-linear scaling — the Table 3
        // shape.
        let bag: Vec<Duration> = (0..256).map(|_| ms(10)).collect();
        let t16 = simulate_makespan(&bag, ClusterConfig::emr(16).total_map_slots());
        let t32 = simulate_makespan(&bag, ClusterConfig::emr(32).total_map_slots());
        let t64 = simulate_makespan(&bag, ClusterConfig::emr(64).total_map_slots());
        assert_eq!(t16, ms(40));
        assert_eq!(t32, ms(20));
        assert_eq!(t64, ms(10));
    }

    #[test]
    fn simulate_on_cluster_adds_phases() {
        let stats = JobStats {
            map_task_durations: vec![ms(10); 8],
            reduce_task_durations: vec![ms(4); 4],
            ..Default::default()
        };
        let rep = simulate_on_cluster(&stats, &ClusterConfig::emr(1));
        // 8 maps on 4 slots = 20ms; 4 reduces on 2 slots = 8ms.
        assert_eq!(rep.map_makespan, ms(20));
        assert_eq!(rep.reduce_makespan, ms(8));
        assert_eq!(rep.total, ms(28));
        assert_eq!(rep.nodes, 1);
    }

    #[test]
    fn stragglers_inflate_makespan() {
        let bag: Vec<Duration> = (0..64).map(|_| ms(10)).collect();
        let clean = simulate_makespan(&bag, 8);
        let model = StragglerModel {
            fraction: 0.2,
            slowdown: 10.0,
            seed: 1,
        };
        let slow = simulate_with_stragglers(&bag, 8, &model, false);
        assert!(slow > clean, "stragglers had no effect");
    }

    #[test]
    fn speculation_bounds_straggler_damage() {
        let bag: Vec<Duration> = (0..64).map(|_| ms(10)).collect();
        let model = StragglerModel {
            fraction: 0.2,
            slowdown: 10.0,
            seed: 1,
        };
        let without = simulate_with_stragglers(&bag, 8, &model, false);
        let with = simulate_with_stragglers(&bag, 8, &model, true);
        assert!(with < without, "speculation did not help");
        // Speculation caps every task at 2× normal: makespan within ~2×
        // of the clean schedule plus backup load.
        let clean = simulate_makespan(&bag, 8);
        assert!(with <= clean.mul_f64(2.5), "with={with:?} clean={clean:?}");
    }

    #[test]
    fn zero_fraction_is_a_noop() {
        let bag: Vec<Duration> = (1..20).map(ms).collect();
        let model = StragglerModel {
            fraction: 0.0,
            slowdown: 100.0,
            seed: 3,
        };
        assert_eq!(
            simulate_with_stragglers(&bag, 4, &model, false),
            simulate_makespan(&bag, 4)
        );
        assert_eq!(
            simulate_with_stragglers(&bag, 4, &model, true),
            simulate_makespan(&bag, 4)
        );
    }

    #[test]
    fn default_cap_matches_emr_default_knob() {
        // The convenience wrapper and the config-driven variant agree
        // whenever the config is the canonical default.
        let bag: Vec<Duration> = (0..64).map(|_| ms(10)).collect();
        let model = StragglerModel {
            fraction: 0.2,
            slowdown: 10.0,
            seed: 1,
        };
        let cfg = ClusterConfig::emr_default();
        assert_eq!(
            simulate_with_stragglers(&bag, cfg.total_map_slots(), &model, true),
            simulate_with_stragglers_on(&bag, &cfg, &model, true),
        );
    }

    #[test]
    fn looser_cap_admits_longer_stragglers() {
        let bag: Vec<Duration> = (0..64).map(|_| ms(10)).collect();
        let model = StragglerModel {
            fraction: 0.2,
            slowdown: 10.0,
            seed: 1,
        };
        let mut tight = ClusterConfig::emr(1);
        tight.speculation_cap = 1.0;
        let mut loose = ClusterConfig::emr(1);
        loose.speculation_cap = 8.0;
        let t = simulate_with_stragglers_on(&bag, &tight, &model, true);
        let l = simulate_with_stragglers_on(&bag, &loose, &model, true);
        assert!(t <= l, "tight cap {t:?} should not exceed loose cap {l:?}");
    }

    #[test]
    fn straggler_selection_is_deterministic() {
        let bag: Vec<Duration> = (0..50).map(|_| ms(7)).collect();
        let model = StragglerModel {
            fraction: 0.3,
            slowdown: 4.0,
            seed: 9,
        };
        let a = simulate_with_stragglers(&bag, 5, &model, true);
        let b = simulate_with_stragglers(&bag, 5, &model, true);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn sub_one_slowdown_panics() {
        let model = StragglerModel {
            fraction: 0.1,
            slowdown: 0.5,
            seed: 0,
        };
        simulate_with_stragglers(&[ms(1)], 1, &model, false);
    }

    #[test]
    fn makespan_monotonic_in_slots() {
        let bag: Vec<Duration> = (1..40).map(ms).collect();
        let mut last = Duration::MAX;
        for slots in 1..20 {
            let m = simulate_makespan(&bag, slots);
            assert!(m <= last, "makespan increased with more slots");
            last = m;
        }
    }
}
