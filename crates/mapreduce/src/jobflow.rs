//! EMR-style job flows.
//!
//! The paper runs DASC as an Elastic MapReduce *job flow*: "a collection
//! of processing steps that EMR runs on a specified dataset … Our job
//! flow is comprised of several steps", with intermediate results staged
//! on S3 between steps. [`JobFlow`] reproduces that structure: named
//! steps execute in order against a shared [`Dfs`] and cluster
//! configuration, and each step's [`JobStats`] is retained so the whole
//! flow can be replayed on other cluster sizes.

use std::time::Duration;

use crate::config::ClusterConfig;
use crate::dfs::Dfs;
use crate::sim::simulate_on_cluster;
use crate::stats::JobStats;

/// Statistics of one completed step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step name (shown in reports).
    pub name: String,
    /// The step's job statistics.
    pub stats: JobStats,
}

/// An ordered sequence of MapReduce steps sharing storage and cluster.
pub struct JobFlow {
    dfs: Dfs,
    cluster: ClusterConfig,
    steps: Vec<StepReport>,
}

impl JobFlow {
    /// Start a flow on a fresh DFS for the given cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            dfs: Dfs::new(cluster.clone()),
            cluster,
            steps: Vec::new(),
        }
    }

    /// The flow's storage layer (the S3 stand-in).
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The cluster the flow executes on.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Execute one named step. The closure receives the shared DFS and
    /// cluster configuration and returns its output value plus the
    /// step's [`JobStats`].
    pub fn step<T>(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&Dfs, &ClusterConfig) -> (T, JobStats),
    ) -> T {
        let name = name.into();
        let step_span = dasc_obs::tracer().span(&format!("mr.step.{name}"));
        let (out, stats) = f(&self.dfs, &self.cluster);
        step_span.finish();
        self.steps.push(StepReport { name, stats });
        out
    }

    /// Reports for the steps executed so far, in order.
    pub fn reports(&self) -> &[StepReport] {
        &self.steps
    }

    /// Sum of the steps' measured wall times.
    pub fn total_wall_time(&self) -> Duration {
        self.steps.iter().map(|s| s.stats.wall_time).sum()
    }

    /// Replay every step's task bag on another cluster size (steps are
    /// serialized, as EMR steps are).
    pub fn simulate_total(&self, cluster: &ClusterConfig) -> Duration {
        self.steps
            .iter()
            .map(|s| simulate_on_cluster(&s.stats, cluster).total)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_job, FnMapper, FnReducer};

    fn word_count_stats(cluster: &ClusterConfig, words: Vec<&'static str>) -> JobStats {
        let mapper = FnMapper::new(
            |_k: usize, w: &'static str, emit: &mut dyn FnMut(String, usize)| {
                emit(w.to_string(), 1);
            },
        );
        let reducer = FnReducer::new(
            |k: String, vs: Vec<usize>, emit: &mut dyn FnMut((String, usize))| {
                emit((k, vs.len()));
            },
        );
        let inputs: Vec<(usize, &'static str)> = words.into_iter().enumerate().collect();
        run_job(&mapper, &reducer, inputs, cluster).stats
    }

    #[test]
    fn steps_run_in_order_and_share_the_dfs() {
        let mut flow = JobFlow::new(ClusterConfig::single_node());

        let n = flow.step("ingest", |dfs, _cluster| {
            dfs.put("/in/data", vec![1, 2, 3]).unwrap();
            (3usize, JobStats::default())
        });
        assert_eq!(n, 3);

        let read_back = flow.step("process", |dfs, cluster| {
            let data = dfs.get("/in/data").unwrap();
            let stats = word_count_stats(cluster, vec!["a", "b", "a"]);
            dfs.put("/out/result", data).unwrap();
            (dfs.list("/").len(), stats)
        });
        assert_eq!(read_back, 2);

        assert_eq!(flow.reports().len(), 2);
        assert_eq!(flow.reports()[0].name, "ingest");
        assert_eq!(flow.reports()[1].name, "process");
        assert!(flow.dfs().exists("/out/result"));
    }

    #[test]
    fn simulation_aggregates_all_steps() {
        let mut flow = JobFlow::new(ClusterConfig::emr(2));
        for i in 0..3 {
            flow.step(format!("step-{i}"), |_dfs, cluster| {
                ((), word_count_stats(cluster, vec!["x", "y", "z", "x"]))
            });
        }
        let t1 = flow.simulate_total(&ClusterConfig::emr(1));
        let t64 = flow.simulate_total(&ClusterConfig::emr(64));
        assert!(t64 <= t1);
        assert!(flow.total_wall_time() > Duration::ZERO);
    }

    #[test]
    fn empty_flow_is_trivial() {
        let flow = JobFlow::new(ClusterConfig::single_node());
        assert!(flow.reports().is_empty());
        assert_eq!(flow.total_wall_time(), Duration::ZERO);
        assert_eq!(flow.simulate_total(&ClusterConfig::emr(4)), Duration::ZERO);
    }
}
