//! In-memory replicated block store — the HDFS/S3 stand-in.
//!
//! The paper stages everything through storage: input data and the
//! per-bucket intermediate files live on S3/HDFS between the LSH stage
//! and the clustering stage. This module reproduces the storage-layer
//! semantics that matter to the experiments: block splitting, replicated
//! placement across nodes, and per-node usage accounting.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::config::ClusterConfig;

/// Errors from DFS operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DfsError {
    /// Path not present in the namespace.
    NotFound(String),
    /// Path already exists (HDFS files are write-once).
    AlreadyExists(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs: path not found: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "dfs: path already exists: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

#[derive(Clone, Debug)]
struct BlockInfo {
    /// Nodes holding a replica of this block.
    replicas: Vec<usize>,
    len: usize,
}

#[derive(Debug)]
struct FileEntry {
    data: Vec<u8>,
    blocks: Vec<BlockInfo>,
}

#[derive(Default, Debug)]
struct Namespace {
    files: HashMap<String, FileEntry>,
    /// Bytes stored per node (including replicas).
    node_bytes: Vec<usize>,
    /// Round-robin cursor for block placement.
    cursor: usize,
}

/// A miniature write-once distributed file system.
///
/// Thread-safe: mappers and reducers may write concurrently.
pub struct Dfs {
    config: ClusterConfig,
    ns: RwLock<Namespace>,
}

impl Dfs {
    /// Create an empty DFS for the given cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let nodes = config.nodes;
        Self {
            config,
            ns: RwLock::new(Namespace {
                files: HashMap::new(),
                node_bytes: vec![0; nodes],
                cursor: 0,
            }),
        }
    }

    /// Write a file. Fails if the path already exists (write-once).
    pub fn put(&self, path: &str, data: Vec<u8>) -> Result<(), DfsError> {
        let mut ns = self.ns.write();
        if ns.files.contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        let block_size = self.config.block_size.max(1);
        let replication = self.config.replication.max(1).min(self.config.nodes);
        let mut blocks = Vec::new();
        let mut remaining = data.len();
        // Empty files still get one empty block so every file has
        // placement metadata.
        loop {
            let len = remaining.min(block_size);
            let start = ns.cursor;
            let replicas: Vec<usize> = (0..replication)
                .map(|r| (start + r) % self.config.nodes)
                .collect();
            ns.cursor = (ns.cursor + 1) % self.config.nodes;
            for &node in &replicas {
                ns.node_bytes[node] += len;
            }
            blocks.push(BlockInfo { replicas, len });
            remaining -= len;
            if remaining == 0 {
                break;
            }
        }
        ns.files
            .insert(path.to_string(), FileEntry { data, blocks });
        Ok(())
    }

    /// Read a file's full contents.
    pub fn get(&self, path: &str) -> Result<Vec<u8>, DfsError> {
        let ns = self.ns.read();
        ns.files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Delete a file, releasing its replica space.
    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        let mut ns = self.ns.write();
        let entry = ns
            .files
            .remove(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        for b in &entry.blocks {
            for &node in &b.replicas {
                ns.node_bytes[node] -= b.len;
            }
        }
        Ok(())
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.ns.read().files.contains_key(path)
    }

    /// Paths under a prefix, sorted (the `ls` used to enumerate bucket
    /// files between stages).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let ns = self.ns.read();
        let mut v: Vec<String> = ns
            .files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Number of blocks a file occupies.
    pub fn block_count(&self, path: &str) -> Result<usize, DfsError> {
        let ns = self.ns.read();
        ns.files
            .get(path)
            .map(|f| f.blocks.len())
            .ok_or_else(|| DfsError::NotFound(path.to_string()))
    }

    /// Bytes stored on each node, replicas included.
    pub fn node_usage(&self) -> Vec<usize> {
        self.ns.read().node_bytes.clone()
    }

    /// Total stored bytes across the cluster (replicas included).
    pub fn total_stored_bytes(&self) -> usize {
        self.ns.read().node_bytes.iter().sum()
    }

    /// Logical bytes (each file counted once, no replication).
    pub fn logical_bytes(&self) -> usize {
        self.ns.read().files.values().map(|f| f.data.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> ClusterConfig {
        let mut c = ClusterConfig::emr(4);
        c.block_size = 10;
        c
    }

    #[test]
    fn put_get_roundtrip() {
        let dfs = Dfs::new(small_cluster());
        dfs.put("/data/in", b"hello world".to_vec()).unwrap();
        assert_eq!(dfs.get("/data/in").unwrap(), b"hello world");
    }

    #[test]
    fn write_once_semantics() {
        let dfs = Dfs::new(small_cluster());
        dfs.put("/a", vec![1]).unwrap();
        assert_eq!(
            dfs.put("/a", vec![2]),
            Err(DfsError::AlreadyExists("/a".into()))
        );
    }

    #[test]
    fn missing_path_errors() {
        let dfs = Dfs::new(small_cluster());
        assert_eq!(dfs.get("/nope"), Err(DfsError::NotFound("/nope".into())));
        assert_eq!(dfs.delete("/nope"), Err(DfsError::NotFound("/nope".into())));
    }

    #[test]
    fn blocks_split_at_block_size() {
        let dfs = Dfs::new(small_cluster());
        dfs.put("/big", vec![0u8; 25]).unwrap();
        assert_eq!(dfs.block_count("/big").unwrap(), 3);
        dfs.put("/exact", vec![0u8; 10]).unwrap();
        assert_eq!(dfs.block_count("/exact").unwrap(), 1);
        dfs.put("/empty", vec![]).unwrap();
        assert_eq!(dfs.block_count("/empty").unwrap(), 1);
    }

    #[test]
    fn replication_multiplies_storage() {
        let dfs = Dfs::new(small_cluster()); // replication = 3
        dfs.put("/f", vec![0u8; 10]).unwrap();
        assert_eq!(dfs.logical_bytes(), 10);
        assert_eq!(dfs.total_stored_bytes(), 30);
    }

    #[test]
    fn delete_releases_space() {
        let dfs = Dfs::new(small_cluster());
        dfs.put("/f", vec![0u8; 20]).unwrap();
        assert!(dfs.total_stored_bytes() > 0);
        dfs.delete("/f").unwrap();
        assert_eq!(dfs.total_stored_bytes(), 0);
        assert!(!dfs.exists("/f"));
    }

    #[test]
    fn placement_spreads_across_nodes() {
        let dfs = Dfs::new(small_cluster());
        for i in 0..8 {
            dfs.put(&format!("/f{i}"), vec![0u8; 10]).unwrap();
        }
        let usage = dfs.node_usage();
        assert_eq!(usage.len(), 4);
        // Round-robin placement with replication 3 on 4 nodes: all nodes used.
        assert!(usage.iter().all(|&b| b > 0), "unbalanced: {usage:?}");
    }

    #[test]
    fn list_filters_by_prefix_sorted() {
        let dfs = Dfs::new(small_cluster());
        dfs.put("/buckets/b2", vec![]).unwrap();
        dfs.put("/buckets/b1", vec![]).unwrap();
        dfs.put("/out/x", vec![]).unwrap();
        assert_eq!(
            dfs.list("/buckets/"),
            vec!["/buckets/b1".to_string(), "/buckets/b2".to_string()]
        );
    }

    #[test]
    fn concurrent_writers() {
        let dfs = std::sync::Arc::new(Dfs::new(small_cluster()));
        crossbeam::thread::scope(|s| {
            for t in 0..8 {
                let dfs = dfs.clone();
                s.spawn(move |_| {
                    for i in 0..50 {
                        dfs.put(&format!("/t{t}/f{i}"), vec![0u8; 5]).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(dfs.list("/t").len(), 400);
        assert_eq!(dfs.logical_bytes(), 400 * 5);
    }
}
