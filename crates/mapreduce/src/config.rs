//! Cluster topology and Hadoop-style tuning parameters (paper Table 2).

use std::time::Duration;

/// Configuration of the (simulated or real) Hadoop-style cluster a job
/// runs on.
///
/// Field defaults mirror Table 2 of the paper, which lists the Elastic
/// MapReduce setup: 4 map slots and 2 reduce slots per task tracker and a
/// DFS replication factor of 3. Heap sizes are carried for memory
/// accounting parity with the paper's setup, not enforced.
///
/// The same struct is the single knob set for all three executors: the
/// in-process engine (`engine.rs`), the LPT simulator (`sim.rs`), and
/// the multi-process `dasc-dist` coordinator/worker runtime read their
/// retry budgets, split sizing, and timeouts from here, so tuning one
/// place tunes them all.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker nodes (task trackers / data nodes).
    pub nodes: usize,
    /// Concurrent map tasks per node ("Maximum map tasks in tasktracker").
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// DFS block replication factor.
    pub replication: usize,
    /// DFS block size in bytes (64 MB in Hadoop 0.20; configurable so
    /// tests can exercise multi-block files cheaply).
    pub block_size: usize,
    /// Records per input split — the record-level analogue of Hadoop's
    /// block-driven split sizing, so map-task count grows with data
    /// volume. A floor of [`ClusterConfig::map_waves_per_slot`] waves per
    /// slot still applies.
    pub records_per_split: usize,
    /// Minimum map waves per slot: small inputs are still cut into at
    /// least `map_waves_per_slot × total_map_slots` tasks so every slot
    /// sees work and stragglers can be rebalanced (Hadoop folklore's
    /// "aim for a couple of waves of maps").
    pub map_waves_per_slot: usize,
    /// Attempts per task before the job fails (Hadoop's
    /// `mapred.map.max.attempts`, default 4). In the in-process engine a
    /// task attempt "fails" by panicking; in `dasc-dist` it fails by the
    /// worker dying or reporting an error. Both count against this
    /// budget.
    pub max_task_attempts: usize,
    /// Speculative-execution duration cap as a multiple of the normal
    /// task duration: the backup copy launches once the normal duration
    /// elapses, so a straggler completes within `speculation_cap × d`
    /// (Hadoop's behaviour; the simulator's straggler model applies it).
    pub speculation_cap: f64,
    /// Worker → coordinator heartbeat cadence (`dasc-dist`; Hadoop's
    /// tasktracker heartbeat, 3 s at this cluster scale — shrunk here so
    /// localhost jobs detect death fast).
    pub heartbeat_interval: Duration,
    /// How long a worker may go silent before the coordinator declares
    /// it dead and re-queues its in-flight tasks (Hadoop's
    /// `mapred.tasktracker.expiry.interval`).
    pub worker_liveness_timeout: Duration,
    /// RPC connect timeout for `dasc-net` clients.
    pub rpc_connect_timeout: Duration,
    /// RPC read timeout for `dasc-net` clients and servers.
    pub rpc_read_timeout: Duration,
    /// RPC write timeout for `dasc-net` clients.
    pub rpc_write_timeout: Duration,
    /// First delay of the bounded exponential reconnect backoff.
    pub rpc_backoff_base: Duration,
    /// Backoff ceiling for reconnect attempts.
    pub rpc_backoff_max: Duration,
    /// Connection attempts before a `dasc-net` client gives up.
    pub rpc_max_connect_attempts: usize,
    /// Job tracker heap, bytes (Table 2: 768 MB).
    pub jobtracker_heap: usize,
    /// Name node heap, bytes (Table 2: 256 MB).
    pub namenode_heap: usize,
    /// Task tracker heap, bytes (Table 2: 512 MB).
    pub tasktracker_heap: usize,
    /// Data node heap, bytes (Table 2: 256 MB).
    pub datanode_heap: usize,
}

impl ClusterConfig {
    /// The paper's Amazon Elastic MapReduce setup (Table 2) with the
    /// given node count (the paper uses 16, 32 and 64).
    pub fn emr(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        Self {
            nodes,
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            replication: 3.min(nodes),
            block_size: 64 * 1024 * 1024,
            records_per_split: 1024,
            map_waves_per_slot: 2,
            max_task_attempts: 4,
            speculation_cap: 2.0,
            heartbeat_interval: Duration::from_millis(500),
            worker_liveness_timeout: Duration::from_secs(5),
            rpc_connect_timeout: Duration::from_secs(2),
            rpc_read_timeout: Duration::from_secs(10),
            rpc_write_timeout: Duration::from_secs(10),
            rpc_backoff_base: Duration::from_millis(50),
            rpc_backoff_max: Duration::from_secs(2),
            rpc_max_connect_attempts: 8,
            jobtracker_heap: 768 << 20,
            namenode_heap: 256 << 20,
            tasktracker_heap: 512 << 20,
            datanode_heap: 256 << 20,
        }
    }

    /// The paper's five-machine lab cluster (one master, four slaves;
    /// Core2 Duo E6550, 1 GB DRAM). Worker count is the four slaves.
    pub fn local_lab() -> Self {
        let mut c = Self::emr(4);
        c.replication = 3;
        c
    }

    /// Single-node configuration, handy for unit tests.
    pub fn single_node() -> Self {
        Self::emr(1)
    }

    /// The canonical default: the paper's 16-node EMR setup, the
    /// smallest cloud configuration evaluated. [`Default`] delegates
    /// here; the name exists so call sites (and tests pinning the shared
    /// retry/timeout knob set) can say what they mean.
    pub fn emr_default() -> Self {
        Self::emr(16)
    }

    /// Total concurrent map tasks the cluster admits.
    pub fn total_map_slots(&self) -> usize {
        self.nodes * self.map_slots_per_node
    }

    /// Total concurrent reduce tasks the cluster admits.
    pub fn total_reduce_slots(&self) -> usize {
        self.nodes * self.reduce_slots_per_node
    }

    /// Default number of reduce tasks for a job on this cluster
    /// (Hadoop's rule of thumb: ~1× the reduce slot count).
    pub fn default_num_reducers(&self) -> usize {
        self.total_reduce_slots().max(1)
    }

    /// Cap a requested parallelism at what this machine can actually run
    /// concurrently (the engine executes slots as real threads).
    pub(crate) fn effective_threads(&self, slots: usize) -> usize {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        slots.min(host.max(1)).max(1)
    }
}

impl Default for ClusterConfig {
    /// Defaults to [`ClusterConfig::emr_default`] — the 16-node EMR
    /// setup, the smallest cloud configuration evaluated in the paper.
    fn default() -> Self {
        Self::emr_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emr_matches_table2() {
        let c = ClusterConfig::emr(16);
        assert_eq!(c.map_slots_per_node, 4);
        assert_eq!(c.reduce_slots_per_node, 2);
        assert_eq!(c.replication, 3);
        assert_eq!(c.jobtracker_heap, 768 << 20);
        assert_eq!(c.namenode_heap, 256 << 20);
        assert_eq!(c.tasktracker_heap, 512 << 20);
        assert_eq!(c.datanode_heap, 256 << 20);
    }

    #[test]
    fn slot_totals_scale_with_nodes() {
        assert_eq!(ClusterConfig::emr(16).total_map_slots(), 64);
        assert_eq!(ClusterConfig::emr(64).total_map_slots(), 256);
        assert_eq!(ClusterConfig::emr(32).total_reduce_slots(), 64);
    }

    #[test]
    fn replication_capped_by_nodes() {
        assert_eq!(ClusterConfig::emr(1).replication, 1);
        assert_eq!(ClusterConfig::emr(2).replication, 2);
        assert_eq!(ClusterConfig::emr(5).replication, 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        ClusterConfig::emr(0);
    }

    #[test]
    fn effective_threads_at_least_one() {
        let c = ClusterConfig::single_node();
        assert!(c.effective_threads(0) >= 1);
        assert!(c.effective_threads(1000) >= 1);
    }

    #[test]
    fn default_is_emr_default() {
        assert_eq!(ClusterConfig::default(), ClusterConfig::emr_default());
        assert_eq!(ClusterConfig::emr_default(), ClusterConfig::emr(16));
    }

    #[test]
    fn emr_default_pins_the_shared_knob_set() {
        // The knobs hoisted out of engine.rs/sim.rs and consumed by
        // dasc-dist. Anything drifting here silently changes three
        // executors at once, so the defaults are pinned exactly.
        let c = ClusterConfig::emr_default();
        assert_eq!(c.map_waves_per_slot, 2);
        assert_eq!(c.max_task_attempts, 4);
        assert_eq!(c.speculation_cap, 2.0);
        assert_eq!(c.heartbeat_interval, Duration::from_millis(500));
        assert_eq!(c.worker_liveness_timeout, Duration::from_secs(5));
        assert_eq!(c.rpc_connect_timeout, Duration::from_secs(2));
        assert_eq!(c.rpc_read_timeout, Duration::from_secs(10));
        assert_eq!(c.rpc_write_timeout, Duration::from_secs(10));
        assert_eq!(c.rpc_backoff_base, Duration::from_millis(50));
        assert_eq!(c.rpc_backoff_max, Duration::from_secs(2));
        assert_eq!(c.rpc_max_connect_attempts, 8);
    }
}
