//! Cluster topology and Hadoop-style tuning parameters (paper Table 2).

/// Configuration of the (simulated) Hadoop cluster a job runs on.
///
/// Field defaults mirror Table 2 of the paper, which lists the Elastic
/// MapReduce setup: 4 map slots and 2 reduce slots per task tracker and a
/// DFS replication factor of 3. Heap sizes are carried for memory
/// accounting parity with the paper's setup, not enforced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of worker nodes (task trackers / data nodes).
    pub nodes: usize,
    /// Concurrent map tasks per node ("Maximum map tasks in tasktracker").
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// DFS block replication factor.
    pub replication: usize,
    /// DFS block size in bytes (64 MB in Hadoop 0.20; configurable so
    /// tests can exercise multi-block files cheaply).
    pub block_size: usize,
    /// Records per input split — the record-level analogue of Hadoop's
    /// block-driven split sizing, so map-task count grows with data
    /// volume. A floor of two waves per slot still applies.
    pub records_per_split: usize,
    /// Attempts per task before the job fails (Hadoop's
    /// `mapred.map.max.attempts`, default 4). A task attempt "fails" by
    /// panicking; the engine catches the unwind and reschedules.
    pub max_task_attempts: usize,
    /// Job tracker heap, bytes (Table 2: 768 MB).
    pub jobtracker_heap: usize,
    /// Name node heap, bytes (Table 2: 256 MB).
    pub namenode_heap: usize,
    /// Task tracker heap, bytes (Table 2: 512 MB).
    pub tasktracker_heap: usize,
    /// Data node heap, bytes (Table 2: 256 MB).
    pub datanode_heap: usize,
}

impl ClusterConfig {
    /// The paper's Amazon Elastic MapReduce setup (Table 2) with the
    /// given node count (the paper uses 16, 32 and 64).
    pub fn emr(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        Self {
            nodes,
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            replication: 3.min(nodes),
            block_size: 64 * 1024 * 1024,
            records_per_split: 1024,
            max_task_attempts: 4,
            jobtracker_heap: 768 << 20,
            namenode_heap: 256 << 20,
            tasktracker_heap: 512 << 20,
            datanode_heap: 256 << 20,
        }
    }

    /// The paper's five-machine lab cluster (one master, four slaves;
    /// Core2 Duo E6550, 1 GB DRAM). Worker count is the four slaves.
    pub fn local_lab() -> Self {
        let mut c = Self::emr(4);
        c.replication = 3;
        c
    }

    /// Single-node configuration, handy for unit tests.
    pub fn single_node() -> Self {
        Self::emr(1)
    }

    /// Total concurrent map tasks the cluster admits.
    pub fn total_map_slots(&self) -> usize {
        self.nodes * self.map_slots_per_node
    }

    /// Total concurrent reduce tasks the cluster admits.
    pub fn total_reduce_slots(&self) -> usize {
        self.nodes * self.reduce_slots_per_node
    }

    /// Default number of reduce tasks for a job on this cluster
    /// (Hadoop's rule of thumb: ~1× the reduce slot count).
    pub fn default_num_reducers(&self) -> usize {
        self.total_reduce_slots().max(1)
    }

    /// Cap a requested parallelism at what this machine can actually run
    /// concurrently (the engine executes slots as real threads).
    pub(crate) fn effective_threads(&self, slots: usize) -> usize {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        slots.min(host.max(1)).max(1)
    }
}

impl Default for ClusterConfig {
    /// Defaults to the 16-node EMR setup, the smallest cloud
    /// configuration evaluated in the paper.
    fn default() -> Self {
        Self::emr(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emr_matches_table2() {
        let c = ClusterConfig::emr(16);
        assert_eq!(c.map_slots_per_node, 4);
        assert_eq!(c.reduce_slots_per_node, 2);
        assert_eq!(c.replication, 3);
        assert_eq!(c.jobtracker_heap, 768 << 20);
        assert_eq!(c.namenode_heap, 256 << 20);
        assert_eq!(c.tasktracker_heap, 512 << 20);
        assert_eq!(c.datanode_heap, 256 << 20);
    }

    #[test]
    fn slot_totals_scale_with_nodes() {
        assert_eq!(ClusterConfig::emr(16).total_map_slots(), 64);
        assert_eq!(ClusterConfig::emr(64).total_map_slots(), 256);
        assert_eq!(ClusterConfig::emr(32).total_reduce_slots(), 64);
    }

    #[test]
    fn replication_capped_by_nodes() {
        assert_eq!(ClusterConfig::emr(1).replication, 1);
        assert_eq!(ClusterConfig::emr(2).replication, 2);
        assert_eq!(ClusterConfig::emr(5).replication, 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        ClusterConfig::emr(0);
    }

    #[test]
    fn effective_threads_at_least_one() {
        let c = ClusterConfig::single_node();
        assert!(c.effective_threads(0) >= 1);
        assert!(c.effective_threads(1000) >= 1);
    }
}
