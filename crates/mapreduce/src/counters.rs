//! Hadoop-style named counters.
//!
//! Mappers and reducers increment shared counters to report
//! application-level statistics (records filtered, parse errors, bytes
//! seen …) alongside the engine's built-in [`crate::JobStats`]. A
//! [`Counters`] value is `Sync`; capture a reference in the mapper or
//! reducer closure.
//!
//! Since the unified observability layer landed, `Counters` is a thin
//! wrapper over a [`dasc_obs::Registry`]: [`Counters::new`] owns a
//! private registry (job-scoped, isolated), while [`Counters::global`]
//! delegates to the process-wide [`dasc_obs::global`] registry so job
//! counters show up on the `/metrics` endpoint alongside everything
//! else.

use std::collections::BTreeMap;

use dasc_obs::Registry;

/// A set of named monotone counters, cheap to increment concurrently.
pub struct Counters {
    /// `Some` for a job-private counter set; `None` delegates to the
    /// process-wide registry.
    local: Option<Registry>,
}

impl Default for Counters {
    fn default() -> Self {
        Self::new()
    }
}

impl Counters {
    /// Create an empty, job-private counter set.
    pub fn new() -> Self {
        Self {
            local: Some(Registry::new()),
        }
    }

    /// A counter set backed by the process-wide observability registry.
    ///
    /// Increments are visible to every other reader of
    /// [`dasc_obs::global`] — in particular the serve subsystem's
    /// `/metrics` endpoint. Note that [`Counters::snapshot`] then also
    /// reflects counters recorded by *other* subsystems.
    pub fn global() -> Self {
        Self { local: None }
    }

    fn registry(&self) -> &Registry {
        match &self.local {
            Some(r) => r,
            None => dasc_obs::global(),
        }
    }

    /// Add `by` to the counter `name`, creating it at zero on first use.
    pub fn inc(&self, name: &str, by: u64) {
        self.registry().inc(name, by);
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.registry().counter_value(name)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.registry().snapshot().counters
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_increment_and_get() {
        let c = Counters::new();
        assert_eq!(c.get("records"), 0);
        c.inc("records", 3);
        c.inc("records", 2);
        assert_eq!(c.get("records"), 5);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        let c = Counters::new();
        c.inc("zebra", 1);
        c.inc("alpha", 2);
        let snap: Vec<(String, u64)> = c.snapshot().into_iter().collect();
        assert_eq!(snap, vec![("alpha".into(), 2), ("zebra".into(), 1)]);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Counters::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        c.inc("hits", 1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(c.get("hits"), 8000);
    }

    #[test]
    fn private_sets_are_isolated() {
        let a = Counters::new();
        let b = Counters::new();
        a.inc("shared_name", 7);
        assert_eq!(b.get("shared_name"), 0);
    }

    #[test]
    fn global_counters_hit_the_process_registry() {
        let c = Counters::global();
        let before = dasc_obs::global().counter_value("mr_counters_global_test");
        c.inc("mr_counters_global_test", 2);
        assert_eq!(
            dasc_obs::global().counter_value("mr_counters_global_test"),
            before + 2
        );
        assert_eq!(c.get("mr_counters_global_test"), before + 2);
    }

    #[test]
    fn usable_from_a_mapreduce_job() {
        use crate::{run_job, ClusterConfig, FnMapper, FnReducer};
        let counters = Counters::new();
        let mapper = FnMapper::new(|_k: usize, v: u32, emit: &mut dyn FnMut(u32, u32)| {
            if v.is_multiple_of(2) {
                counters.inc("even_records", 1);
                emit(0, v);
            } else {
                counters.inc("odd_records_dropped", 1);
            }
        });
        let reducer = FnReducer::new(|_k: u32, vs: Vec<u32>, emit: &mut dyn FnMut(usize)| {
            counters.inc("reduce_groups", 1);
            emit(vs.len());
        });
        let inputs: Vec<(usize, u32)> = (0..100u32).map(|v| (v as usize, v)).collect();
        let out = run_job(&mapper, &reducer, inputs, &ClusterConfig::single_node());
        assert_eq!(out.records, vec![50]);
        assert_eq!(counters.get("even_records"), 50);
        assert_eq!(counters.get("odd_records_dropped"), 50);
        assert_eq!(counters.get("reduce_groups"), 1);
    }
}
