//! Hadoop-style named counters.
//!
//! Mappers and reducers increment shared counters to report
//! application-level statistics (records filtered, parse errors, bytes
//! seen …) alongside the engine's built-in [`crate::JobStats`]. A
//! [`Counters`] value is `Sync`; capture a reference in the mapper or
//! reducer closure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// A set of named monotone counters, cheap to increment concurrently.
#[derive(Default)]
pub struct Counters {
    inner: RwLock<BTreeMap<String, AtomicU64>>,
}

impl Counters {
    /// Create an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the counter `name`, creating it at zero on first use.
    pub fn inc(&self, name: &str, by: u64) {
        {
            let map = self.inner.read();
            if let Some(c) = map.get(name) {
                c.fetch_add(by, Ordering::Relaxed);
                return;
            }
        }
        let mut map = self.inner.write();
        map.entry(name.to_string())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(by, Ordering::Relaxed);
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Snapshot of every counter, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_increment_and_get() {
        let c = Counters::new();
        assert_eq!(c.get("records"), 0);
        c.inc("records", 3);
        c.inc("records", 2);
        assert_eq!(c.get("records"), 5);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        let c = Counters::new();
        c.inc("zebra", 1);
        c.inc("alpha", 2);
        let snap: Vec<(String, u64)> = c.snapshot().into_iter().collect();
        assert_eq!(snap, vec![("alpha".into(), 2), ("zebra".into(), 1)]);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Counters::new();
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        c.inc("hits", 1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(c.get("hits"), 8000);
    }

    #[test]
    fn usable_from_a_mapreduce_job() {
        use crate::{run_job, ClusterConfig, FnMapper, FnReducer};
        let counters = Counters::new();
        let mapper = FnMapper::new(|_k: usize, v: u32, emit: &mut dyn FnMut(u32, u32)| {
            if v.is_multiple_of(2) {
                counters.inc("even_records", 1);
                emit(0, v);
            } else {
                counters.inc("odd_records_dropped", 1);
            }
        });
        let reducer = FnReducer::new(|_k: u32, vs: Vec<u32>, emit: &mut dyn FnMut(usize)| {
            counters.inc("reduce_groups", 1);
            emit(vs.len());
        });
        let inputs: Vec<(usize, u32)> = (0..100u32).map(|v| (v as usize, v)).collect();
        let out = run_job(&mapper, &reducer, inputs, &ClusterConfig::single_node());
        assert_eq!(out.records, vec![50]);
        assert_eq!(counters.get("even_records"), 50);
        assert_eq!(counters.get("odd_records_dropped"), 50);
        assert_eq!(counters.get("reduce_groups"), 1);
    }
}
