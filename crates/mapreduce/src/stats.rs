//! Job execution statistics.
//!
//! Per-task durations feed the [`crate::sim`] scheduler, letting the same
//! measured task bag be "re-run" on clusters of different sizes — the
//! mechanism behind the paper's Table 3 elasticity study.

use std::time::Duration;

/// Statistics collected while a MapReduce job executes.
#[derive(Clone, Debug, Default)]
pub struct JobStats {
    /// Wall-clock duration of each map task.
    pub map_task_durations: Vec<Duration>,
    /// Wall-clock duration of each reduce task.
    pub reduce_task_durations: Vec<Duration>,
    /// Number of input records consumed.
    pub input_records: usize,
    /// Number of intermediate records shuffled.
    pub shuffled_records: usize,
    /// Number of distinct intermediate keys.
    pub distinct_keys: usize,
    /// Number of output records produced.
    pub output_records: usize,
    /// Task attempts that failed (panicked) and were rescheduled.
    pub task_retries: usize,
    /// End-to-end wall-clock time of the job on the executing host.
    pub wall_time: Duration,
}

impl JobStats {
    /// Number of map tasks executed.
    pub fn num_map_tasks(&self) -> usize {
        self.map_task_durations.len()
    }

    /// Number of reduce tasks executed.
    pub fn num_reduce_tasks(&self) -> usize {
        self.reduce_task_durations.len()
    }

    /// Total CPU-ish time across all tasks (sum of task durations).
    pub fn total_task_time(&self) -> Duration {
        self.map_task_durations
            .iter()
            .chain(&self.reduce_task_durations)
            .sum()
    }

    /// Merge another job's stats into this one (for multi-stage
    /// pipelines such as DASC's LSH stage followed by the clustering
    /// stage).
    pub fn merge(&mut self, other: &JobStats) {
        self.map_task_durations
            .extend_from_slice(&other.map_task_durations);
        self.reduce_task_durations
            .extend_from_slice(&other.reduce_task_durations);
        self.input_records += other.input_records;
        self.shuffled_records += other.shuffled_records;
        self.distinct_keys += other.distinct_keys;
        self.output_records += other.output_records;
        self.task_retries += other.task_retries;
        self.wall_time += other.wall_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_both_phases() {
        let s = JobStats {
            map_task_durations: vec![Duration::from_millis(10), Duration::from_millis(20)],
            reduce_task_durations: vec![Duration::from_millis(5)],
            ..Default::default()
        };
        assert_eq!(s.num_map_tasks(), 2);
        assert_eq!(s.num_reduce_tasks(), 1);
        assert_eq!(s.total_task_time(), Duration::from_millis(35));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JobStats {
            input_records: 10,
            output_records: 2,
            wall_time: Duration::from_secs(1),
            ..Default::default()
        };
        let b = JobStats {
            input_records: 5,
            output_records: 3,
            wall_time: Duration::from_secs(2),
            map_task_durations: vec![Duration::from_millis(1)],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.input_records, 15);
        assert_eq!(a.output_records, 5);
        assert_eq!(a.wall_time, Duration::from_secs(3));
        assert_eq!(a.num_map_tasks(), 1);
    }
}
