//! Job execution: map → shuffle (partition + sort + group) → reduce.
//!
//! Concurrency is bounded by the cluster's slot totals, mirroring how
//! Hadoop task trackers cap concurrent tasks. Output order is
//! deterministic: partitions are emitted in index order and each
//! partition's groups in key order; value order within a group follows
//! (map-task index, emission order) thanks to the stable shuffle sort.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use dasc_obs::span;
use parking_lot::Mutex;

use crate::config::ClusterConfig;
use crate::job::{Mapper, Reducer};
use crate::partition::hash_partition;
use crate::stats::JobStats;

/// A split queue entry: `(task index, records)`.
type SplitQueue<K, V> = Mutex<VecDeque<(usize, Vec<(K, V)>)>>;
/// Collected task results: `(task index, duration, emitted records)`.
type TaskResults<R> = Mutex<Vec<(usize, Duration, Vec<R>)>>;
/// The reduce-phase work queue: `(task index, (key, values))`.
type GroupQueue<K, V> = Mutex<VecDeque<(usize, (K, Vec<V>))>>;

/// Result of a job: the output records plus execution statistics.
#[derive(Clone, Debug)]
pub struct JobOutput<O> {
    /// Output records in deterministic (partition, key) order.
    pub records: Vec<O>,
    /// Execution statistics (task durations, record counts).
    pub stats: JobStats,
}

/// Run a full map → shuffle → reduce job on the given cluster.
pub fn run_job<M, R>(
    mapper: &M,
    reducer: &R,
    inputs: Vec<(M::InKey, M::InValue)>,
    config: &ClusterConfig,
) -> JobOutput<R::Out>
where
    M: Mapper,
    M::InKey: Clone,
    M::InValue: Clone,
    M::OutValue: Clone,
    R: Reducer<Key = M::OutKey, Value = M::OutValue>,
{
    let grouped = run_map_only(mapper, inputs, config);
    let map_stats = grouped.stats;
    let mut out = reduce_groups(reducer, grouped.records, config);
    let reduce_stats = std::mem::take(&mut out.stats);
    out.stats = JobStats {
        map_task_durations: map_stats.map_task_durations,
        reduce_task_durations: reduce_stats.reduce_task_durations,
        input_records: map_stats.input_records,
        shuffled_records: map_stats.shuffled_records,
        distinct_keys: reduce_stats.distinct_keys,
        output_records: reduce_stats.output_records,
        task_retries: map_stats.task_retries + reduce_stats.task_retries,
        wall_time: map_stats.wall_time + reduce_stats.wall_time,
    };
    out
}

/// Run only the map phase plus shuffle, returning key groups.
///
/// DASC needs this split: bucket merging (the P-similar-signature rule)
/// happens *between* the shuffle and the reducer, exactly as described in
/// Section 3.3 of the paper ("this step is performed before applying the
/// reducer").
pub fn run_map_only<M>(
    mapper: &M,
    inputs: Vec<(M::InKey, M::InValue)>,
    config: &ClusterConfig,
) -> JobOutput<(M::OutKey, Vec<M::OutValue>)>
where
    M: Mapper,
    M::InKey: Clone,
    M::InValue: Clone,
{
    // Identity combiner.
    run_map_combine(mapper, |_k: &M::OutKey, vs| vs, inputs, config)
}

/// Map + local combine + shuffle.
///
/// The combiner runs once per map task over that task's locally-grouped
/// output, exactly like Hadoop's combiner: it must be associative and
/// produce values of the intermediate type (e.g. partial sums), shrinking
/// shuffle volume without changing reducer results.
pub fn run_map_combine<M, C>(
    mapper: &M,
    combiner: C,
    inputs: Vec<(M::InKey, M::InValue)>,
    config: &ClusterConfig,
) -> JobOutput<(M::OutKey, Vec<M::OutValue>)>
where
    M: Mapper,
    M::InKey: Clone,
    M::InValue: Clone,
    C: Fn(&M::OutKey, Vec<M::OutValue>) -> Vec<M::OutValue> + Sync,
{
    let start = Instant::now();
    let input_records = inputs.len();

    // --- Split phase: carve the input into map tasks. ---
    let num_splits = desired_splits(
        input_records,
        config.total_map_slots(),
        config.records_per_split,
        config.map_waves_per_slot,
    );
    let splits = make_splits(inputs, num_splits);
    let num_map_tasks = splits.len();

    // --- Map phase: bounded worker pool over the split queue. ---
    let queue: SplitQueue<M::InKey, M::InValue> =
        Mutex::new(splits.into_iter().enumerate().collect());
    let results: TaskResults<(M::OutKey, M::OutValue)> =
        Mutex::new(Vec::with_capacity(num_map_tasks));
    let retries = std::sync::atomic::AtomicUsize::new(0);

    let map_span = span!("mr.map");
    let workers = config.effective_threads(config.total_map_slots());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let task = queue.lock().pop_front();
                let Some((idx, records)) = task else { break };
                let t0 = Instant::now();
                // Hadoop-style attempts: a panicking task is retried with
                // the same input up to the configured attempt budget.
                let emitted = run_attempts(
                    config.max_task_attempts,
                    &retries,
                    &format!("map task {idx}"),
                    || {
                        let mut out = Vec::new();
                        for (k, v) in records.clone() {
                            mapper.map(k, v, &mut |ok, ov| out.push((ok, ov)));
                        }
                        // Local combine: group this task's output by key
                        // and let the combiner shrink each group.
                        out.sort_by(|a, b| a.0.cmp(&b.0));
                        let mut combined = Vec::with_capacity(out.len());
                        let mut it = out.into_iter().peekable();
                        while let Some((k, v)) = it.next() {
                            let mut vs = vec![v];
                            while it.peek().is_some_and(|(nk, _)| *nk == k) {
                                vs.push(it.next().expect("peeked").1);
                            }
                            for cv in combiner(&k, vs) {
                                combined.push((k.clone(), cv));
                            }
                        }
                        combined
                    },
                );
                results.lock().push((idx, t0.elapsed(), emitted));
            });
        }
    })
    .expect("map worker panicked");
    map_span.finish();
    let map_retries = retries.load(std::sync::atomic::Ordering::Relaxed);

    let mut results = results.into_inner();
    results.sort_by_key(|(idx, _, _)| *idx);
    let map_task_durations: Vec<Duration> = results.iter().map(|(_, d, _)| *d).collect();

    // --- Shuffle: partition, stable-sort by key, group. ---
    let shuffle_span = span!("mr.shuffle");
    let num_partitions = config.default_num_reducers();
    let mut partitions: Vec<Vec<(M::OutKey, M::OutValue)>> =
        (0..num_partitions).map(|_| Vec::new()).collect();
    let mut shuffled_records = 0usize;
    for (_, _, emitted) in results {
        for (k, v) in emitted {
            shuffled_records += 1;
            let p = hash_partition(&k, num_partitions);
            partitions[p].push((k, v));
        }
    }

    let mut groups: Vec<(M::OutKey, Vec<M::OutValue>)> = Vec::new();
    for part in &mut partitions {
        part.sort_by(|a, b| a.0.cmp(&b.0));
        let mut it = std::mem::take(part).into_iter().peekable();
        while let Some((k, v)) = it.next() {
            let mut vs = vec![v];
            while let Some((nk, _)) = it.peek() {
                if *nk == k {
                    vs.push(it.next().expect("peeked").1);
                } else {
                    break;
                }
            }
            groups.push((k, vs));
        }
    }
    shuffle_span.finish();

    let registry = dasc_obs::global();
    registry.inc("dasc_mr_map_tasks_total", num_map_tasks as u64);
    registry.inc("dasc_mr_shuffled_records_total", shuffled_records as u64);
    registry.inc("dasc_mr_task_retries_total", map_retries as u64);

    let stats = JobStats {
        map_task_durations,
        reduce_task_durations: Vec::new(),
        input_records,
        shuffled_records,
        distinct_keys: groups.len(),
        output_records: groups.len(),
        task_retries: map_retries,
        wall_time: start.elapsed(),
    };
    JobOutput {
        records: groups,
        stats,
    }
}

/// Execute a task closure with Hadoop-style retry-on-panic semantics.
///
/// # Panics
/// Re-raises the final failure once the attempt budget is exhausted.
fn run_attempts<T>(
    max_attempts: usize,
    retries: &std::sync::atomic::AtomicUsize,
    what: &str,
    f: impl Fn() -> T,
) -> T {
    let budget = max_attempts.max(1);
    for attempt in 1..=budget {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f)) {
            Ok(v) => return v,
            Err(payload) => {
                if attempt == budget {
                    panic!(
                        "{what} failed after {budget} attempts: {}",
                        panic_message(&payload)
                    );
                }
                retries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
    unreachable!("attempt loop returns or panics")
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run only the reduce phase over pre-formed key groups.
pub fn reduce_groups<R>(
    reducer: &R,
    groups: Vec<(R::Key, Vec<R::Value>)>,
    config: &ClusterConfig,
) -> JobOutput<R::Out>
where
    R: Reducer,
    R::Key: Clone,
    R::Value: Clone,
{
    let start = Instant::now();
    let distinct_keys = groups.len();
    // One reduce "task" per key group: DASC's reducer cost is dominated
    // by per-bucket similarity-matrix work (O(Nᵢ²)), so bucket-level task
    // granularity is both faithful and gives the simulator the resolution
    // it needs to re-schedule onto other cluster sizes.
    let queue: GroupQueue<R::Key, R::Value> = Mutex::new(groups.into_iter().enumerate().collect());
    let results: TaskResults<R::Out> = Mutex::new(Vec::with_capacity(distinct_keys));

    let reduce_span = span!("mr.reduce");
    let retries = std::sync::atomic::AtomicUsize::new(0);
    let workers = config.effective_threads(config.total_reduce_slots());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let task = queue.lock().pop_front();
                let Some((idx, (key, values))) = task else {
                    break;
                };
                let t0 = Instant::now();
                let emitted = run_attempts(
                    config.max_task_attempts,
                    &retries,
                    &format!("reduce task {idx}"),
                    || {
                        let mut out = Vec::new();
                        reducer.reduce(key.clone(), values.clone(), &mut |o| out.push(o));
                        out
                    },
                );
                results.lock().push((idx, t0.elapsed(), emitted));
            });
        }
    })
    .expect("reduce worker panicked");
    reduce_span.finish();
    let reduce_retries = retries.load(std::sync::atomic::Ordering::Relaxed);

    let registry = dasc_obs::global();
    registry.inc("dasc_mr_reduce_tasks_total", distinct_keys as u64);
    registry.inc("dasc_mr_task_retries_total", reduce_retries as u64);

    let mut results = results.into_inner();
    results.sort_by_key(|(idx, _, _)| *idx);
    let reduce_task_durations: Vec<Duration> = results.iter().map(|(_, d, _)| *d).collect();
    let records: Vec<R::Out> = results.into_iter().flat_map(|(_, _, out)| out).collect();

    let stats = JobStats {
        map_task_durations: Vec::new(),
        reduce_task_durations,
        input_records: distinct_keys,
        shuffled_records: 0,
        distinct_keys,
        output_records: records.len(),
        task_retries: reduce_retries,
        wall_time: start.elapsed(),
    };
    JobOutput { records, stats }
}

/// Pick a split count: data-proportional (one task per
/// `records_per_split` records, Hadoop's block-driven sizing) with a
/// floor of `waves_per_slot` waves per slot
/// ([`ClusterConfig::map_waves_per_slot`]), never more tasks than
/// records.
fn desired_splits(
    records: usize,
    map_slots: usize,
    records_per_split: usize,
    waves_per_slot: usize,
) -> usize {
    if records == 0 {
        return 0;
    }
    let by_data = records.div_ceil(records_per_split.max(1));
    let by_slots = (map_slots * waves_per_slot).min(records);
    by_data.max(by_slots).clamp(1, records)
}

/// The contiguous `(start, len)` input ranges the engine would carve
/// `records` records into on `config` — the split plan, exposed so the
/// `dasc-dist` coordinator cuts map tasks at exactly the boundaries the
/// in-process engine uses.
pub fn split_ranges(records: usize, config: &ClusterConfig) -> Vec<(usize, usize)> {
    let num_splits = desired_splits(
        records,
        config.total_map_slots(),
        config.records_per_split,
        config.map_waves_per_slot,
    );
    if num_splits == 0 {
        return Vec::new();
    }
    let base = records / num_splits;
    let extra = records % num_splits;
    let mut ranges = Vec::with_capacity(num_splits);
    let mut start = 0usize;
    for s in 0..num_splits {
        let len = base + usize::from(s < extra);
        ranges.push((start, len));
        start += len;
    }
    ranges
}

fn make_splits<T>(inputs: Vec<T>, num_splits: usize) -> Vec<Vec<T>> {
    if num_splits == 0 {
        return Vec::new();
    }
    let n = inputs.len();
    let base = n / num_splits;
    let extra = n % num_splits;
    let mut splits = Vec::with_capacity(num_splits);
    let mut it = inputs.into_iter();
    for s in 0..num_splits {
        let take = base + usize::from(s < extra);
        splits.push(it.by_ref().take(take).collect());
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FnMapper, FnReducer};

    fn word_count(words: Vec<&'static str>, config: &ClusterConfig) -> Vec<(String, usize)> {
        let mapper = FnMapper::new(
            |_k: usize, w: &'static str, emit: &mut dyn FnMut(String, usize)| {
                emit(w.to_string(), 1);
            },
        );
        let reducer = FnReducer::new(
            |k: String, vs: Vec<usize>, emit: &mut dyn FnMut((String, usize))| {
                emit((k, vs.len()));
            },
        );
        let inputs: Vec<(usize, &'static str)> = words.into_iter().enumerate().collect();
        let mut out = run_job(&mapper, &reducer, inputs, config).records;
        out.sort();
        out
    }

    #[test]
    fn word_count_end_to_end() {
        let out = word_count(
            vec!["a", "b", "a", "c", "b", "a"],
            &ClusterConfig::single_node(),
        );
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    #[test]
    fn same_answer_on_any_cluster_size() {
        let words = vec!["x", "y", "x", "z", "z", "z", "w"];
        let a = word_count(words.clone(), &ClusterConfig::single_node());
        let b = word_count(words.clone(), &ClusterConfig::emr(16));
        let c = word_count(words, &ClusterConfig::emr(64));
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn empty_input_runs_clean() {
        let out = word_count(vec![], &ClusterConfig::emr(4));
        assert!(out.is_empty());
    }

    #[test]
    fn stats_are_recorded() {
        let mapper = FnMapper::new(|k: usize, v: u64, emit: &mut dyn FnMut(u64, u64)| {
            emit(v % 3, k as u64);
        });
        let reducer = FnReducer::new(|k: u64, vs: Vec<u64>, emit: &mut dyn FnMut((u64, u64))| {
            emit((k, vs.iter().sum()));
        });
        let inputs: Vec<(usize, u64)> = (0..100u64).map(|v| (v as usize, v)).collect();
        let out = run_job(&mapper, &reducer, inputs, &ClusterConfig::single_node());
        assert_eq!(out.stats.input_records, 100);
        assert_eq!(out.stats.shuffled_records, 100);
        assert_eq!(out.stats.distinct_keys, 3);
        assert_eq!(out.stats.output_records, 3);
        assert!(out.stats.num_map_tasks() >= 1);
        assert_eq!(out.stats.num_reduce_tasks(), 3);
    }

    #[test]
    fn value_order_within_group_is_stable() {
        // Values must arrive in (map-task, emission) order so reducers
        // relying on input order are deterministic.
        let mapper = FnMapper::new(|k: usize, _v: (), emit: &mut dyn FnMut(u8, usize)| {
            emit(0, k);
        });
        let inputs: Vec<(usize, ())> = (0..57).map(|k| (k, ())).collect();
        let grouped = run_map_only(&mapper, inputs, &ClusterConfig::emr(8)).records;
        assert_eq!(grouped.len(), 1);
        let expected: Vec<usize> = (0..57).collect();
        assert_eq!(grouped[0].1, expected);
    }

    #[test]
    fn run_map_only_groups_by_key() {
        let mapper = FnMapper::new(|_k: usize, v: u32, emit: &mut dyn FnMut(u32, u32)| {
            emit(v / 10, v);
        });
        let inputs: Vec<(usize, u32)> = vec![(0, 5), (1, 15), (2, 7), (3, 12)];
        let mut groups = run_map_only(&mapper, inputs, &ClusterConfig::single_node()).records;
        groups.sort_by_key(|(k, _)| *k);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (0, vec![5, 7]));
        assert_eq!(groups[1], (1, vec![15, 12]));
    }

    #[test]
    fn splits_cover_all_records() {
        let splits = make_splits((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(splits.len(), 3);
        let total: Vec<i32> = splits.into_iter().flatten().collect();
        assert_eq!(total, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn combiner_shrinks_shuffle_without_changing_results() {
        // Word-count with a summing combiner: shuffle volume drops to at
        // most (tasks × distinct keys) records, totals are unchanged.
        let mapper = FnMapper::new(|_k: usize, v: u32, emit: &mut dyn FnMut(u32, u64)| {
            emit(v % 3, 1);
        });
        let inputs: Vec<(usize, u32)> = (0..300u32).map(|v| (v as usize, v)).collect();

        let plain = run_map_only(&mapper, inputs.clone(), &ClusterConfig::single_node());
        let combined = run_map_combine(
            &mapper,
            |_k: &u32, vs: Vec<u64>| vec![vs.iter().sum()],
            inputs,
            &ClusterConfig::single_node(),
        );

        assert_eq!(plain.stats.shuffled_records, 300);
        assert!(
            combined.stats.shuffled_records < 300,
            "combiner did not shrink shuffle: {}",
            combined.stats.shuffled_records
        );

        // Totals per key identical.
        let total = |groups: &[(u32, Vec<u64>)], key: u32| -> u64 {
            groups
                .iter()
                .filter(|(k, _)| *k == key)
                .flat_map(|(_, vs)| vs.iter())
                .sum()
        };
        for key in 0..3 {
            assert_eq!(
                total(&plain.records, key),
                total(&combined.records, key),
                "key {key} total changed"
            );
        }
    }

    #[test]
    fn flaky_mapper_is_retried_to_success() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Silence the expected panic messages from injected failures.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        let attempts = AtomicUsize::new(0);
        let mapper = FnMapper::new(|k: usize, v: u32, emit: &mut dyn FnMut(u32, u32)| {
            // The record with value 13 fails its first two attempts.
            if v == 13 && attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("injected map failure");
            }
            emit(v % 2, k as u32);
        });
        let reducer = FnReducer::new(|k: u32, vs: Vec<u32>, emit: &mut dyn FnMut((u32, usize))| {
            emit((k, vs.len()));
        });
        let inputs: Vec<(usize, u32)> = (0..20u32).map(|v| (v as usize, v)).collect();
        let out = run_job(&mapper, &reducer, inputs, &ClusterConfig::single_node());
        std::panic::set_hook(prev);

        assert!(out.stats.task_retries >= 1, "no retries recorded");
        let mut records = out.records;
        records.sort();
        assert_eq!(records, vec![(0, 10), (1, 10)]);
    }

    #[test]
    fn permanently_failing_task_fails_the_job() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mapper = FnMapper::new(|_k: usize, v: u32, _emit: &mut dyn FnMut(u32, u32)| {
            if v == 3 {
                panic!("always fails");
            }
        });
        let inputs: Vec<(usize, u32)> = (0..8u32).map(|v| (v as usize, v)).collect();
        let result = std::panic::catch_unwind(|| {
            run_map_only(&mapper, inputs, &ClusterConfig::single_node())
        });
        std::panic::set_hook(prev);
        assert!(result.is_err(), "job should fail after attempt budget");
    }

    #[test]
    fn desired_splits_bounds() {
        assert_eq!(desired_splits(0, 4, 1024, 2), 0);
        assert_eq!(desired_splits(3, 64, 1024, 2), 3);
        assert_eq!(desired_splits(1_000, 4, 1024, 2), 8);
        // Data-proportional once records exceed splits × slots.
        assert_eq!(desired_splits(8_192, 4, 16, 2), 512);
        assert_eq!(desired_splits(8_192, 4, 0, 2), 8_192);
        // The waves floor is the configurable knob.
        assert_eq!(desired_splits(1_000, 4, 1024, 4), 16);
        assert_eq!(desired_splits(1_000, 4, 1024, 1), 4);
    }

    #[test]
    fn split_ranges_match_engine_sizing() {
        let cfg = ClusterConfig::single_node(); // 4 map slots → 8 splits
        let ranges = split_ranges(100, &cfg);
        assert_eq!(
            ranges.len(),
            desired_splits(100, 4, cfg.records_per_split, cfg.map_waves_per_slot)
        );
        // Contiguous cover of 0..100, sizes matching make_splits.
        let mut next = 0usize;
        let sizes = make_splits((0..100).collect::<Vec<_>>(), ranges.len());
        for ((start, len), chunk) in ranges.iter().zip(&sizes) {
            assert_eq!(*start, next);
            assert_eq!(*len, chunk.len());
            next += len;
        }
        assert_eq!(next, 100);
        assert!(split_ranges(0, &cfg).is_empty());
    }

    #[test]
    fn waves_knob_from_config_drives_split_count() {
        let mut cfg = ClusterConfig::single_node();
        cfg.map_waves_per_slot = 1;
        let one_wave = split_ranges(1_000, &cfg).len();
        cfg.map_waves_per_slot = 3;
        let three_waves = split_ranges(1_000, &cfg).len();
        assert_eq!(one_wave, 4);
        assert_eq!(three_waves, 12);
    }
}
