//! Deterministic hash partitioner.
//!
//! Hadoop's default `HashPartitioner` routes a key to
//! `hash(key) mod numReduceTasks`. Rust's `DefaultHasher` is not
//! guaranteed stable across releases, so we fix an FNV-1a based hasher:
//! shuffle placement — and therefore reduce-task contents — is identical
//! across runs and toolchains.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a streaming hasher (stable across platforms and releases).
#[derive(Clone, Debug)]
pub struct Fnv1aHasher(u64);

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Partition `key` into one of `num_partitions` buckets.
///
/// # Panics
/// Panics if `num_partitions == 0`.
pub fn hash_partition<K: Hash>(key: &K, num_partitions: usize) -> usize {
    assert!(num_partitions > 0, "hash_partition: zero partitions");
    let mut h = Fnv1aHasher::default();
    key.hash(&mut h);
    // Mix the high bits down; FNV is weak in the low bits for short keys.
    let x = h.finish();
    let mixed = x ^ (x >> 32);
    (mixed % num_partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        assert_eq!(hash_partition(&42u64, 7), hash_partition(&42u64, 7));
        assert_eq!(hash_partition(&"sig", 5), hash_partition(&"sig", 5));
    }

    #[test]
    fn in_range() {
        for k in 0..1000u32 {
            let p = hash_partition(&k, 13);
            assert!(p < 13);
        }
    }

    #[test]
    fn single_partition_catches_all() {
        for k in 0..50u32 {
            assert_eq!(hash_partition(&k, 1), 0);
        }
    }

    #[test]
    fn spreads_keys_reasonably() {
        let parts = 8;
        let mut counts = vec![0usize; parts];
        for k in 0..8000u32 {
            counts[hash_partition(&k, parts)] += 1;
        }
        // Each partition should get within 3x of the fair share.
        for &c in &counts {
            assert!(c > 8000 / parts / 3, "partition starved: {counts:?}");
            assert!(c < 8000 / parts * 3, "partition overloaded: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn zero_partitions_panics() {
        hash_partition(&1u8, 0);
    }
}
