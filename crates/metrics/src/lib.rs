//! Clustering-quality metrics used in the paper's evaluation
//! (Section 5.3), plus standard extras.
//!
//! * [`accuracy`] — fraction of correctly clustered points against
//!   ground truth, under the optimal label matching (Hungarian
//!   algorithm). Drives Figure 3 and Table 3.
//! * [`davies_bouldin`] — DBI, Eq. 20 (Figure 4a).
//! * [`ase`] — average squared error, Eq. 21 (Figure 4b).
//! * [`fnorm_ratio`] — Frobenius-norm ratio between approximated and
//!   exact Gram matrices, Eqs. 22–24 (Figure 5).
//! * [`nmi`] / [`purity`] / [`silhouette`] — standard metrics beyond the
//!   paper, used by the ablation benches.
//!
//! ```
//! use dasc_metrics::accuracy;
//!
//! // Labels are matched up to permutation (Hungarian algorithm).
//! assert_eq!(accuracy(&[1, 1, 0, 0], &[0, 0, 1, 1]), 1.0);
//! assert_eq!(accuracy(&[0, 0, 0, 1], &[0, 0, 1, 1]), 0.75);
//! ```

pub mod accuracy;
pub mod ase;
pub mod dbi;
pub mod external;
pub mod fnorm;
pub mod hungarian;
pub mod silhouette;

pub use accuracy::{accuracy, confusion_matrix};
pub use ase::ase;
pub use dbi::davies_bouldin;
pub use external::{adjusted_rand_index, nmi, purity};
pub use fnorm::fnorm_ratio;
pub use hungarian::hungarian_min_assignment;
pub use silhouette::silhouette;
