//! Hungarian (Kuhn–Munkres) assignment, O(n³) shortest-augmenting-path
//! formulation with potentials.
//!
//! Clustering labels are arbitrary permutations of the ground truth;
//! the accuracy metric needs the permutation that maximizes agreement,
//! which is an assignment problem on the confusion matrix.

/// Solve the minimum-cost assignment for a `rows × cols` cost matrix
/// with `rows <= cols`.
///
/// Returns `assign` where `assign[r]` is the column matched to row `r`;
/// all assigned columns are distinct.
///
/// # Panics
/// Panics if `cost` is empty, ragged, or has more rows than columns.
pub fn hungarian_min_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "hungarian: empty cost matrix");
    let m = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == m),
        "hungarian: ragged cost matrix"
    );
    assert!(n <= m, "hungarian: requires rows <= cols");

    // 1-indexed potentials and matching, following the classic
    // formulation (e-maxx): p[j] = row matched to column j.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assign = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assign[p[j] - 1] = j - 1;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(cost: &[Vec<f64>], assign: &[usize]) -> f64 {
        assign.iter().enumerate().map(|(r, &c)| cost[r][c]).sum()
    }

    #[test]
    fn identity_optimal() {
        let cost = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        assert_eq!(hungarian_min_assignment(&cost), vec![0, 1, 2]);
    }

    #[test]
    fn antidiagonal_optimal() {
        let cost = vec![
            vec![9.0, 9.0, 1.0],
            vec![9.0, 1.0, 9.0],
            vec![1.0, 9.0, 9.0],
        ];
        assert_eq!(hungarian_min_assignment(&cost), vec![2, 1, 0]);
    }

    #[test]
    fn known_3x3_value() {
        // Classic example: optimal total is 5 (1+2+2 via perm (1,0,2)).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian_min_assignment(&cost);
        assert_eq!(total(&cost, &a), 5.0);
    }

    #[test]
    fn rectangular_rows_less_than_cols() {
        let cost = vec![vec![5.0, 1.0, 9.0, 4.0], vec![7.0, 8.0, 2.0, 6.0]];
        let a = hungarian_min_assignment(&cost);
        assert_eq!(a, vec![1, 2]);
        // Distinct columns.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn single_cell() {
        assert_eq!(hungarian_min_assignment(&[vec![7.0]]), vec![0]);
    }

    #[test]
    fn matches_brute_force_on_random_4x4() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let cost: Vec<Vec<f64>> = (0..4)
                .map(|_| (0..4).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let a = hungarian_min_assignment(&cost);
            let got = total(&cost, &a);
            // Brute force over all 24 permutations.
            let perms = [
                [0, 1, 2, 3],
                [0, 1, 3, 2],
                [0, 2, 1, 3],
                [0, 2, 3, 1],
                [0, 3, 1, 2],
                [0, 3, 2, 1],
                [1, 0, 2, 3],
                [1, 0, 3, 2],
                [1, 2, 0, 3],
                [1, 2, 3, 0],
                [1, 3, 0, 2],
                [1, 3, 2, 0],
                [2, 0, 1, 3],
                [2, 0, 3, 1],
                [2, 1, 0, 3],
                [2, 1, 3, 0],
                [2, 3, 0, 1],
                [2, 3, 1, 0],
                [3, 0, 1, 2],
                [3, 0, 2, 1],
                [3, 1, 0, 2],
                [3, 1, 2, 0],
                [3, 2, 0, 1],
                [3, 2, 1, 0],
            ];
            let best = perms
                .iter()
                .map(|p| total(&cost, p))
                .fold(f64::INFINITY, f64::min);
            assert!((got - best).abs() < 1e-9, "hungarian {got} vs brute {best}");
        }
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn tall_matrix_panics() {
        hungarian_min_assignment(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        hungarian_min_assignment(&[]);
    }
}
