//! Average squared error (Eq. 21) — the K-means objective normalized by
//! dataset size; smaller means tighter clusters.

use dasc_linalg::vector;

/// `ASE = (1/N) Σ_k Σ_{x ∈ k} ‖x − c_k‖²`.
///
/// # Panics
/// Panics on length mismatch or out-of-range assignments.
pub fn ase(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    assert_eq!(points.len(), assignments.len(), "ase: length mismatch");
    assert!(
        assignments.iter().all(|&a| a < k),
        "ase: assignment out of range"
    );
    if points.is_empty() {
        return 0.0;
    }
    let d = points[0].len();
    let mut centroids = vec![vec![0.0; d]; k];
    let mut counts = vec![0usize; k];
    for (p, &a) in points.iter().zip(assignments) {
        vector::axpy(1.0, p, &mut centroids[a]);
        counts[a] += 1;
    }
    for (c, &n) in centroids.iter_mut().zip(&counts) {
        if n > 0 {
            vector::scale(1.0 / n as f64, c);
        }
    }
    let total: f64 = points
        .iter()
        .zip(assignments)
        .map(|(p, &a)| vector::sq_dist(p, &centroids[a]))
        .sum();
    total / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clusters_zero_error() {
        let points = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        assert_eq!(ase(&points, &[0, 0, 1], 2), 0.0);
    }

    #[test]
    fn known_value() {
        // Cluster {0, 2}: centroid 1, each point 1 away → squared 1 each.
        let points = vec![vec![0.0], vec![2.0]];
        assert_eq!(ase(&points, &[0, 0], 1), 1.0);
    }

    #[test]
    fn better_clustering_scores_lower() {
        let points = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
        let good = ase(&points, &[0, 0, 1, 1], 2);
        let bad = ase(&points, &[0, 1, 0, 1], 2);
        assert!(good < bad);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(ase(&[], &[], 3), 0.0);
    }

    #[test]
    fn more_clusters_never_increase_optimal_ase() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let k2 = ase(&points, &[0, 0, 1, 1], 2);
        let k4 = ase(&points, &[0, 1, 2, 3], 4);
        assert!(k4 <= k2);
        assert_eq!(k4, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        ase(&[vec![0.0]], &[0, 1], 2);
    }
}
