//! External clustering metrics beyond the paper: purity and normalized
//! mutual information. Used by the ablation benches as additional,
//! permutation-free views of clustering quality.

use crate::accuracy::confusion_matrix;

/// Purity: each predicted cluster is credited with its majority class;
/// `purity = Σ_p max_t n_pt / N`. Always ≥ accuracy's matched fraction.
pub fn purity(predicted: &[usize], truth: &[usize]) -> f64 {
    let (counts, _, _) = confusion_matrix(predicted, truth);
    let n = predicted.len() as f64;
    let matched: usize = counts
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    matched as f64 / n
}

/// Normalized mutual information
/// `NMI = 2 I(P; T) / (H(P) + H(T)) ∈ [0, 1]`.
///
/// Returns `1.0` when both partitions are single-cluster (degenerate but
/// identical structure).
pub fn nmi(predicted: &[usize], truth: &[usize]) -> f64 {
    let (counts, pred_labels, true_labels) = confusion_matrix(predicted, truth);
    let n = predicted.len() as f64;

    let row_sums: Vec<f64> = counts
        .iter()
        .map(|r| r.iter().sum::<usize>() as f64)
        .collect();
    let col_sums: Vec<f64> = (0..true_labels.len())
        .map(|t| counts.iter().map(|r| r[t]).sum::<usize>() as f64)
        .collect();

    let mut mi = 0.0;
    for (p, row) in counts.iter().enumerate() {
        for (t, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let c = c as f64;
            mi += (c / n) * ((n * c) / (row_sums[p] * col_sums[t])).ln();
        }
    }
    let h = |sums: &[f64]| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| -(s / n) * (s / n).ln())
            .sum()
    };
    let hp = h(&row_sums);
    let ht = h(&col_sums);
    if hp + ht == 0.0 {
        // Both partitions trivial (one cluster each): identical.
        let _ = pred_labels;
        return 1.0;
    }
    (2.0 * mi / (hp + ht)).clamp(0.0, 1.0)
}

/// Adjusted Rand index: pair-counting agreement corrected for chance,
/// `ARI = (RI − E[RI]) / (max RI − E[RI])`. 1 for identical partitions,
/// ≈ 0 for independent ones; can be negative for adversarial ones.
pub fn adjusted_rand_index(predicted: &[usize], truth: &[usize]) -> f64 {
    let (counts, _, _) = confusion_matrix(predicted, truth);
    let n = predicted.len();
    let choose2 = |x: usize| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };

    let sum_cells: f64 = counts
        .iter()
        .flat_map(|row| row.iter())
        .map(|&c| choose2(c))
        .sum();
    let sum_rows: f64 = counts
        .iter()
        .map(|row| choose2(row.iter().sum::<usize>()))
        .sum();
    let sum_cols: f64 = (0..counts[0].len())
        .map(|t| choose2(counts.iter().map(|r| r[t]).sum::<usize>()))
        .sum();
    let total = choose2(n);
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-15 {
        // Both partitions trivial (all-one-cluster or all-singletons and
        // identical structure): define as perfect agreement.
        return 1.0;
    }
    (sum_cells - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ari_perfect_and_permuted() {
        let t = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&t, &t) - 1.0).abs() < 1e-12);
        let p = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_independent_near_zero() {
        // Orthogonal split of a 2x2 grid of groups.
        let p = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let t = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let ari = adjusted_rand_index(&p, &t);
        assert!(ari.abs() < 0.3, "ari {ari}");
    }

    #[test]
    fn ari_known_sklearn_value() {
        // sklearn.metrics.adjusted_rand_score([0,0,1,1],[0,0,1,2]) = 0.571428…
        let ari = adjusted_rand_index(&[0, 0, 1, 2], &[0, 0, 1, 1]);
        assert!((ari - 0.5714285714285714).abs() < 1e-12, "ari {ari}");
    }

    #[test]
    fn ari_symmetric() {
        let p = vec![0, 0, 1, 1, 1, 2];
        let t = vec![1, 1, 0, 0, 2, 2];
        assert!((adjusted_rand_index(&p, &t) - adjusted_rand_index(&t, &p)).abs() < 1e-12);
    }

    #[test]
    fn ari_trivial_partitions() {
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[5, 5, 5]), 1.0);
    }

    #[test]
    fn perfect_partition_scores_one() {
        let p = vec![0, 0, 1, 1, 2, 2];
        let t = vec![5, 5, 7, 7, 9, 9];
        assert!((nmi(&p, &t) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&p, &t), 1.0);
    }

    #[test]
    fn independent_partition_scores_near_zero() {
        // Prediction splits orthogonally to truth.
        let p = vec![0, 1, 0, 1];
        let t = vec![0, 0, 1, 1];
        assert!(nmi(&p, &t) < 1e-9);
        assert_eq!(purity(&p, &t), 0.5);
    }

    #[test]
    fn purity_rewards_oversegmentation() {
        // Singleton clusters: purity = 1 even though useless.
        let p = vec![0, 1, 2, 3];
        let t = vec![0, 0, 1, 1];
        assert_eq!(purity(&p, &t), 1.0);
        // ...but NMI penalizes it.
        assert!(nmi(&p, &t) < 1.0);
    }

    #[test]
    fn both_trivial_partitions() {
        assert_eq!(nmi(&[0, 0, 0], &[4, 4, 4]), 1.0);
        assert_eq!(purity(&[0, 0, 0], &[4, 4, 4]), 1.0);
    }

    #[test]
    fn nmi_symmetric() {
        let p = vec![0, 0, 1, 1, 1, 2];
        let t = vec![1, 1, 0, 0, 2, 2];
        assert!((nmi(&p, &t) - nmi(&t, &p)).abs() < 1e-12);
    }

    #[test]
    fn nmi_in_unit_interval() {
        let p = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let t = vec![0, 0, 0, 1, 1, 1, 2, 2];
        let v = nmi(&p, &t);
        assert!((0.0..=1.0).contains(&v));
    }
}
