//! Silhouette coefficient — a standard internal quality metric beyond
//! the paper's DBI/ASE, used by the ablation benches as a third view.
//!
//! For each point: `s = (b − a) / max(a, b)` where `a` is the mean
//! distance to its own cluster and `b` the mean distance to the nearest
//! other cluster. Scores lie in `[-1, 1]`; higher is better.

use dasc_linalg::vector;

/// Mean silhouette over all points (O(N²); intended for evaluation
/// sizes).
///
/// Points in singleton clusters contribute `0.0` (the usual convention).
/// Returns `0.0` when fewer than two non-empty clusters exist.
///
/// # Panics
/// Panics on length mismatch or out-of-range assignments.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    assert_eq!(
        points.len(),
        assignments.len(),
        "silhouette: length mismatch"
    );
    assert!(
        assignments.iter().all(|&a| a < k),
        "silhouette: assignment out of range"
    );
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let mut counts = vec![0usize; k];
    for &a in assignments {
        counts[a] += 1;
    }
    if counts.iter().filter(|&&c| c > 0).count() < 2 {
        return 0.0;
    }

    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if counts[own] <= 1 {
            continue; // singleton: s = 0
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[assignments[j]] += vector::dist(&points[i], &points[j]);
        }
        let a = sums[own] / (counts[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64]);
            labels.push(0);
            pts.push(vec![10.0 + 0.01 * i as f64]);
            labels.push(1);
        }
        (pts, labels)
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let (pts, labels) = two_blobs();
        let s = silhouette(&pts, &labels, 2);
        assert!(s > 0.95, "silhouette {s}");
    }

    #[test]
    fn shuffled_labels_score_low() {
        // Points interleave blob A/B by index, so "first half vs second
        // half" mixes both blobs into each cluster.
        let (pts, _) = two_blobs();
        let bad: Vec<usize> = (0..20).map(|i| usize::from(i < 10)).collect();
        let s = silhouette(&pts, &bad, 2);
        assert!(s < 0.2, "bad clustering scored {s}");
        let (_, good) = two_blobs();
        assert!(s < silhouette(&pts, &good, 2));
    }

    #[test]
    fn single_cluster_is_zero() {
        let (pts, _) = two_blobs();
        assert_eq!(silhouette(&pts, &[0; 20], 1), 0.0);
    }

    #[test]
    fn score_in_range() {
        let (pts, labels) = two_blobs();
        for ls in [
            labels.clone(),
            vec![0; 20],
            (0..20).map(|i| i % 2).collect(),
        ] {
            let s = silhouette(&pts, &ls, 2);
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn singletons_contribute_zero() {
        // Two points far apart, each its own cluster: both singletons.
        let pts = vec![vec![0.0], vec![9.0]];
        assert_eq!(silhouette(&pts, &[0, 1], 2), 0.0);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(silhouette(&[], &[], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_panics() {
        silhouette(&[vec![0.0]], &[2], 2);
    }
}
