//! Ground-truth clustering accuracy (the paper's first metric:
//! "the ratio of correctly clustered number of points to the total
//! number of points").

use crate::hungarian::hungarian_min_assignment;

/// Build the contingency table `counts[pred][truth]`.
///
/// Label values may be arbitrary (non-contiguous) `usize`s; they are
/// compacted internally. Returns `(counts, pred_labels, true_labels)`.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn confusion_matrix(
    predicted: &[usize],
    truth: &[usize],
) -> (Vec<Vec<usize>>, Vec<usize>, Vec<usize>) {
    assert_eq!(predicted.len(), truth.len(), "accuracy: length mismatch");
    assert!(!predicted.is_empty(), "accuracy: empty labelling");
    let mut pred_labels: Vec<usize> = predicted.to_vec();
    pred_labels.sort_unstable();
    pred_labels.dedup();
    let mut true_labels: Vec<usize> = truth.to_vec();
    true_labels.sort_unstable();
    true_labels.dedup();

    let pred_of = |l: usize| pred_labels.binary_search(&l).expect("known label");
    let true_of = |l: usize| true_labels.binary_search(&l).expect("known label");

    let mut counts = vec![vec![0usize; true_labels.len()]; pred_labels.len()];
    for (&p, &t) in predicted.iter().zip(truth) {
        counts[pred_of(p)][true_of(t)] += 1;
    }
    (counts, pred_labels, true_labels)
}

/// Clustering accuracy under the optimal one-to-one label matching.
///
/// Pads the contingency table to square, solves the max-agreement
/// assignment via the Hungarian algorithm, and returns
/// `matched / N ∈ [0, 1]`.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    let (counts, pred_labels, true_labels) = confusion_matrix(predicted, truth);
    let n: usize = predicted.len();
    let k = pred_labels.len().max(true_labels.len());

    // Maximize agreement == minimize (max_count − count) over a padded
    // square matrix.
    let max_count = counts
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(0) as f64;
    let cost: Vec<Vec<f64>> = (0..k)
        .map(|p| {
            (0..k)
                .map(|t| {
                    let c = counts.get(p).and_then(|r| r.get(t)).copied().unwrap_or(0);
                    max_count - c as f64
                })
                .collect()
        })
        .collect();
    let assign = hungarian_min_assignment(&cost);

    let matched: usize = assign
        .iter()
        .enumerate()
        .map(|(p, &t)| counts.get(p).and_then(|r| r.get(t)).copied().unwrap_or(0))
        .sum();
    matched as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering() {
        assert_eq!(accuracy(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn permuted_labels_still_perfect() {
        assert_eq!(accuracy(&[1, 1, 0, 0], &[0, 0, 1, 1]), 1.0);
        assert_eq!(accuracy(&[5, 5, 9, 9], &[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn one_mistake() {
        assert_eq!(accuracy(&[0, 0, 1, 0], &[0, 0, 1, 1]), 0.75);
    }

    #[test]
    fn all_one_cluster_gets_majority_class() {
        // Predicting a single cluster matches the largest class: 3/5.
        assert_eq!(accuracy(&[0; 5], &[1, 1, 1, 2, 2]), 0.6);
    }

    #[test]
    fn more_predicted_than_true_clusters() {
        // Over-segmentation: each true class split in two → best match
        // keeps one sub-cluster per class.
        let pred = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let truth = vec![0, 0, 0, 0, 1, 1, 1, 1];
        assert_eq!(accuracy(&pred, &truth), 0.5);
    }

    #[test]
    fn fewer_predicted_than_true_clusters() {
        let pred = vec![0, 0, 0, 0];
        let truth = vec![0, 1, 2, 3];
        assert_eq!(accuracy(&pred, &truth), 0.25);
    }

    #[test]
    fn confusion_matrix_counts() {
        let (m, pl, tl) = confusion_matrix(&[0, 0, 1, 1, 1], &[7, 7, 7, 9, 9]);
        assert_eq!(pl, vec![0, 1]);
        assert_eq!(tl, vec![7, 9]);
        assert_eq!(m, vec![vec![2, 0], vec![1, 2]]);
    }

    #[test]
    fn accuracy_is_symmetric_under_label_renaming() {
        let pred = vec![2, 2, 0, 1, 1, 0];
        let truth = vec![0, 0, 1, 2, 2, 1];
        assert_eq!(accuracy(&pred, &truth), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        accuracy(&[], &[]);
    }
}
