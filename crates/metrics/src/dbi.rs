//! Davies–Bouldin index (Eq. 20).
//!
//! `DBI = (1/C) Σᵢ maxⱼ≠ᵢ (σᵢ + σⱼ) / d(cᵢ, cⱼ)` — the ratio of
//! within-cluster scatter to between-cluster separation; smaller is
//! better.

use dasc_linalg::vector;

/// Compute the DBI of a clustering.
///
/// Clusters that are empty are ignored; if fewer than two non-empty
/// clusters exist, the index is defined as `0.0` (no pair to compare).
///
/// # Panics
/// Panics if `points` and `assignments` differ in length or any
/// assignment is `>= k`.
pub fn davies_bouldin(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    assert_eq!(points.len(), assignments.len(), "dbi: length mismatch");
    assert!(
        assignments.iter().all(|&a| a < k),
        "dbi: assignment out of range"
    );
    if points.is_empty() {
        return 0.0;
    }
    let d = points[0].len();

    // Centroids and within-cluster mean distances σ.
    let mut centroids = vec![vec![0.0; d]; k];
    let mut counts = vec![0usize; k];
    for (p, &a) in points.iter().zip(assignments) {
        vector::axpy(1.0, p, &mut centroids[a]);
        counts[a] += 1;
    }
    for (c, &n) in centroids.iter_mut().zip(&counts) {
        if n > 0 {
            vector::scale(1.0 / n as f64, c);
        }
    }
    let mut sigma = vec![0.0; k];
    for (p, &a) in points.iter().zip(assignments) {
        sigma[a] += vector::dist(p, &centroids[a]);
    }
    for (s, &n) in sigma.iter_mut().zip(&counts) {
        if n > 0 {
            *s /= n as f64;
        }
    }

    let live: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
    if live.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for &i in &live {
        let mut worst = 0.0f64;
        for &j in &live {
            if i == j {
                continue;
            }
            let sep = vector::dist(&centroids[i], &centroids[j]);
            let r = if sep > 0.0 {
                (sigma[i] + sigma[j]) / sep
            } else {
                f64::INFINITY
            };
            worst = worst.max(r);
        }
        total += worst;
    }
    total / live.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_separated_clusters_score_low() {
        // Two tight blobs far apart.
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
        ];
        let dbi = davies_bouldin(&points, &[0, 0, 1, 1], 2);
        assert!(dbi < 0.05, "dbi {dbi} should be near zero");
    }

    #[test]
    fn bad_split_scores_higher() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
        ];
        let good = davies_bouldin(&points, &[0, 0, 1, 1], 2);
        // Split across the blobs: huge scatter, same separation.
        let bad = davies_bouldin(&points, &[0, 1, 0, 1], 2);
        assert!(bad > good * 10.0, "bad {bad} vs good {good}");
    }

    #[test]
    fn single_cluster_is_zero() {
        let points = vec![vec![0.0], vec![1.0]];
        assert_eq!(davies_bouldin(&points, &[0, 0], 1), 0.0);
    }

    #[test]
    fn empty_clusters_ignored() {
        let points = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
        // k = 4 but only clusters 0 and 3 used.
        let dbi = davies_bouldin(&points, &[0, 0, 3, 3], 4);
        assert!(dbi.is_finite() && dbi > 0.0);
    }

    #[test]
    fn coincident_centroids_give_infinite_ratio() {
        // Two interleaved clusters with identical centroids.
        let points = vec![vec![0.0], vec![2.0], vec![0.0], vec![2.0]];
        let dbi = davies_bouldin(&points, &[0, 0, 1, 1], 2);
        assert!(dbi.is_infinite());
    }

    #[test]
    fn scale_invariance_of_ratio_ordering() {
        // Scaling all points scales σ and separations equally: DBI fixed.
        let points = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let scaled: Vec<Vec<f64>> = points.iter().map(|p| vec![p[0] * 3.0]).collect();
        let a = davies_bouldin(&points, &[0, 0, 1, 1], 2);
        let b = davies_bouldin(&scaled, &[0, 0, 1, 1], 2);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_panics() {
        davies_bouldin(&[vec![0.0]], &[1], 1);
    }
}
