//! Frobenius-norm ratio between an approximated and an exact matrix
//! (Eqs. 22–24): by unitary invariance the ratio compares singular-value
//! mass, so values near 1 mean the approximation kept the spectrum.

use dasc_linalg::Matrix;

/// `‖approx‖_F / ‖exact‖_F`.
///
/// Returns `1.0` when both norms are zero and `0.0` when only the exact
/// matrix is non-zero... i.e. degenerate cases degrade gracefully.
///
/// # Panics
/// Panics on shape mismatch.
pub fn fnorm_ratio(approx: &Matrix, exact: &Matrix) -> f64 {
    assert_eq!(approx.shape(), exact.shape(), "fnorm_ratio: shape mismatch");
    let e = exact.frobenius_norm();
    let a = approx.frobenius_norm();
    if e == 0.0 {
        return if a == 0.0 { 1.0 } else { f64::INFINITY };
    }
    a / e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices_ratio_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(fnorm_ratio(&m, &m), 1.0);
    }

    #[test]
    fn zeroed_offdiagonal_drops_ratio() {
        let exact = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let approx = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let r = fnorm_ratio(&approx, &exact);
        assert!((r - (2.0f64).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_exact_zero_approx() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(fnorm_ratio(&z, &z), 1.0);
    }

    #[test]
    fn zero_exact_nonzero_approx_is_infinite() {
        let z = Matrix::zeros(2, 2);
        let a = Matrix::identity(2);
        assert!(fnorm_ratio(&a, &z).is_infinite());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        fnorm_ratio(&Matrix::zeros(2, 2), &Matrix::zeros(3, 3));
    }
}
