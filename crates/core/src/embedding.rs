//! Shared spectral-embedding steps (Ng–Jordan–Weiss).
//!
//! All four algorithms in this crate go through the same pipeline tail:
//! normalized Laplacian `L = D^{−1/2} S D^{−1/2}` (Eq. 2), leading
//! eigenvectors, row normalization to the unit sphere, K-means.

use dasc_linalg::{lanczos, symmetric_eigen, LanczosOptions, Matrix};

/// Build the symmetric normalized Laplacian `L = D^{−1/2} S D^{−1/2}`
/// from a dense similarity matrix (Eq. 2).
///
/// Isolated vertices (zero degree) keep zero rows, matching the sparse
/// convention.
///
/// # Panics
/// Panics if `s` is not square.
pub fn normalized_laplacian(s: &Matrix) -> Matrix {
    assert!(s.is_square(), "laplacian: matrix must be square");
    let n = s.nrows();
    let degrees = s.row_sums();
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            l[(i, j)] = inv_sqrt[i] * s[(i, j)] * inv_sqrt[j];
        }
    }
    l
}

/// Top-`k` eigenvectors of a dense symmetric matrix, stacked as columns.
///
/// Uses the full Householder+QL decomposition below `lanczos_threshold`
/// and Lanczos above it (the crossover the paper's tridiagonalization
/// discussion motivates).
pub fn top_eigenvectors(l: &Matrix, k: usize, lanczos_threshold: usize, seed: u64) -> Matrix {
    let n = l.nrows();
    let k = k.min(n).max(1);
    if n <= lanczos_threshold {
        let eig = symmetric_eigen(l);
        eig.top_k(k).1
    } else {
        let mut opts = LanczosOptions::top(k);
        opts.seed = seed;
        lanczos(l, &opts).eigenvectors
    }
}

/// Row-normalize an embedding to unit length
/// (`Y_ij = X_ij / √(Σ_j X_ij²)`, the NJW step quoted in Section 3.2).
/// Zero rows are left at zero.
pub fn row_normalize(x: &Matrix) -> Matrix {
    let (n, k) = x.shape();
    let mut y = x.clone();
    for i in 0..n {
        let norm: f64 = (0..k).map(|j| y[(i, j)] * y[(i, j)]).sum::<f64>().sqrt();
        if norm > 0.0 {
            for j in 0..k {
                y[(i, j)] /= norm;
            }
        }
    }
    y
}

/// Rows of a matrix as owned vectors (K-means input).
pub fn rows_of(m: &Matrix) -> Vec<Vec<f64>> {
    (0..m.nrows()).map(|i| m.row(i).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_of_uniform_similarity() {
        // S = all-ones (n=4): degrees 4, L = S/4 with eigenvalue 1.
        let s = Matrix::from_fn(4, 4, |_, _| 1.0);
        let l = normalized_laplacian(&s);
        assert!((l[(0, 0)] - 0.25).abs() < 1e-12);
        let eig = symmetric_eigen(&l);
        assert!((eig.eigenvalues[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn laplacian_top_eigenvalue_at_most_one() {
        // For any similarity matrix with non-negative entries, the
        // normalized Laplacian's spectrum lies in [-1, 1].
        let s = Matrix::from_rows(&[&[1.0, 0.5, 0.1], &[0.5, 1.0, 0.2], &[0.1, 0.2, 1.0]]);
        let l = normalized_laplacian(&s);
        let eig = symmetric_eigen(&l);
        for &v in &eig.eigenvalues {
            assert!((-1.0 - 1e-10..=1.0 + 1e-10).contains(&v));
        }
    }

    #[test]
    fn laplacian_handles_isolated_vertex() {
        let s = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]);
        let l = normalized_laplacian(&s);
        assert_eq!(l[(0, 0)], 0.0);
        assert_eq!(l[(0, 1)], 0.0);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_similarity_yields_indicator_eigenvectors() {
        // Two disconnected blocks: top-2 eigenvectors separate them.
        let mut s = Matrix::zeros(4, 4);
        for i in 0..2 {
            for j in 0..2 {
                s[(i, j)] = 1.0;
                s[(i + 2, j + 2)] = 1.0;
            }
        }
        let l = normalized_laplacian(&s);
        let v = top_eigenvectors(&l, 2, 1000, 0);
        let y = row_normalize(&v);
        // Rows 0,1 identical; rows 2,3 identical; the two groups differ.
        let r0 = y.row(0).to_vec();
        let r2 = y.row(2).to_vec();
        assert!((r0[0] - y.row(1)[0]).abs() < 1e-8);
        assert!((r2[0] - y.row(3)[0]).abs() < 1e-8);
        let dot: f64 = r0.iter().zip(&r2).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 1e-8, "group embeddings not orthogonal");
    }

    #[test]
    fn row_normalize_unit_rows() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let y = row_normalize(&m);
        assert!((y[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((y[(0, 1)] - 0.8).abs() < 1e-12);
        assert_eq!(y.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn lanczos_path_matches_dense_path() {
        let s = Matrix::from_fn(30, 30, |i, j| {
            (-((i as f64 - j as f64) / 5.0).powi(2)).exp()
        });
        let l = normalized_laplacian(&s);
        let dense = top_eigenvectors(&l, 3, 1000, 7);
        let lz = top_eigenvectors(&l, 3, 10, 7);
        // Eigenvectors match up to sign: compare absolute inner products.
        for c in 0..3 {
            let a = dense.col(c);
            let b = lz.col(c);
            let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                dot.abs() > 0.99,
                "column {c} mismatch (|dot| = {})",
                dot.abs()
            );
        }
    }

    #[test]
    fn rows_of_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(rows_of(&m), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }
}
