//! Shared spectral-embedding steps (Ng–Jordan–Weiss).
//!
//! All four algorithms in this crate go through the same pipeline tail:
//! normalized Laplacian `L = D^{−1/2} S D^{−1/2}` (Eq. 2), leading
//! eigenvectors, row normalization to the unit sphere, K-means.
//!
//! The hot path works in place: the similarity matrix is scaled into
//! the Laplacian without a second `n×n` allocation, the embedding is
//! row-normalized without cloning, and the eigensolve routes through
//! one of three paths ([`EigenPath`]) — the k-targeted dense solver
//! (`symmetric_eigen_topk`, `O(n²k)` after the one-off reduction), the
//! full dense solver for tiny or nearly-full spectra, or Lanczos for
//! orders past the dense crossover.

use dasc_linalg::{lanczos, symmetric_eigen, symmetric_eigen_topk, LanczosOptions, Matrix};

/// The resolved eigensolver route for one embedding
/// (`EigenBackend` is the *policy*; this is the *choice* it made).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EigenPath {
    /// Full Householder + QL with `O(n³)` rotation accumulation.
    DenseFull,
    /// K-targeted dense path: factored Householder, eigenvalues-only
    /// QL, inverse iteration, blocked back-transform.
    DenseK,
    /// Lanczos with full reorthogonalization on the dense operator.
    Lanczos,
}

impl EigenPath {
    /// Stable lowercase name (bench JSON, trace labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            EigenPath::DenseFull => "dense_full",
            EigenPath::DenseK => "dense_k",
            EigenPath::Lanczos => "lanczos",
        }
    }
}

/// Below this order the full dense solve is cheap enough that the
/// inverse-iteration machinery isn't worth its bookkeeping.
const DENSE_FULL_MAX: usize = 64;

/// Resolve the automatic eigensolver choice for an `n×n` problem
/// wanting `k` vectors: full dense for tiny orders or nearly-full
/// spectra (`4k ≥ n`), the k-targeted dense path up to
/// `lanczos_threshold`, Lanczos beyond it.
pub fn resolve_eigen_path(n: usize, k: usize, lanczos_threshold: usize) -> EigenPath {
    if n <= DENSE_FULL_MAX || 4 * k >= n {
        EigenPath::DenseFull
    } else if n <= lanczos_threshold {
        EigenPath::DenseK
    } else {
        EigenPath::Lanczos
    }
}

/// Scale a dense similarity matrix into the symmetric normalized
/// Laplacian `L = D^{−1/2} S D^{−1/2}` (Eq. 2) **in place**, returning
/// the degree vector (callers of the random-walk variant reuse it).
///
/// Isolated vertices (zero degree) keep zero rows, matching the sparse
/// convention.
///
/// # Panics
/// Panics if `s` is not square.
pub fn normalized_laplacian_inplace(s: &mut Matrix) -> Vec<f64> {
    assert!(s.is_square(), "laplacian: matrix must be square");
    let n = s.nrows();
    let degrees = s.row_sums();
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    for (i, row) in s.as_mut_slice().chunks_exact_mut(n).enumerate() {
        let di = inv_sqrt[i];
        for (v, &dj) in row.iter_mut().zip(&inv_sqrt) {
            *v = di * *v * dj;
        }
    }
    degrees
}

/// Out-of-place [`normalized_laplacian_inplace`] for callers that need
/// to keep the similarity matrix.
pub fn normalized_laplacian(s: &Matrix) -> Matrix {
    let mut l = s.clone();
    normalized_laplacian_inplace(&mut l);
    l
}

/// Top-`k` eigenvectors of a dense symmetric matrix, stacked as
/// columns, computed via the given [`EigenPath`].
pub fn top_eigenvectors_with(l: &Matrix, k: usize, path: EigenPath, seed: u64) -> Matrix {
    let n = l.nrows();
    let k = k.min(n).max(1);
    match path {
        EigenPath::DenseFull => symmetric_eigen(l).top_k(k).1,
        EigenPath::DenseK => symmetric_eigen_topk(l, k).eigenvectors,
        EigenPath::Lanczos => {
            let mut opts = LanczosOptions::top(k);
            opts.seed = seed;
            lanczos(l, &opts).eigenvectors
        }
    }
}

/// Top-`k` eigenvectors with the automatic path resolution of
/// [`resolve_eigen_path`] (dense below `lanczos_threshold`, Lanczos
/// above — the crossover the paper's tridiagonalization discussion
/// motivates).
pub fn top_eigenvectors(l: &Matrix, k: usize, lanczos_threshold: usize, seed: u64) -> Matrix {
    let n = l.nrows();
    let k = k.min(n).max(1);
    let path = resolve_eigen_path(n, k, lanczos_threshold);
    top_eigenvectors_with(l, k, path, seed)
}

/// Row-normalize an embedding to unit length **in place**
/// (`Y_ij = X_ij / √(Σ_j X_ij²)`, the NJW step quoted in Section 3.2).
/// Zero rows are left at zero.
pub fn row_normalize(x: &mut Matrix) {
    let k = x.ncols();
    if k == 0 {
        return;
    }
    for row in x.as_mut_slice().chunks_exact_mut(k) {
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_linalg::symmetric_eigen;

    #[test]
    fn laplacian_of_uniform_similarity() {
        // S = all-ones (n=4): degrees 4, L = S/4 with eigenvalue 1.
        let s = Matrix::from_fn(4, 4, |_, _| 1.0);
        let l = normalized_laplacian(&s);
        assert!((l[(0, 0)] - 0.25).abs() < 1e-12);
        let eig = symmetric_eigen(&l);
        assert!((eig.eigenvalues[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn inplace_laplacian_matches_out_of_place_and_returns_degrees() {
        let s = Matrix::from_rows(&[&[1.0, 0.5, 0.1], &[0.5, 1.0, 0.2], &[0.1, 0.2, 1.0]]);
        let l = normalized_laplacian(&s);
        let mut inplace = s.clone();
        let degrees = normalized_laplacian_inplace(&mut inplace);
        assert_eq!(
            l.as_slice(),
            inplace.as_slice(),
            "bitwise equality expected"
        );
        for (got, want) in degrees.iter().zip(s.row_sums()) {
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn laplacian_top_eigenvalue_at_most_one() {
        // For any similarity matrix with non-negative entries, the
        // normalized Laplacian's spectrum lies in [-1, 1].
        let s = Matrix::from_rows(&[&[1.0, 0.5, 0.1], &[0.5, 1.0, 0.2], &[0.1, 0.2, 1.0]]);
        let l = normalized_laplacian(&s);
        let eig = symmetric_eigen(&l);
        for &v in &eig.eigenvalues {
            assert!((-1.0 - 1e-10..=1.0 + 1e-10).contains(&v));
        }
    }

    #[test]
    fn laplacian_handles_isolated_vertex() {
        let s = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0]]);
        let l = normalized_laplacian(&s);
        assert_eq!(l[(0, 0)], 0.0);
        assert_eq!(l[(0, 1)], 0.0);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_similarity_yields_indicator_eigenvectors() {
        // Two disconnected blocks: top-2 eigenvectors separate them.
        let mut s = Matrix::zeros(4, 4);
        for i in 0..2 {
            for j in 0..2 {
                s[(i, j)] = 1.0;
                s[(i + 2, j + 2)] = 1.0;
            }
        }
        let l = normalized_laplacian(&s);
        let mut y = top_eigenvectors(&l, 2, 1000, 0);
        row_normalize(&mut y);
        // Rows 0,1 identical; rows 2,3 identical; the two groups differ.
        let r0 = y.row(0).to_vec();
        let r2 = y.row(2).to_vec();
        assert!((r0[0] - y.row(1)[0]).abs() < 1e-8);
        assert!((r2[0] - y.row(3)[0]).abs() < 1e-8);
        let dot: f64 = r0.iter().zip(&r2).map(|(a, b)| a * b).sum();
        assert!(dot.abs() < 1e-8, "group embeddings not orthogonal");
    }

    #[test]
    fn row_normalize_unit_rows() {
        let mut m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        row_normalize(&mut m);
        assert!((m[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((m[(0, 1)] - 0.8).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn auto_path_picks_all_three_routes() {
        // Tiny → full dense; nearly-full spectrum → full dense;
        // mid-size → dense-k; past the threshold → Lanczos.
        assert_eq!(resolve_eigen_path(16, 3, 512), EigenPath::DenseFull);
        assert_eq!(resolve_eigen_path(100, 30, 512), EigenPath::DenseFull);
        assert_eq!(resolve_eigen_path(100, 5, 512), EigenPath::DenseK);
        assert_eq!(resolve_eigen_path(1000, 5, 512), EigenPath::Lanczos);
    }

    #[test]
    fn all_three_paths_agree_on_block_structure() {
        // A similarity with two clear blocks plus mild noise: the top-2
        // eigenspace is well separated, so all three solvers must span
        // the same subspace (compare |dot| per column after matching).
        let n = 80;
        let s = Matrix::from_fn(n, n, |i, j| {
            let same = (i < n / 2) == (j < n / 2);
            let base = if same { 1.0 } else { 0.05 };
            base + 0.01 * (((i * 31 + j * 17) % 13) as f64 / 13.0)
        });
        // Symmetrize the noise term.
        let s = Matrix::from_fn(n, n, |i, j| 0.5 * (s[(i, j)] + s[(j, i)]));
        let l = normalized_laplacian(&s);
        let full = top_eigenvectors_with(&l, 2, EigenPath::DenseFull, 7);
        let dk = top_eigenvectors_with(&l, 2, EigenPath::DenseK, 7);
        let lz = top_eigenvectors_with(&l, 2, EigenPath::Lanczos, 7);
        for c in 0..2 {
            let f = full.col(c);
            for (name, other) in [("dense_k", &dk), ("lanczos", &lz)] {
                let o = other.col(c);
                let dot: f64 = f.iter().zip(&o).map(|(a, b)| a * b).sum();
                assert!(
                    dot.abs() > 0.999,
                    "{name} column {c} diverges (|dot| = {})",
                    dot.abs()
                );
            }
        }
    }

    #[test]
    fn lanczos_path_matches_dense_path() {
        let s = Matrix::from_fn(30, 30, |i, j| {
            (-((i as f64 - j as f64) / 5.0).powi(2)).exp()
        });
        let l = normalized_laplacian(&s);
        let dense = top_eigenvectors(&l, 3, 1000, 7);
        let lz = top_eigenvectors_with(&l, 3, EigenPath::Lanczos, 7);
        // Eigenvectors match up to sign: compare absolute inner products.
        for c in 0..3 {
            let a = dense.col(c);
            let b = lz.col(c);
            let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                dot.abs() > 0.99,
                "column {c} mismatch (|dot| = {})",
                dot.abs()
            );
        }
    }
}
