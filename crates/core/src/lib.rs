//! DASC — Distributed Approximate Spectral Clustering — and the three
//! baselines it is evaluated against.
//!
//! The algorithm (Section 3 of the paper) has four steps:
//!
//! 1. LSH signatures for all points (`dasc-lsh`);
//! 2. grouping by signature with P-similar bucket merging;
//! 3. per-bucket similarity (sub-Gram) matrices (`dasc-kernel`);
//! 4. spectral clustering on each bucket's matrix.
//!
//! This crate provides:
//!
//! * [`KMeans`] — K-means with k-means++ seeding (the final step of
//!   every spectral method here);
//! * [`SpectralClustering`] — the exact Ng–Jordan–Weiss algorithm on the
//!   full kernel matrix (the paper's SC baseline, Mahout in the
//!   original);
//! * [`Dasc`] — the paper's contribution, runnable serially or as two
//!   MapReduce stages on the `dasc-mapreduce` substrate;
//! * [`ParallelSpectral`] — the PSC baseline (Chen et al.): sparse t-NN
//!   similarity + Lanczos;
//! * [`Nystrom`] — the NYST baseline (Nyström-extension spectral
//!   clustering, Fowlkes-style normalization).

pub mod dasc;
pub mod distributed_kmeans;
pub mod embedding;
pub mod kmeans;
pub mod local_scaling;
pub mod nystrom_sc;
pub mod psc;
pub mod regression;
pub mod spectral;
pub mod streaming;

pub use dasc::{
    bucket_cluster_count, cluster_bucket, cluster_bucket_flat, consolidate, stitch_distributed,
    Dasc, DascConfig, DascDistributedResult, DascResult, DascTrained, DascTrainedDistributed,
};
pub use dasc_linalg::KernelBackend;
pub use distributed_kmeans::{distributed_kmeans, DistributedKMeansResult};
pub use embedding::{
    normalized_laplacian, normalized_laplacian_inplace, resolve_eigen_path, row_normalize,
    top_eigenvectors, top_eigenvectors_with, EigenPath,
};
pub use kmeans::{AssignPath, KMeans, KMeansConfig, KMeansResult};
pub use local_scaling::{local_scales, local_scaling_similarity};
pub use nystrom_sc::{Nystrom, NystromConfig, NystromResult};
pub use psc::{ParallelSpectral, PscConfig, PscResult};
pub use regression::DascRegressor;
pub use spectral::{
    EigenBackend, LaplacianKind, SpectralBreakdown, SpectralClustering, SpectralConfig,
    SpectralResult,
};
pub use streaming::StreamingDasc;

/// A cluster assignment over `n` points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster id per point.
    pub assignments: Vec<usize>,
    /// Number of clusters referenced by `assignments`.
    pub num_clusters: usize,
}

impl Clustering {
    /// Validate and build.
    ///
    /// # Panics
    /// Panics if any assignment is `>= num_clusters`.
    pub fn new(assignments: Vec<usize>, num_clusters: usize) -> Self {
        assert!(
            assignments.iter().all(|&a| a < num_clusters.max(1)),
            "Clustering: assignment out of range"
        );
        Self {
            assignments,
            num_clusters,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True for an empty assignment.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.num_clusters];
        for &a in &self.assignments {
            s[a] += 1;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_sizes() {
        let c = Clustering::new(vec![0, 1, 1, 2], 3);
        assert_eq!(c.sizes(), vec![1, 2, 1]);
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_assignment_panics() {
        Clustering::new(vec![0, 3], 2);
    }
}
