//! DASC-accelerated kernel ridge regression.
//!
//! A second consumer of the paper's kernel-matrix approximation (the
//! abstract's claim that the approximation "can be used to scale many
//! kernel-based machine learning algorithms"): the same LSH partition
//! that drives approximate spectral clustering decomposes KRR's global
//! `(K + λI) α = y` solve into independent per-bucket solves, and at
//! query time a point is routed to its bucket by its LSH signature.

use dasc_kernel::{ApproximateGram, Kernel, RidgeModel};
use dasc_lsh::{BucketSet, SignatureModel};

use crate::dasc::{Dasc, DascConfig};

/// A fitted DASC kernel ridge regressor.
pub struct DascRegressor {
    model: SignatureModel,
    buckets: BucketSet,
    ridge: RidgeModel,
    train_points: Vec<Vec<f64>>,
    kernel: Kernel,
}

impl DascRegressor {
    /// Fit on a labelled dataset: LSH partition (steps 1–2 of DASC),
    /// block-diagonal Gram (step 3), then per-bucket ridge solves with
    /// regularization `lambda`.
    ///
    /// # Panics
    /// Panics on empty data, mismatched targets, or `lambda <= 0`.
    pub fn fit(config: &DascConfig, points: &[Vec<f64>], targets: &[f64], lambda: f64) -> Self {
        assert!(!points.is_empty(), "DascRegressor: empty dataset");
        assert_eq!(
            points.len(),
            targets.len(),
            "DascRegressor: target mismatch"
        );
        let dasc = Dasc::new(config.clone());
        let (model, buckets) = dasc.partition(points);
        let gram = ApproximateGram::from_buckets(points, &buckets, &config.kernel);
        let ridge = RidgeModel::fit_blocks(&gram, targets, config.kernel, lambda);
        Self {
            model,
            buckets,
            ridge,
            train_points: points.to_vec(),
            kernel: config.kernel,
        }
    }

    /// Number of buckets / ridge blocks.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Route a query point to a bucket: the bucket whose representative
    /// signature is Hamming-closest to the query's signature (exact
    /// match for any signature seen at training time that was not
    /// merged away).
    pub fn route(&self, x: &[f64]) -> usize {
        let sig = self.model.hash(x);
        self.buckets
            .buckets()
            .iter()
            .enumerate()
            .min_by_key(|(i, b)| (sig.hamming(&b.signature), *i))
            .map(|(i, _)| i)
            .expect("at least one bucket")
    }

    /// Predict using only the query's bucket — the O(Nᵢ) fast path that
    /// mirrors DASC's training-time approximation.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let block = self.route(x);
        self.ridge.predict_in_block(block, x, &self.train_points)
    }

    /// Predict summing over all buckets (O(N); tighter when the query
    /// sits near a bucket boundary).
    pub fn predict_full(&self, x: &[f64]) -> f64 {
        self.ridge.predict(x, &self.train_points)
    }

    /// Mean squared error of the fast path over a labelled set.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "mse: target mismatch");
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = self.predict(x) - y;
                e * e
            })
            .sum::<f64>()
            / xs.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_lsh::LshConfig;

    /// Two separated regimes with different linear responses.
    fn two_regimes(per: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..per {
            let t = i as f64 / per as f64;
            xs.push(vec![0.1 + 0.1 * t, 0.1]);
            ys.push(2.0 * t);
            xs.push(vec![0.8 + 0.1 * t, 0.9]);
            ys.push(-1.0 - t);
        }
        (xs, ys)
    }

    fn cfg(n: usize) -> DascConfig {
        DascConfig::for_dataset(n, 2)
            .kernel(Kernel::gaussian(0.1))
            .lsh(LshConfig::with_bits(2))
    }

    #[test]
    fn fits_and_predicts_training_regimes() {
        let (xs, ys) = two_regimes(40);
        let reg = DascRegressor::fit(&cfg(xs.len()), &xs, &ys, 1e-4);
        assert!(reg.num_buckets() >= 2);
        let mse = reg.mse(&xs, &ys);
        assert!(mse < 0.02, "training mse {mse}");
    }

    #[test]
    fn routing_sends_queries_to_their_regime() {
        let (xs, ys) = two_regimes(40);
        let reg = DascRegressor::fit(&cfg(xs.len()), &xs, &ys, 1e-4);
        let low = reg.route(&[0.15, 0.1]);
        let high = reg.route(&[0.85, 0.9]);
        assert_ne!(low, high, "regimes routed to the same bucket");
        // Predictions land in each regime's response range.
        assert!(reg.predict(&[0.15, 0.1]) > -0.5);
        assert!(reg.predict(&[0.85, 0.9]) < 0.0);
    }

    #[test]
    fn fast_path_close_to_full_path_off_boundary() {
        let (xs, ys) = two_regimes(40);
        let reg = DascRegressor::fit(&cfg(xs.len()), &xs, &ys, 1e-4);
        let q = [0.12, 0.1];
        let fast = reg.predict(&q);
        let full = reg.predict_full(&q);
        assert!((fast - full).abs() < 0.05, "fast {fast} vs full {full}");
    }

    #[test]
    #[should_panic(expected = "target mismatch")]
    fn mismatch_panics() {
        let (xs, _) = two_regimes(5);
        DascRegressor::fit(&cfg(xs.len()), &xs, &[0.0], 1e-3);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        DascRegressor::fit(&DascConfig::for_dataset(1, 1), &[], &[], 1e-3);
    }
}
