//! K-means with k-means++ seeding (Hartigan–Wong reference in the
//! paper; Lloyd iterations here, which is what Mahout runs).

use dasc_linalg::vector;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// K-means configuration.
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters `K`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
    /// Independent restarts; the run with the lowest inertia wins.
    /// K-means on spectral embeddings is seed-sensitive, so restarts are
    /// what keep the SC/DASC comparison about the approximation rather
    /// than seeding luck.
    pub restarts: usize,
}

impl KMeansConfig {
    /// Defaults: 100 iterations, 1e-6 tolerance, 8 restarts, fixed seed.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-means needs k >= 1");
        Self {
            k,
            max_iters: 100,
            tol: 1e-6,
            seed: 0xC1A55E5,
            restarts: 8,
        }
    }

    /// Builder: RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: restart count.
    pub fn restarts(mut self, r: usize) -> Self {
        assert!(r >= 1, "need at least one restart");
        self.restarts = r;
        self
    }
}

/// K-means result.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster id per point.
    pub assignments: Vec<usize>,
    /// Final centroids (k rows, or fewer if `k > n`).
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// K-means clusterer.
#[derive(Clone, Debug)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Create a clusterer from a configuration.
    pub fn new(config: KMeansConfig) -> Self {
        Self { config }
    }

    /// Cluster `points` into `k` groups: best of `restarts` independent
    /// k-means++ runs by inertia.
    ///
    /// `k` is clamped to the number of points. Deterministic per seed.
    ///
    /// # Panics
    /// Panics on an empty or ragged dataset.
    pub fn run(&self, points: &[Vec<f64>]) -> KMeansResult {
        // Restarts run concurrently: each derives its own RNG stream
        // from the seed, so the candidate runs are exactly the ones the
        // sequential loop produced. Selection then scans in restart
        // order keeping the first strictly-lower inertia, so the winner
        // is independent of thread count too.
        let restarts = self.config.restarts.max(1) as u64;
        let seeds: Vec<u64> = (0..restarts)
            .map(|r| self.config.seed ^ r.wrapping_mul(0xA076_1D64_78BD_642F))
            .collect();
        let candidates: Vec<KMeansResult> = seeds
            .par_iter()
            .map(|&seed| self.run_once(points, seed))
            .collect();
        let mut best: Option<KMeansResult> = None;
        for candidate in candidates {
            let better = best
                .as_ref()
                .map(|b| candidate.inertia < b.inertia)
                .unwrap_or(true);
            if better {
                best = Some(candidate);
            }
        }
        best.expect("at least one restart")
    }

    fn run_once(&self, points: &[Vec<f64>], seed: u64) -> KMeansResult {
        assert!(!points.is_empty(), "k-means: empty dataset");
        let d = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == d),
            "k-means: ragged dataset"
        );
        let n = points.len();
        let k = self.config.k.min(n);

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;

        for it in 0..self.config.max_iters {
            iterations = it + 1;
            // Assignment step (point-parallel).
            assignments = points
                .par_iter()
                .map(|p| nearest(p, &centroids).0)
                .collect();

            // Update step.
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for (p, &a) in points.iter().zip(&assignments) {
                vector::axpy(1.0, p, &mut sums[a]);
                counts[a] += 1;
            }
            let mut movement = 0.0;
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty cluster: re-seed at the point farthest from
                    // its centroid, the standard fix-up.
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let da = vector::sq_dist(a, &centroids[assignments[0]]);
                            let db = vector::sq_dist(b, &centroids[assignments[0]]);
                            da.partial_cmp(&db).expect("NaN")
                        })
                        .map(|(i, _)| i)
                        .expect("nonempty");
                    movement += vector::dist(&centroids[c], &points[far]);
                    centroids[c] = points[far].clone();
                    continue;
                }
                let mut new_c = sums[c].clone();
                vector::scale(1.0 / counts[c] as f64, &mut new_c);
                movement += vector::dist(&centroids[c], &new_c);
                centroids[c] = new_c;
            }
            if movement <= self.config.tol {
                break;
            }
        }

        // Final assignment against the converged centroids.
        assignments = points
            .par_iter()
            .map(|p| nearest(p, &centroids).0)
            .collect();
        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| vector::sq_dist(p, &centroids[a]))
            .sum();

        KMeansResult {
            assignments,
            centroids,
            inertia,
            iterations,
        }
    }
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, cen) in centroids.iter().enumerate() {
        let d = vector::sq_dist(p, cen);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, each next centroid drawn
/// with probability proportional to squared distance from the nearest
/// chosen centroid.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| vector::sq_dist(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick any.
            rng.gen_range(0..n)
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if u < w {
                    chosen = i;
                    break;
                }
                u -= w;
            }
            chosen
        };
        centroids.push(points[next].clone());
        let latest = centroids.last().expect("just pushed").clone();
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(vector::sq_dist(p, &latest));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let res = KMeans::new(KMeansConfig::new(2)).run(&two_blobs());
        // Even indices are blob A, odd are blob B.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for i in 0..40 {
            assert_eq!(res.assignments[i], if i % 2 == 0 { a } else { b });
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs();
        let i1 = KMeans::new(KMeansConfig::new(1)).run(&pts).inertia;
        let i2 = KMeans::new(KMeansConfig::new(2)).run(&pts).inertia;
        assert!(i2 < i1);
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let res = KMeans::new(KMeansConfig::new(10)).run(&pts);
        assert_eq!(res.centroids.len(), 2);
        assert!((res.inertia - 0.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = two_blobs();
        let a = KMeans::new(KMeansConfig::new(3).seed(1)).run(&pts);
        let b = KMeans::new(KMeansConfig::new(3).seed(1)).run(&pts);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let res = KMeans::new(KMeansConfig::new(1)).run(&pts);
        assert_eq!(res.centroids[0], vec![1.0, 2.0]);
    }

    #[test]
    fn identical_points_are_fine() {
        let pts = vec![vec![3.0]; 10];
        let res = KMeans::new(KMeansConfig::new(3)).run(&pts);
        assert_eq!(res.inertia, 0.0);
        assert_eq!(res.assignments.len(), 10);
    }

    #[test]
    fn k1_assigns_everything_to_zero() {
        let res = KMeans::new(KMeansConfig::new(1)).run(&two_blobs());
        assert!(res.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        KMeans::new(KMeansConfig::new(1)).run(&[]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        KMeansConfig::new(0);
    }
}
