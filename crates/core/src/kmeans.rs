//! K-means with k-means++ seeding (Hartigan–Wong reference in the
//! paper; Lloyd iterations here, which is what Mahout runs).
//!
//! Hot-path layout: points and centroids live in flat row-major
//! buffers. The assignment step is the O(n·k) cost, and for large
//! inputs it runs as point×centroid squared-distance *tiles* through
//! the `dasc_linalg::gemm` micro-kernel (norm expansion, per-iteration
//! centroid norms) instead of a scalar `sq_dist` per pair — see
//! [`AssignPath`]. Tie-breaking is bitwise deterministic on both paths:
//! the lowest centroid index wins.

use dasc_linalg::{gemm, vector, FlatPoints};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// How the assignment step computes point→centroid distances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AssignPath {
    /// Tiled for at least [`TILED_MIN_POINTS`] points, scalar below —
    /// the default.
    #[default]
    Auto,
    /// Always one scalar `sq_dist` per (point, centroid) pair — the
    /// reference path, bit-identical to the pre-tiling implementation.
    Scalar,
    /// Always distance tiles via the GEMM micro-kernel. Distances agree
    /// with the scalar path to a few ULPs (norm-expansion cancellation),
    /// so assignments can differ only on near-exact ties.
    Tiled,
}

/// Smallest dataset [`AssignPath::Auto`] routes to the tiled assignment
/// step; below this the per-iteration norm pass outweighs the tile
/// reuse. Matches the Gram layer's `dasc_kernel::TILED_MIN_POINTS`.
pub const TILED_MIN_POINTS: usize = 64;

/// Rows per assignment tile: each pool task owns this many points'
/// assignments, computes their distance tile against all centroids, and
/// writes a disjoint chunk — deterministic at any thread count.
const ASSIGN_TILE_ROWS: usize = 128;

/// Smallest point count worth fanning the assignment step across the
/// thread pool; below it, per-task hand-off outweighs the O(n·k) fill
/// (the same scheduling cliff `dasc_kernel::gram::PARALLEL_MIN_POINTS`
/// guards). Tile contents depend only on the point range, so the
/// sequential branch is bit-identical to the parallel one.
pub const PARALLEL_MIN_POINTS: usize = 256;

/// K-means configuration.
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters `K`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
    /// Independent restarts; the run with the lowest inertia wins.
    /// K-means on spectral embeddings is seed-sensitive, so restarts are
    /// what keep the SC/DASC comparison about the approximation rather
    /// than seeding luck.
    pub restarts: usize,
    /// Assignment-step implementation (see [`AssignPath`]).
    pub assign_path: AssignPath,
}

impl KMeansConfig {
    /// Defaults: 100 iterations, 1e-6 tolerance, 8 restarts, fixed seed,
    /// automatic assignment path.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-means needs k >= 1");
        Self {
            k,
            max_iters: 100,
            tol: 1e-6,
            seed: 0xC1A55E5,
            restarts: 8,
            assign_path: AssignPath::Auto,
        }
    }

    /// Builder: RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: restart count.
    pub fn restarts(mut self, r: usize) -> Self {
        assert!(r >= 1, "need at least one restart");
        self.restarts = r;
        self
    }

    /// Builder: assignment path (A/B testing and equivalence suites).
    pub fn assign_path(mut self, path: AssignPath) -> Self {
        self.assign_path = path;
        self
    }
}

/// K-means result.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster id per point.
    pub assignments: Vec<usize>,
    /// Final centroids (k rows, or fewer if `k > n`).
    pub centroids: Vec<Vec<f64>>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// K-means clusterer.
#[derive(Clone, Debug)]
pub struct KMeans {
    config: KMeansConfig,
}

impl KMeans {
    /// Create a clusterer from a configuration.
    pub fn new(config: KMeansConfig) -> Self {
        Self { config }
    }

    /// Cluster `points` into `k` groups: best of `restarts` independent
    /// k-means++ runs by inertia.
    ///
    /// Flattens the rows once and delegates to [`KMeans::run_flat`].
    ///
    /// # Panics
    /// Panics on an empty or ragged dataset.
    pub fn run(&self, points: &[Vec<f64>]) -> KMeansResult {
        assert!(!points.is_empty(), "k-means: empty dataset");
        self.run_flat(&FlatPoints::from_rows(points))
    }

    /// [`KMeans::run`] over pre-flattened points — the hot path (the
    /// spectral pipeline hands its embedding matrix over without
    /// re-nesting it).
    ///
    /// `k` is clamped to the number of points. Deterministic per seed.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn run_flat(&self, points: &FlatPoints) -> KMeansResult {
        assert!(!points.is_empty(), "k-means: empty dataset");
        // Restarts run concurrently: each derives its own RNG stream
        // from the seed, so the candidate runs are exactly the ones the
        // sequential loop produced. Selection then scans in restart
        // order keeping the first strictly-lower inertia, so the winner
        // is independent of thread count too.
        let restarts = self.config.restarts.max(1) as u64;
        let seeds: Vec<u64> = (0..restarts)
            .map(|r| self.config.seed ^ r.wrapping_mul(0xA076_1D64_78BD_642F))
            .collect();
        let candidates: Vec<KMeansResult> = seeds
            .par_iter()
            .map(|&seed| self.run_once(points, seed))
            .collect();
        let mut best: Option<KMeansResult> = None;
        for candidate in candidates {
            let better = best
                .as_ref()
                .map(|b| candidate.inertia < b.inertia)
                .unwrap_or(true);
            if better {
                best = Some(candidate);
            }
        }
        best.expect("at least one restart")
    }

    fn tiled_assignment(&self, n: usize) -> bool {
        match self.config.assign_path {
            AssignPath::Auto => n >= TILED_MIN_POINTS,
            AssignPath::Scalar => false,
            AssignPath::Tiled => true,
        }
    }

    fn run_once(&self, points: &FlatPoints, seed: u64) -> KMeansResult {
        let n = points.len();
        let d = points.dim();
        let k = self.config.k.min(n);
        let tiled = self.tiled_assignment(n);

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Flat `k × d` centroid buffer; row `c` is centroid `c`.
        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;
        // Point norms are iteration-invariant; centroid norms are
        // recomputed per iteration (they're O(k·d)).
        let point_norms = if tiled {
            gemm::row_sq_norms(points)
        } else {
            Vec::new()
        };

        for it in 0..self.config.max_iters {
            iterations = it + 1;
            assign_step(points, &point_norms, &centroids, k, &mut assignments, tiled);

            // Update step: accumulate flat per-cluster sums in place.
            let mut sums = vec![0.0f64; k * d];
            let mut counts = vec![0usize; k];
            for (i, &a) in assignments.iter().enumerate() {
                vector::axpy(1.0, points.row(i), &mut sums[a * d..(a + 1) * d]);
                counts[a] += 1;
            }
            let mut movement = 0.0;
            for c in 0..k {
                let crow = c * d..(c + 1) * d;
                if counts[c] == 0 {
                    // Empty cluster: re-seed at the point farthest from
                    // *its own* assigned centroid, the standard fix-up.
                    let far = farthest_from_own_centroid(points, &assignments, &centroids);
                    movement += vector::dist(&centroids[crow.clone()], points.row(far));
                    centroids[crow].copy_from_slice(points.row(far));
                    continue;
                }
                // New centroid = sums/count; movement accumulated as the
                // L2 distance to the old position, computed in the same
                // dimension order `vector::dist` walks.
                let inv = 1.0 / counts[c] as f64;
                let mut move_sq = 0.0;
                for (old, s) in centroids[crow].iter_mut().zip(&sums[c * d..(c + 1) * d]) {
                    let new = s * inv;
                    let delta = *old - new;
                    move_sq += delta * delta;
                    *old = new;
                }
                movement += move_sq.sqrt();
            }
            if movement <= self.config.tol {
                break;
            }
        }

        // Final assignment against the converged centroids.
        assign_step(points, &point_norms, &centroids, k, &mut assignments, tiled);
        let inertia = assignments
            .iter()
            .enumerate()
            .map(|(i, &a)| vector::sq_dist(points.row(i), &centroids[a * d..(a + 1) * d]))
            .sum();

        KMeansResult {
            assignments,
            centroids: centroids.chunks(d.max(1)).map(<[f64]>::to_vec).collect(),
            inertia,
            iterations,
        }
    }
}

/// Fill `assignments` with each point's nearest centroid (lowest index
/// wins ties on both paths).
///
/// Scalar path: one `sq_dist` per pair, point-parallel. Tiled path:
/// [`ASSIGN_TILE_ROWS`]-point distance tiles against the whole centroid
/// set via the fused GEMM driver, then an argmin scan per tile row.
/// Both paths chunk the output so every pool task writes a disjoint
/// range — results are identical at any thread count.
fn assign_step(
    points: &FlatPoints,
    point_norms: &[f64],
    centroids: &[f64],
    k: usize,
    assignments: &mut [usize],
    tiled: bool,
) {
    let d = points.dim();
    if k <= 1 {
        assignments.fill(0);
        return;
    }
    let parallel = points.len() >= PARALLEL_MIN_POINTS;
    if !tiled {
        let fill = |(ci, out): (usize, &mut [usize])| {
            let r0 = ci * ASSIGN_TILE_ROWS;
            for (li, a) in out.iter_mut().enumerate() {
                *a = nearest(points.row(r0 + li), centroids, k, d).0;
            }
        };
        if parallel {
            assignments
                .par_chunks_mut(ASSIGN_TILE_ROWS)
                .enumerate()
                .for_each(fill);
        } else {
            assignments
                .chunks_mut(ASSIGN_TILE_ROWS)
                .enumerate()
                .for_each(fill);
        }
        return;
    }
    let centroid_norms = gemm::row_sq_norms_flat(centroids, d);
    let fill = |(ci, out): (usize, &mut [usize])| {
        let r0 = ci * ASSIGN_TILE_ROWS;
        let rows = out.len();
        let mut tile = vec![0.0f64; rows * k];
        gemm::sq_dists_into(
            points.rows(r0, r0 + rows),
            rows,
            &point_norms[r0..r0 + rows],
            centroids,
            k,
            &centroid_norms,
            d,
            &mut tile,
            k,
        );
        for (li, a) in out.iter_mut().enumerate() {
            let row = &tile[li * k..(li + 1) * k];
            let mut best = (0usize, f64::INFINITY);
            for (c, &dist) in row.iter().enumerate() {
                if dist < best.1 {
                    best = (c, dist);
                }
            }
            *a = best.0;
        }
    };
    if parallel {
        assignments
            .par_chunks_mut(ASSIGN_TILE_ROWS)
            .enumerate()
            .for_each(fill);
    } else {
        assignments
            .chunks_mut(ASSIGN_TILE_ROWS)
            .enumerate()
            .for_each(fill);
    }
}

/// Nearest centroid in a flat `k × d` buffer: `(index, sq_dist)`, lowest
/// index on ties.
fn nearest(p: &[f64], centroids: &[f64], k: usize, d: usize) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for c in 0..k {
        let dist = vector::sq_dist(p, &centroids[c * d..(c + 1) * d]);
        if dist < best.1 {
            best = (c, dist);
        }
    }
    best
}

/// The point farthest from *its own* assigned centroid — the re-seed
/// target when a cluster empties. Ties keep the last (highest-index)
/// maximum, matching `Iterator::max_by`.
fn farthest_from_own_centroid(
    points: &FlatPoints,
    assignments: &[usize],
    centroids: &[f64],
) -> usize {
    let d = points.dim();
    (0..points.len())
        .max_by(|&a, &b| {
            let da = vector::sq_dist(points.row(a), &centroids[assignments[a] * d..][..d]);
            let db = vector::sq_dist(points.row(b), &centroids[assignments[b] * d..][..d]);
            da.partial_cmp(&db).expect("NaN")
        })
        .expect("nonempty")
}

/// k-means++ seeding: first centroid uniform, each next centroid drawn
/// with probability proportional to squared distance from the nearest
/// chosen centroid. Returns a flat `k × d` centroid buffer; candidate
/// rows are borrowed from `points`, never cloned.
fn kmeanspp_init(points: &FlatPoints, k: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    let n = points.len();
    let d = points.dim();
    let mut centroids: Vec<f64> = Vec::with_capacity(k * d);
    let mut chosen_count = 1;
    centroids.extend_from_slice(points.row(rng.gen_range(0..n)));
    let mut d2: Vec<f64> = (0..n)
        .map(|i| vector::sq_dist(points.row(i), &centroids[..d]))
        .collect();
    while chosen_count < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick any.
            rng.gen_range(0..n)
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if u < w {
                    chosen = i;
                    break;
                }
                u -= w;
            }
            chosen
        };
        let latest = points.row(next);
        for (i, dd) in d2.iter_mut().enumerate() {
            *dd = dd.min(vector::sq_dist(points.row(i), latest));
        }
        centroids.extend_from_slice(latest);
        chosen_count += 1;
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let res = KMeans::new(KMeansConfig::new(2)).run(&two_blobs());
        // Even indices are blob A, odd are blob B.
        let a = res.assignments[0];
        let b = res.assignments[1];
        assert_ne!(a, b);
        for i in 0..40 {
            assert_eq!(res.assignments[i], if i % 2 == 0 { a } else { b });
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs();
        let i1 = KMeans::new(KMeansConfig::new(1)).run(&pts).inertia;
        let i2 = KMeans::new(KMeansConfig::new(2)).run(&pts).inertia;
        assert!(i2 < i1);
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let res = KMeans::new(KMeansConfig::new(10)).run(&pts);
        assert_eq!(res.centroids.len(), 2);
        assert!((res.inertia - 0.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = two_blobs();
        let a = KMeans::new(KMeansConfig::new(3).seed(1)).run(&pts);
        let b = KMeans::new(KMeansConfig::new(3).seed(1)).run(&pts);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let res = KMeans::new(KMeansConfig::new(1)).run(&pts);
        assert_eq!(res.centroids[0], vec![1.0, 2.0]);
    }

    #[test]
    fn identical_points_are_fine() {
        let pts = vec![vec![3.0]; 10];
        let res = KMeans::new(KMeansConfig::new(3)).run(&pts);
        assert_eq!(res.inertia, 0.0);
        assert_eq!(res.assignments.len(), 10);
    }

    #[test]
    fn k1_assigns_everything_to_zero() {
        let res = KMeans::new(KMeansConfig::new(1)).run(&two_blobs());
        assert!(res.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn tiled_and_scalar_paths_agree_on_blobs() {
        // Same seeds, same data: the tiled assignment step must land on
        // the same clustering as the scalar reference (distances agree
        // to ULPs; blob fixtures have no near-exact ties).
        let pts = two_blobs();
        let scalar = KMeans::new(KMeansConfig::new(2).assign_path(AssignPath::Scalar)).run(&pts);
        let tiled = KMeans::new(KMeansConfig::new(2).assign_path(AssignPath::Tiled)).run(&pts);
        assert_eq!(scalar.assignments, tiled.assignments);
        assert!((scalar.inertia - tiled.inertia).abs() < 1e-9);
    }

    #[test]
    fn flat_entry_point_matches_nested() {
        let pts = two_blobs();
        let flat = FlatPoints::from_rows(&pts);
        let km = KMeans::new(KMeansConfig::new(3).seed(9));
        let a = km.run(&pts);
        let b = km.run_flat(&flat);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn reseed_targets_point_farthest_from_its_own_centroid() {
        // Regression for the empty-cluster re-seed bug: the farthest
        // point must be measured against each point's *own* centroid,
        // not the first point's. Here p1 sits exactly on its centroid
        // (distance 0) but far from p0's; p2 is genuinely 5.0 away from
        // its own. The buggy metric picked p1 (index 1); correct is p2.
        let points = FlatPoints::from_rows(&[vec![0.0], vec![100.0], vec![5.0]]);
        let centroids = vec![0.0, 100.0]; // c0 = [0], c1 = [100]
        let assignments = vec![0, 1, 0];
        assert_eq!(
            farthest_from_own_centroid(&points, &assignments, &centroids),
            2
        );
    }

    #[test]
    fn empty_cluster_reseed_converges() {
        // Two distinct locations, k = 3: k-means++ must duplicate a
        // centroid (total d² mass hits zero), so one cluster empties and
        // the re-seed branch runs every iteration. It must converge and
        // leave a valid clustering.
        let mut pts = vec![vec![0.0]; 5];
        pts.extend(vec![vec![10.0]; 5]);
        let res = KMeans::new(KMeansConfig::new(3)).run(&pts);
        assert_eq!(res.assignments.len(), 10);
        assert!(res.assignments.iter().all(|&a| a < 3));
        assert_eq!(res.inertia, 0.0, "both locations sit on a centroid");
        // The two locations never share a cluster.
        assert_ne!(res.assignments[0], res.assignments[9]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        KMeans::new(KMeansConfig::new(1)).run(&[]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        KMeansConfig::new(0);
    }
}
