//! NYST — spectral clustering via the Nyström extension (Schuetter &
//! Shi 2011 / Fowlkes et al. 2004), the paper's third baseline.
//!
//! `m` landmarks are sampled; approximate degrees are computed through
//! the Nyström-reconstructed kernel `K̃ = C W⁺ Cᵀ`; the normalized
//! Laplacian's landmark block is eigendecomposed and extended to all
//! points; the embedding is orthonormalized, row-normalized, and
//! K-means'd.

use dasc_kernel::Kernel;
use dasc_linalg::{qr, symmetric_eigen, FlatPoints, Matrix};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::embedding::row_normalize;
use crate::kmeans::{KMeans, KMeansConfig};
use crate::Clustering;

/// NYST configuration.
#[derive(Clone, Debug)]
pub struct NystromConfig {
    /// Number of clusters `K`.
    pub k: usize,
    /// Kernel for similarities.
    pub kernel: Kernel,
    /// Number of landmark samples `m`; `None` picks
    /// `max(8K, ⌈√N⌉)` clamped to `N`.
    pub landmarks: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl NystromConfig {
    /// Defaults: Gaussian σ = 0.2, automatic landmark count.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "NYST needs k >= 1");
        Self {
            k,
            kernel: Kernel::gaussian(0.2),
            landmarks: None,
            seed: 0x2757,
        }
    }

    /// Builder: kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: landmark count.
    pub fn landmarks(mut self, m: usize) -> Self {
        assert!(m >= 1, "need at least one landmark");
        self.landmarks = Some(m);
        self
    }

    /// Builder: seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn effective_landmarks(&self, n: usize) -> usize {
        let auto = (8 * self.k).max((n as f64).sqrt().ceil() as usize);
        self.landmarks
            .unwrap_or(auto)
            .clamp(self.k.min(n).max(1), n)
    }
}

/// Result of a NYST run with memory accounting.
#[derive(Clone, Debug)]
pub struct NystromResult {
    /// The clustering.
    pub clustering: Clustering,
    /// Landmark count used.
    pub landmarks: usize,
    /// Bytes held by `W` and `C` at the 4-byte convention
    /// (`4(m² + Nm)`) — NYST's memory footprint.
    pub memory_bytes: usize,
}

/// The NYST baseline.
#[derive(Clone, Debug)]
pub struct Nystrom {
    config: NystromConfig,
}

impl Nystrom {
    /// Create from a configuration.
    pub fn new(config: NystromConfig) -> Self {
        Self { config }
    }

    /// Run NYST on raw points.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn run(&self, points: &[Vec<f64>]) -> NystromResult {
        assert!(!points.is_empty(), "NYST: empty dataset");
        let n = points.len();
        let k = self.config.k.min(n).max(1);
        let m = self.config.effective_landmarks(n);
        let memory_bytes = 4 * (m * m + n * m);

        if k == 1 || n == 1 {
            return NystromResult {
                clustering: Clustering::new(vec![0; n], 1),
                landmarks: m,
                memory_bytes,
            };
        }

        // Landmark sample (uniform, deterministic).
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let mut landmarks: Vec<usize> = idx.into_iter().take(m).collect();
        landmarks.sort_unstable();

        // W (m×m) and C (n×m).
        let kernel = &self.config.kernel;
        let mut w = Matrix::zeros(m, m);
        for (a, &i) in landmarks.iter().enumerate() {
            for (b, &j) in landmarks.iter().enumerate().skip(a) {
                let v = kernel.eval(&points[i], &points[j]);
                w[(a, b)] = v;
                w[(b, a)] = v;
            }
        }
        let mut c = Matrix::zeros(n, m);
        for i in 0..n {
            for (b, &j) in landmarks.iter().enumerate() {
                c[(i, b)] = kernel.eval(&points[i], &points[j]);
            }
        }

        // Approximate degrees d ≈ K̃·1 = C W⁺ (Cᵀ·1).
        let eig_w = symmetric_eigen(&w);
        let cutoff = eig_w.eigenvalues.last().map(|v| v.abs()).unwrap_or(0.0) * 1e-12;
        let ct1: Vec<f64> = (0..m).map(|b| c.col(b).iter().sum()).collect();
        // W⁺ ct1 = U diag(1/λ) Uᵀ ct1 with small-λ cutoff.
        let mut ut_ct1 = vec![0.0; m];
        #[allow(clippy::needless_range_loop)] // j pairs eigenvector cols with ut_ct1
        for j in 0..m {
            let col = eig_w.eigenvector(j);
            ut_ct1[j] = col.iter().zip(&ct1).map(|(a, b)| a * b).sum();
        }
        let mut wp_ct1 = vec![0.0; m];
        #[allow(clippy::needless_range_loop)] // j pairs eigenvalues with ut_ct1
        for j in 0..m {
            let lam = eig_w.eigenvalues[j];
            if lam.abs() > cutoff {
                let scale = ut_ct1[j] / lam;
                let col = eig_w.eigenvector(j);
                for (a, &u) in col.iter().enumerate() {
                    wp_ct1[a] += scale * u;
                }
            }
        }
        let mut d = vec![0.0; n];
        for i in 0..n {
            d[i] = (0..m)
                .map(|b| c[(i, b)] * wp_ct1[b])
                .sum::<f64>()
                .max(1e-12);
        }
        let dm: Vec<f64> = landmarks.iter().map(|&i| d[i]).collect();

        // Normalized Laplacian blocks: Ŵ and Ĉ.
        let mut w_hat = Matrix::zeros(m, m);
        for a in 0..m {
            for b in 0..m {
                w_hat[(a, b)] = w[(a, b)] / (dm[a] * dm[b]).sqrt();
            }
        }
        let mut c_hat = Matrix::zeros(n, m);
        for i in 0..n {
            for b in 0..m {
                c_hat[(i, b)] = c[(i, b)] / (d[i] * dm[b]).sqrt();
            }
        }

        // Nyström extension of the top-k eigenvectors of L̂.
        let eig = symmetric_eigen(&w_hat);
        let (vals, vecs) = eig.top_k(k);
        let val_cutoff = vals.first().map(|v| v.abs()).unwrap_or(0.0) * 1e-10;
        let mut v = Matrix::zeros(n, k);
        for col in 0..k {
            let lam = vals[col];
            if lam.abs() <= val_cutoff {
                continue;
            }
            for i in 0..n {
                let mut acc = 0.0;
                for b in 0..m {
                    acc += c_hat[(i, b)] * vecs[(b, col)];
                }
                v[(i, col)] = acc / lam;
            }
        }
        let mut y = if n >= k { qr(&v).q } else { v };
        row_normalize(&mut y);

        let km = KMeans::new(KMeansConfig::new(k).seed(self.config.seed));
        let res = km.run_flat(&FlatPoints::from_flat(y.into_vec(), k));
        NystromResult {
            clustering: Clustering::new(res.assignments, k),
            landmarks: m,
            memory_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..per {
            pts.push(vec![0.1 + 0.002 * i as f64, 0.15]);
            labels.push(0);
            pts.push(vec![0.85 - 0.002 * i as f64, 0.9]);
            labels.push(1);
        }
        (pts, labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (pts, truth) = two_blobs(40);
        let res = Nystrom::new(NystromConfig::new(2).landmarks(20)).run(&pts);
        let acc = dasc_metrics::accuracy(&res.clustering.assignments, &truth);
        assert!(acc > 0.9, "accuracy {acc}");
        assert_eq!(res.landmarks, 20);
    }

    #[test]
    fn memory_is_subquadratic() {
        let (pts, _) = two_blobs(50);
        let res = Nystrom::new(NystromConfig::new(2).landmarks(10)).run(&pts);
        assert_eq!(res.memory_bytes, 4 * (100 + 100 * 10));
        assert!(res.memory_bytes < 4 * 100 * 100);
    }

    #[test]
    fn auto_landmarks_reasonable() {
        let cfg = NystromConfig::new(3);
        assert_eq!(cfg.effective_landmarks(10_000), 100);
        // Clamped to n.
        assert_eq!(cfg.effective_landmarks(5), 5);
    }

    #[test]
    fn k1_trivial() {
        let (pts, _) = two_blobs(5);
        let res = Nystrom::new(NystromConfig::new(1)).run(&pts);
        assert!(res.clustering.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let (pts, _) = two_blobs(25);
        let a = Nystrom::new(NystromConfig::new(2).seed(9)).run(&pts);
        let b = Nystrom::new(NystromConfig::new(2).seed(9)).run(&pts);
        assert_eq!(a.clustering.assignments, b.clustering.assignments);
    }

    #[test]
    fn all_points_as_landmarks_matches_exact_sc_quality() {
        let (pts, truth) = two_blobs(25);
        let res = Nystrom::new(NystromConfig::new(2).landmarks(50)).run(&pts);
        let acc = dasc_metrics::accuracy(&res.clustering.assignments, &truth);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        Nystrom::new(NystromConfig::new(2)).run(&[]);
    }
}
