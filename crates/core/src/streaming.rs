//! Incremental (streaming) DASC.
//!
//! Section 5.1 of the paper: "the partitioning step allows our DASC
//! algorithm to process very large scale data sets, because the data
//! partitions (or splits) are incrementally processed, split by split
//! … Intermediate results of hashing (buckets) are stored on S3 and
//! then incrementally processed".
//!
//! This module reproduces that execution mode: chunks of points arrive
//! one at a time, are hashed immediately, and are spilled to the
//! replicated DFS — the driver holds only one 16-byte signature per
//! point between stages. The clustering stage then pulls each bucket's
//! members back from storage, one bucket at a time.

use dasc_kernel::full_gram;
use dasc_lsh::{BucketSet, Signature, SignatureModel};
use dasc_mapreduce::{ClusterConfig, Dfs};

use crate::dasc::{bucket_cluster_count, DascConfig};
use crate::spectral::{SpectralClustering, SpectralConfig};
use crate::Clustering;

/// A streaming DASC session: push chunks, then finish.
pub struct StreamingDasc {
    config: DascConfig,
    model: SignatureModel,
    dfs: Dfs,
    dims: usize,
    signatures: Vec<Signature>,
    /// Number of points per spilled chunk (prefix structure for
    /// index → chunk resolution).
    chunk_lens: Vec<usize>,
}

impl StreamingDasc {
    /// Start a session. The signature model is fitted on `sample`
    /// (typically the first split — the thresholds need representative
    /// marginals, not the whole corpus).
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn new(config: DascConfig, cluster: ClusterConfig, sample: &[Vec<f64>]) -> Self {
        assert!(!sample.is_empty(), "StreamingDasc: empty fitting sample");
        let model = SignatureModel::fit(sample, &config.lsh);
        let dims = sample[0].len();
        Self {
            config,
            model,
            dfs: Dfs::new(cluster),
            dims,
            signatures: Vec::new(),
            chunk_lens: Vec::new(),
        }
    }

    /// Hash a chunk and spill it to the DFS. Only the signatures stay in
    /// driver memory.
    ///
    /// # Panics
    /// Panics on dimension mismatch with the fitting sample.
    pub fn push_chunk(&mut self, chunk: &[Vec<f64>]) {
        if chunk.is_empty() {
            return;
        }
        assert!(
            chunk.iter().all(|p| p.len() == self.dims),
            "StreamingDasc: chunk dimensionality mismatch"
        );
        for p in chunk {
            self.signatures.push(self.model.hash(p));
        }
        let chunk_id = self.chunk_lens.len();
        self.dfs
            .put(&format!("/stream/chunk-{chunk_id:06}"), encode(chunk))
            .expect("fresh chunk path");
        self.chunk_lens.push(chunk.len());
    }

    /// Points ingested so far.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True before any chunk arrived.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Bytes of point data spilled to the DFS (logical, pre-replication).
    pub fn spilled_bytes(&self) -> usize {
        self.dfs.logical_bytes()
    }

    /// Close the stream: form buckets from the accumulated signatures,
    /// pull each bucket's points back from the DFS, cluster per bucket,
    /// and stitch. Returns `(clustering, buckets)`.
    ///
    /// # Panics
    /// Panics if no points were pushed.
    pub fn finish(self) -> (Clustering, BucketSet) {
        assert!(!self.signatures.is_empty(), "StreamingDasc: no data pushed");
        let n = self.signatures.len();
        let buckets = BucketSet::from_signatures(&self.signatures)
            .merge_with(self.config.lsh.merge_strategy, self.config.lsh.merge_p);

        // Chunk prefix offsets for index resolution.
        let mut offsets = vec![0usize; self.chunk_lens.len() + 1];
        for (i, &l) in self.chunk_lens.iter().enumerate() {
            offsets[i + 1] = offsets[i] + l;
        }

        let mut assignments = vec![0usize; n];
        let mut cluster_offset = 0usize;
        for (bi, bucket) in buckets.buckets().iter().enumerate() {
            // Fetch members chunk by chunk (each chunk read at most once
            // per bucket).
            let mut members_points: Vec<Vec<f64>> = Vec::with_capacity(bucket.members.len());
            let mut cursor = 0usize;
            while cursor < bucket.members.len() {
                let chunk_id = offsets.partition_point(|&o| o <= bucket.members[cursor]) - 1;
                let bytes = self
                    .dfs
                    .get(&format!("/stream/chunk-{chunk_id:06}"))
                    .expect("spilled chunk exists");
                let chunk = decode(&bytes, self.dims);
                while cursor < bucket.members.len()
                    && bucket.members[cursor] < offsets[chunk_id + 1]
                {
                    members_points.push(chunk[bucket.members[cursor] - offsets[chunk_id]].clone());
                    cursor += 1;
                }
            }

            let ki = bucket_cluster_count(self.config.k, bucket.members.len(), n);
            let similarity = full_gram(&members_points, &self.config.kernel);
            let mut cfg = SpectralConfig::new(ki)
                .kernel(self.config.kernel)
                .seed(self.config.seed ^ (bi as u64).wrapping_mul(0x9E37_79B9));
            cfg.lanczos_threshold = self.config.lanczos_threshold;
            let (c, _) = SpectralClustering::new(cfg).run_on_similarity_owned(similarity);
            for (local, &point) in bucket.members.iter().enumerate() {
                assignments[point] = cluster_offset + c.assignments[local];
            }
            cluster_offset += c.num_clusters;
        }

        (Clustering::new(assignments, cluster_offset.max(1)), buckets)
    }
}

fn encode(points: &[Vec<f64>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(points.len() * points[0].len() * 8);
    for p in points {
        for &v in p {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn decode(bytes: &[u8], dims: usize) -> Vec<Vec<f64>> {
    assert_eq!(bytes.len() % (dims * 8), 0, "corrupt chunk");
    bytes
        .chunks_exact(dims * 8)
        .map(|row| {
            row.chunks_exact(8)
                .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_kernel::Kernel;
    use dasc_lsh::LshConfig;

    fn four_blobs(per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for i in 0..per {
                pts.push(vec![
                    c[0] + (i % 7) as f64 * 0.004,
                    c[1] + (i % 5) as f64 * 0.004,
                ]);
                labels.push(ci);
            }
        }
        (pts, labels)
    }

    fn config(n: usize) -> DascConfig {
        DascConfig::for_dataset(n, 4)
            .kernel(Kernel::gaussian(0.15))
            .lsh(LshConfig::with_bits(2).merge_p(2))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let pts = vec![vec![1.5, -2.25], vec![0.0, 3.125]];
        assert_eq!(decode(&encode(&pts), 2), pts);
    }

    #[test]
    fn streaming_matches_batch_accuracy() {
        let (pts, truth) = four_blobs(25);
        let cfg = config(pts.len());

        // Batch reference (consolidation off to compare raw stitching).
        let batch = crate::Dasc::new(cfg.clone().consolidate(false)).run(&pts);

        // Stream in 7 uneven chunks, fitting on the full set so the
        // model matches the batch run.
        let mut s = StreamingDasc::new(cfg.consolidate(false), ClusterConfig::single_node(), &pts);
        for chunk in pts.chunks(17) {
            s.push_chunk(chunk);
        }
        assert_eq!(s.len(), pts.len());
        assert!(s.spilled_bytes() >= pts.len() * 2 * 8);
        let (clustering, buckets) = s.finish();

        assert_eq!(buckets.len(), batch.buckets.len());
        let a = dasc_metrics::accuracy(&clustering.assignments, &truth);
        let b = dasc_metrics::accuracy(&batch.clustering.assignments, &truth);
        assert!((a - b).abs() < 1e-12, "stream {a} vs batch {b}");
        assert!(a > 0.9, "streaming accuracy {a}");
    }

    #[test]
    fn empty_chunks_are_ignored() {
        let (pts, _) = four_blobs(5);
        let mut s = StreamingDasc::new(config(pts.len()), ClusterConfig::single_node(), &pts);
        s.push_chunk(&[]);
        assert!(s.is_empty());
        s.push_chunk(&pts);
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn driver_memory_is_signatures_only() {
        // The session holds one Signature (16 B) per point; point data
        // lives in the DFS.
        let (pts, _) = four_blobs(50);
        let mut s = StreamingDasc::new(config(pts.len()), ClusterConfig::single_node(), &pts[..40]);
        for chunk in pts.chunks(40) {
            s.push_chunk(chunk);
        }
        assert_eq!(s.signatures.len(), 200);
        assert_eq!(s.spilled_bytes(), 200 * 2 * 8);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_panics() {
        let (pts, _) = four_blobs(5);
        let mut s = StreamingDasc::new(config(pts.len()), ClusterConfig::single_node(), &pts);
        s.push_chunk(&[vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "no data pushed")]
    fn finish_without_data_panics() {
        let (pts, _) = four_blobs(2);
        StreamingDasc::new(config(8), ClusterConfig::single_node(), &pts).finish();
    }
}
