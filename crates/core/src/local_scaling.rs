//! Self-tuning similarity (Zelnik-Manor & Perona): per-point bandwidths.
//!
//! A single global σ (Eq. 1's bandwidth) fails when cluster densities
//! differ — tight clusters dissolve or sparse ones merge. Local scaling
//! replaces it with `S_ij = exp(−‖xᵢ−xⱼ‖² / (σᵢ σⱼ))` where `σᵢ` is the
//! distance from `xᵢ` to its `r`-th neighbour. A natural companion to
//! the paper's pipeline: the resulting matrix drops straight into
//! [`crate::SpectralClustering::run_on_similarity`].

use dasc_linalg::Matrix;
use dasc_lsh::KdTree;
use rayon::prelude::*;

/// Per-point scale parameters: the distance to each point's `r`-th
/// nearest neighbour (Zelnik-Manor & Perona use `r = 7`).
///
/// # Panics
/// Panics if the dataset is empty or `r == 0`.
pub fn local_scales(points: &[Vec<f64>], r: usize) -> Vec<f64> {
    assert!(!points.is_empty(), "local_scales: empty dataset");
    assert!(r >= 1, "local_scales: r must be at least 1");
    let r = r.min(points.len().saturating_sub(1)).max(1);
    let tree = KdTree::build(points);
    (0..points.len())
        .into_par_iter()
        .map(|i| {
            let nn = tree.nearest(points, &points[i], r, Some(i));
            // Coincident points give σ = 0; floor at a tiny positive
            // value so the kernel stays defined.
            nn.last().map(|&(_, d)| d).unwrap_or(0.0).max(1e-12)
        })
        .collect()
}

/// Build the locally-scaled similarity matrix
/// `S_ij = exp(−‖xᵢ−xⱼ‖² / (σᵢσⱼ))`, with unit diagonal.
///
/// # Panics
/// Panics on an empty dataset or `r == 0`.
pub fn local_scaling_similarity(points: &[Vec<f64>], r: usize) -> Matrix {
    let n = points.len();
    let scales = local_scales(points, r);
    let mut s = Matrix::zeros(n, n);
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            (i..n)
                .map(|j| {
                    if i == j {
                        1.0
                    } else {
                        let d2 = dasc_linalg::vector::sq_dist(&points[i], &points[j]);
                        (-d2 / (scales[i] * scales[j])).exp()
                    }
                })
                .collect()
        })
        .collect();
    for (i, row) in rows.into_iter().enumerate() {
        for (off, v) in row.into_iter().enumerate() {
            let j = i + off;
            s[(i, j)] = v;
            s[(j, i)] = v;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::{SpectralClustering, SpectralConfig};
    use dasc_kernel::Kernel;
    use dasc_metrics::accuracy;

    /// Two clusters of very different density: a tight blob and a
    /// diffuse one — the case where a single global σ struggles.
    fn mixed_density() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            pts.push(vec![0.5 + 0.001 * i as f64, 0.5]);
            labels.push(0);
        }
        for i in 0..30 {
            pts.push(vec![
                3.0 + 0.15 * (i % 6) as f64,
                2.0 + 0.15 * (i / 6) as f64,
            ]);
            labels.push(1);
        }
        (pts, labels)
    }

    #[test]
    fn scales_reflect_density() {
        let (pts, _) = mixed_density();
        let scales = local_scales(&pts, 7);
        let tight: f64 = scales[..30].iter().sum::<f64>() / 30.0;
        let diffuse: f64 = scales[30..].iter().sum::<f64>() / 30.0;
        assert!(
            diffuse > 10.0 * tight,
            "diffuse σ {diffuse} not ≫ tight σ {tight}"
        );
    }

    #[test]
    fn similarity_has_unit_diagonal_and_symmetry() {
        let (pts, _) = mixed_density();
        let s = local_scaling_similarity(&pts, 7);
        for i in 0..pts.len() {
            assert_eq!(s[(i, i)], 1.0);
        }
        assert!(s.is_symmetric(1e-12));
        // All entries in [0, 1] (cross-cluster terms may underflow to 0).
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                assert!((0.0..=1.0).contains(&s[(i, j)]));
            }
        }
    }

    #[test]
    fn local_scaling_separates_mixed_densities() {
        let (pts, truth) = mixed_density();
        let s = local_scaling_similarity(&pts, 7);
        let c = SpectralClustering::new(SpectralConfig::new(2)).run_on_similarity(&s);
        let acc = accuracy(&c.assignments, &truth);
        assert!(acc > 0.95, "local scaling accuracy {acc}");
    }

    #[test]
    fn global_sigma_can_be_beaten() {
        // With a σ tuned to the tight cluster, the diffuse cluster's
        // internal similarities vanish and it shatters; local scaling
        // does not have a single σ to mis-tune.
        let (pts, truth) = mixed_density();
        let bad_sigma =
            SpectralClustering::new(SpectralConfig::new(2).kernel(Kernel::gaussian(0.01)))
                .run(&pts)
                .clustering;
        let local = SpectralClustering::new(SpectralConfig::new(2))
            .run_on_similarity(&local_scaling_similarity(&pts, 7));
        let acc_bad = accuracy(&bad_sigma.assignments, &truth);
        let acc_local = accuracy(&local.assignments, &truth);
        assert!(
            acc_local >= acc_bad,
            "local {acc_local} worse than mis-tuned global {acc_bad}"
        );
    }

    #[test]
    fn coincident_points_do_not_divide_by_zero() {
        let pts = vec![vec![1.0, 1.0]; 5];
        let s = local_scaling_similarity(&pts, 3);
        for i in 0..5 {
            for j in 0..5 {
                assert!(s[(i, j)].is_finite());
            }
        }
    }

    #[test]
    #[should_panic(expected = "r must be at least 1")]
    fn zero_r_panics() {
        local_scales(&[vec![0.0]], 0);
    }
}
