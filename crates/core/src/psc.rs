//! PSC — Parallel Spectral Clustering (Chen, Song, Bai, Lin, Chang;
//! TPAMI 2011), the paper's strongest baseline.
//!
//! PSC sparsifies the similarity matrix to each point's `t` nearest
//! neighbours (symmetrized), then eigensolves with PARPACK. Here the
//! sparse matrix is our CSR substrate, the eigensolver is our Lanczos,
//! and the brute-force neighbour search is rayon-parallel — the same
//! O(N²) time / O(Nt) memory profile as the original.

use std::collections::HashSet;

use dasc_kernel::Kernel;
use dasc_linalg::{lanczos, CooBuilder, CsrMatrix, FlatPoints, LanczosOptions};
use rayon::prelude::*;

use crate::embedding::row_normalize;
use crate::kmeans::{KMeans, KMeansConfig};
use crate::Clustering;

/// PSC configuration.
#[derive(Clone, Debug)]
pub struct PscConfig {
    /// Number of clusters `K`.
    pub k: usize,
    /// Kernel for similarities.
    pub kernel: Kernel,
    /// Neighbours retained per point (`t`).
    pub t: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PscConfig {
    /// Defaults: Gaussian σ = 0.2, t = 10.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "PSC needs k >= 1");
        Self {
            k,
            kernel: Kernel::gaussian(0.2),
            t: 10,
            seed: 0x95C,
        }
    }

    /// Builder: kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: neighbour count.
    pub fn neighbors(mut self, t: usize) -> Self {
        assert!(t >= 1, "PSC needs t >= 1");
        self.t = t;
        self
    }

    /// Builder: seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a PSC run with memory accounting.
#[derive(Clone, Debug)]
pub struct PscResult {
    /// The clustering.
    pub clustering: Clustering,
    /// Bytes of the sparse similarity matrix (values at the paper's
    /// 4-byte convention plus index structure).
    pub sparse_memory_bytes: usize,
    /// Stored non-zeros of the t-NN graph.
    pub nnz: usize,
}

/// The PSC baseline.
#[derive(Clone, Debug)]
pub struct ParallelSpectral {
    config: PscConfig,
}

impl ParallelSpectral {
    /// Create from a configuration.
    pub fn new(config: PscConfig) -> Self {
        Self { config }
    }

    /// Build the symmetrized t-NN sparse similarity matrix.
    ///
    /// For distance-monotone kernels (Gaussian, Laplacian) in modest
    /// dimension, neighbours come from a k-d tree (the paper's reference
    /// \[18\]); otherwise a row-parallel brute-force scan.
    pub fn tnn_similarity(&self, points: &[Vec<f64>]) -> CsrMatrix {
        let n = points.len();
        let t = self.config.t.min(n.saturating_sub(1)).max(1);
        let kernel = self.config.kernel;
        let d = points.first().map(|p| p.len()).unwrap_or(0);
        // Only the Gaussian kernel is exactly monotone in Euclidean
        // distance (the Laplacian ranks by L1, so it stays on the exact
        // brute-force path).
        let distance_monotone = matches!(kernel, dasc_kernel::Kernel::Gaussian { .. });

        let neighbor_lists: Vec<Vec<(usize, f64)>> =
            if distance_monotone && d > 0 && d <= 16 && n > 256 {
                // Tree-accelerated: nearest by Euclidean distance is
                // exactly most-similar under the Gaussian kernel.
                let tree = dasc_lsh::KdTree::build(points);
                (0..n)
                    .into_par_iter()
                    .map(|i| {
                        tree.nearest(points, &points[i], t, Some(i))
                            .into_iter()
                            .map(|(j, _)| (j, kernel.eval(&points[i], &points[j])))
                            .collect()
                    })
                    .collect()
            } else {
                (0..n)
                    .into_par_iter()
                    .map(|i| {
                        let mut sims: Vec<(usize, f64)> = (0..n)
                            .filter(|&j| j != i)
                            .map(|j| (j, kernel.eval(&points[i], &points[j])))
                            .collect();
                        sims.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .expect("NaN similarity")
                                .then(a.0.cmp(&b.0))
                        });
                        sims.truncate(t);
                        sims
                    })
                    .collect()
            };

        // Symmetrize: keep an edge if either endpoint selected it.
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let mut builder = CooBuilder::new(n, n);
        for (i, list) in neighbor_lists.iter().enumerate() {
            // Self-similarity on the diagonal keeps degrees positive for
            // isolated-ish points.
            builder.push(i, i, kernel.eval(&points[i], &points[i]));
            for &(j, v) in list {
                let key = (i.min(j), i.max(j));
                if seen.insert(key) {
                    builder.push_symmetric(key.0, key.1, v);
                }
            }
        }
        builder.build()
    }

    /// Run PSC: t-NN similarity → connected components → per-component
    /// normalized Laplacian → Lanczos → row-normalized embedding →
    /// K-means.
    ///
    /// The component decomposition matters: a t-NN graph over
    /// well-separated clusters is genuinely disconnected, which makes the
    /// Laplacian's leading eigenvalue degenerate — a single-start Lanczos
    /// (or ARPACK) run cannot span that eigenspace. Splitting by
    /// component restores simple leading eigenvalues and is what
    /// production spectral implementations do.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn run(&self, points: &[Vec<f64>]) -> PscResult {
        assert!(!points.is_empty(), "PSC: empty dataset");
        let n = points.len();
        let k = self.config.k.min(n).max(1);

        let sim = self.tnn_similarity(points);
        let nnz = sim.nnz();
        let sparse_memory_bytes = sim.storage_bytes();

        if k == 1 || n == 1 {
            return PscResult {
                clustering: Clustering::new(vec![0; n], 1),
                sparse_memory_bytes,
                nnz,
            };
        }

        // Connected components of the similarity graph.
        let comp = connected_components(&sim);
        let num_comps = comp.iter().copied().max().expect("nonempty") + 1;
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_comps];
        for (i, &c) in comp.iter().enumerate() {
            groups[c].push(i);
        }

        // Apportion k across components by size (at least 1 each).
        let mut assignments = vec![0usize; n];
        let mut offset = 0usize;
        for (gi, group) in groups.iter().enumerate() {
            let ki = if num_comps >= k {
                1
            } else {
                ((k as f64 * group.len() as f64 / n as f64).round() as usize).clamp(1, group.len())
            };
            if ki == 1 || group.len() == 1 {
                for &i in group {
                    assignments[i] = offset;
                }
                offset += 1;
                continue;
            }

            // Subgraph CSR for this component.
            let index_of: std::collections::HashMap<usize, usize> = group
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, local))
                .collect();
            let mut b = CooBuilder::new(group.len(), group.len());
            for (local, &global) in group.iter().enumerate() {
                for (j, v) in sim.row_iter(global) {
                    if let Some(&lj) = index_of.get(&j) {
                        b.push(local, lj, v);
                    }
                }
            }
            let mut sub = b.build();
            let inv_sqrt: Vec<f64> = sub
                .row_sums()
                .iter()
                .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
                .collect();
            sub.diag_scale(&inv_sqrt, &inv_sqrt);

            let mut opts = LanczosOptions::top(ki);
            opts.seed = self.config.seed ^ (gi as u64).wrapping_mul(0x9E37_79B9);
            let eig = lanczos(&sub, &opts);
            let mut y = eig.eigenvectors;
            row_normalize(&mut y);
            let km = KMeans::new(KMeansConfig::new(ki).seed(self.config.seed));
            let res = km.run_flat(&FlatPoints::from_flat(y.into_vec(), ki));
            for (local, &global) in group.iter().enumerate() {
                assignments[global] = offset + res.assignments[local];
            }
            offset += ki;
        }

        PscResult {
            clustering: Clustering::new(assignments, offset.max(1)),
            sparse_memory_bytes,
            nnz,
        }
    }
}

/// Connected components of a symmetric sparse graph (union–find),
/// returning a component id per vertex with ids compact from 0.
fn connected_components(g: &CsrMatrix) -> Vec<usize> {
    let n = g.nrows();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for (j, _) in g.row_iter(i) {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri.max(rj)] = ri.min(rj);
            }
        }
    }
    let mut ids = std::collections::HashMap::new();
    (0..n)
        .map(|i| {
            let r = find(&mut parent, i);
            let next = ids.len();
            *ids.entry(r).or_insert(next)
        })
        .collect()
}

/// Dense memory an equivalent full similarity matrix would take, for the
/// Figure 6(b) comparison.
pub fn dense_equivalent_bytes(n: usize) -> usize {
    4 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..per {
            pts.push(vec![0.1 + 0.002 * i as f64, 0.1]);
            labels.push(0);
            pts.push(vec![0.9 - 0.002 * i as f64, 0.9]);
            labels.push(1);
        }
        (pts, labels)
    }

    #[test]
    fn tnn_matrix_is_symmetric_and_sparse() {
        let (pts, _) = two_blobs(30);
        let psc = ParallelSpectral::new(PscConfig::new(2).neighbors(5));
        let sim = psc.tnn_similarity(&pts);
        assert!(sim.is_symmetric(1e-12));
        // Far below dense: at most n(2t+1) entries.
        assert!(sim.nnz() <= 60 * 11);
        assert!(sim.nnz() >= 60); // at least the diagonal
    }

    #[test]
    fn separates_two_blobs() {
        let (pts, truth) = two_blobs(30);
        let res = ParallelSpectral::new(PscConfig::new(2).neighbors(8)).run(&pts);
        let acc = dasc_metrics::accuracy(&res.clustering.assignments, &truth);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn sparse_memory_below_dense() {
        let (pts, _) = two_blobs(50);
        let res = ParallelSpectral::new(PscConfig::new(2)).run(&pts);
        assert!(res.sparse_memory_bytes < dense_equivalent_bytes(100));
    }

    #[test]
    fn neighbor_count_clamped() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        // t = 10 > n-1 = 2: must not panic.
        let res = ParallelSpectral::new(PscConfig::new(2).neighbors(10)).run(&pts);
        assert_eq!(res.clustering.len(), 3);
    }

    #[test]
    fn k1_trivial() {
        let (pts, _) = two_blobs(5);
        let res = ParallelSpectral::new(PscConfig::new(1)).run(&pts);
        assert!(res.clustering.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let (pts, _) = two_blobs(20);
        let a = ParallelSpectral::new(PscConfig::new(2).seed(4)).run(&pts);
        let b = ParallelSpectral::new(PscConfig::new(2).seed(4)).run(&pts);
        assert_eq!(a.clustering.assignments, b.clustering.assignments);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        ParallelSpectral::new(PscConfig::new(2)).run(&[]);
    }
}
