//! Exact spectral clustering (the SC baseline; Ng–Jordan–Weiss on the
//! full kernel matrix, as Mahout implements it).

use std::time::Duration;

use dasc_kernel::{full_gram_flat, gram_memory_bytes, Kernel};
use dasc_linalg::{FlatPoints, Matrix};
use dasc_obs::span;

use crate::embedding::{
    normalized_laplacian_inplace, resolve_eigen_path, row_normalize, top_eigenvectors_with,
    EigenPath,
};
use crate::kmeans::{KMeans, KMeansConfig};
use crate::Clustering;

/// Which eigensolver the spectral pipeline uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EigenBackend {
    /// Always the full dense Householder + QL path (`O(n³)`).
    Dense,
    /// Always the k-targeted dense path (factored Householder +
    /// eigenvalues-only QL + inverse iteration, `O(n²k)` past the
    /// reduction).
    DenseK,
    /// Always Lanczos.
    Lanczos,
    /// Full dense for tiny/nearly-full problems, dense-k below the
    /// threshold, Lanczos above (default threshold: 512).
    Auto,
}

/// Which normalized Laplacian drives the embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaplacianKind {
    /// `L = D^{−1/2} S D^{−1/2}` with row-normalized eigenvectors —
    /// Ng–Jordan–Weiss, the paper's Eq. 2 (default).
    Symmetric,
    /// The random-walk operator `D^{−1} S` (Shi–Malik): its
    /// eigenvectors are `D^{−1/2} v` for the symmetric operator's `v`,
    /// used without row normalization.
    RandomWalk,
}

/// Spectral clustering configuration.
#[derive(Clone, Debug)]
pub struct SpectralConfig {
    /// Number of clusters `K`.
    pub k: usize,
    /// Kernel for the similarity matrix (paper: Gaussian, Eq. 1).
    pub kernel: Kernel,
    /// Eigensolver selection.
    pub backend: EigenBackend,
    /// Dense→Lanczos crossover for [`EigenBackend::Auto`].
    pub lanczos_threshold: usize,
    /// Laplacian normalization variant.
    pub laplacian: LaplacianKind,
    /// RNG seed (K-means seeding, Lanczos start vector).
    pub seed: u64,
}

impl SpectralConfig {
    /// Defaults: Gaussian kernel σ = 0.2 (unit-normalized data),
    /// automatic eigensolver.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "spectral clustering needs k >= 1");
        Self {
            k,
            kernel: Kernel::gaussian(0.2),
            backend: EigenBackend::Auto,
            lanczos_threshold: 512,
            laplacian: LaplacianKind::Symmetric,
            seed: 0x5BEC,
        }
    }

    /// Builder: Laplacian variant.
    pub fn laplacian(mut self, kind: LaplacianKind) -> Self {
        self.laplacian = kind;
        self
    }

    /// Builder: kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: eigensolver backend.
    pub fn backend(mut self, backend: EigenBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// The SC baseline.
#[derive(Clone, Debug)]
pub struct SpectralClustering {
    config: SpectralConfig,
}

/// Result of an SC run with cost accounting.
#[derive(Clone, Debug)]
pub struct SpectralResult {
    /// The clustering.
    pub clustering: Clustering,
    /// Bytes the full Gram matrix occupies (4-byte convention, Eq. 12).
    pub gram_memory_bytes: usize,
}

/// Per-substage breakdown of one spectral run — filled from the
/// `dasc.cluster.{laplacian,eigen,kmeans}` span guards, so a trace of
/// the run and this struct cannot disagree.
#[derive(Clone, Copy, Debug)]
pub struct SpectralBreakdown {
    /// Scaling the similarity matrix into the normalized Laplacian.
    pub laplacian: Duration,
    /// The eigensolve (whichever path ran).
    pub eigen: Duration,
    /// Row normalization + K-means on the embedding.
    pub kmeans: Duration,
    /// The eigensolver route that actually ran.
    pub path: EigenPath,
}

impl Default for SpectralBreakdown {
    fn default() -> Self {
        Self {
            laplacian: Duration::ZERO,
            eigen: Duration::ZERO,
            kmeans: Duration::ZERO,
            path: EigenPath::DenseFull,
        }
    }
}

impl SpectralClustering {
    /// Create from a configuration.
    pub fn new(config: SpectralConfig) -> Self {
        Self { config }
    }

    /// Cluster raw points: full Gram → Laplacian → embedding → K-means.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn run(&self, points: &[Vec<f64>]) -> SpectralResult {
        self.run_flat(&FlatPoints::from_rows(points))
    }

    /// [`Self::run`] over a flat row-major buffer — the layout mmap'd
    /// store shards and the distributed reduce path already hold, so
    /// neither needs a `Vec<Vec<f64>>` round-trip. `run` delegates
    /// here, which keeps both entry points bit-identical.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn run_flat(&self, points: &FlatPoints) -> SpectralResult {
        assert!(!points.is_empty(), "spectral clustering: empty dataset");
        let gram = full_gram_flat(points, &self.config.kernel);
        let (clustering, _) = self.run_on_similarity_owned(gram);
        SpectralResult {
            clustering,
            gram_memory_bytes: gram_memory_bytes(points.len()),
        }
    }

    /// Cluster a pre-computed similarity matrix (used per bucket by
    /// DASC). Clones the matrix; prefer
    /// [`Self::run_on_similarity_owned`] when the similarity can be
    /// consumed.
    ///
    /// # Panics
    /// Panics if `similarity` is not square.
    pub fn run_on_similarity(&self, similarity: &Matrix) -> Clustering {
        self.run_on_similarity_owned(similarity.clone()).0
    }

    /// Cluster a pre-computed similarity matrix, consuming it: the
    /// buffer is scaled into the Laplacian in place, so the whole
    /// pipeline tail allocates only the `n×k` embedding. Returns the
    /// clustering plus the substage breakdown.
    ///
    /// # Panics
    /// Panics if `similarity` is not square.
    pub fn run_on_similarity_owned(&self, similarity: Matrix) -> (Clustering, SpectralBreakdown) {
        assert!(similarity.is_square(), "similarity must be square");
        let n = similarity.nrows();
        let k = self.config.k.min(n).max(1);
        let mut breakdown = SpectralBreakdown::default();
        if n == 0 {
            return (Clustering::new(Vec::new(), 0), breakdown);
        }
        if k == 1 || n == 1 {
            return (Clustering::new(vec![0; n], 1), breakdown);
        }

        let lap_span = span!("dasc.cluster.laplacian");
        let mut l = similarity;
        let degrees = normalized_laplacian_inplace(&mut l);
        breakdown.laplacian = lap_span.finish();

        let path = match self.config.backend {
            EigenBackend::Dense => EigenPath::DenseFull,
            EigenBackend::DenseK => EigenPath::DenseK,
            EigenBackend::Lanczos => EigenPath::Lanczos,
            EigenBackend::Auto => resolve_eigen_path(n, k, self.config.lanczos_threshold),
        };
        breakdown.path = path;
        let eigen_span = span!("dasc.cluster.eigen");
        let mut v = top_eigenvectors_with(&l, k, path, self.config.seed);
        drop(l);
        breakdown.eigen = eigen_span.finish();

        let km_span = span!("dasc.cluster.kmeans");
        match self.config.laplacian {
            LaplacianKind::Symmetric => row_normalize(&mut v),
            LaplacianKind::RandomWalk => {
                // D^{-1} S shares eigenvectors with the symmetric form up
                // to the D^{-1/2} change of basis; no row normalization.
                for i in 0..n {
                    let scale = if degrees[i] > 0.0 {
                        1.0 / degrees[i].sqrt()
                    } else {
                        0.0
                    };
                    for j in 0..k {
                        v[(i, j)] *= scale;
                    }
                }
            }
        }
        let km = KMeans::new(KMeansConfig::new(k).seed(self.config.seed));
        // The embedding is already row-major `n × k`; hand it to k-means
        // as a flat buffer instead of re-nesting it into Vec<Vec<f64>>.
        let res = km.run_flat(&FlatPoints::from_flat(v.into_vec(), k));
        breakdown.kmeans = km_span.finish();
        (Clustering::new(res.assignments, k), breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rings_free() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two concentric rings — the classic case where K-means fails and
        // spectral clustering succeeds ("performs well with non-Gaussian
        // clusters").
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let t = i as f64 / 40.0 * std::f64::consts::TAU;
            pts.push(vec![0.1 * t.cos() + 0.5, 0.1 * t.sin() + 0.5]);
            labels.push(0);
            pts.push(vec![0.45 * t.cos() + 0.5, 0.45 * t.sin() + 0.5]);
            labels.push(1);
        }
        (pts, labels)
    }

    fn agreement(a: &[usize], b: &[usize]) -> f64 {
        // Two-cluster label agreement up to permutation.
        let same: usize = a.iter().zip(b).filter(|(x, y)| x == y).count();
        let frac = same as f64 / a.len() as f64;
        frac.max(1.0 - frac)
    }

    #[test]
    fn separates_two_blobs() {
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for i in 0..30 {
            pts.push(vec![0.1 + 0.001 * i as f64, 0.1]);
            truth.push(0);
            pts.push(vec![0.9 - 0.001 * i as f64, 0.9]);
            truth.push(1);
        }
        let res = SpectralClustering::new(SpectralConfig::new(2)).run(&pts);
        assert_eq!(agreement(&res.clustering.assignments, &truth), 1.0);
        assert_eq!(res.gram_memory_bytes, 4 * 60 * 60);
    }

    #[test]
    fn handles_nonconvex_rings() {
        let (pts, truth) = two_rings_free();
        let cfg = SpectralConfig::new(2).kernel(Kernel::gaussian(0.05));
        let res = SpectralClustering::new(cfg).run(&pts);
        assert!(
            agreement(&res.clustering.assignments, &truth) > 0.95,
            "rings not separated"
        );
    }

    #[test]
    fn k1_trivial() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let res = SpectralClustering::new(SpectralConfig::new(1)).run(&pts);
        assert_eq!(res.clustering.assignments, vec![0, 0, 0]);
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let res = SpectralClustering::new(SpectralConfig::new(5)).run(&pts);
        assert_eq!(res.clustering.assignments.len(), 2);
        assert!(res.clustering.num_clusters <= 2);
    }

    #[test]
    fn dense_and_lanczos_backends_agree() {
        let mut pts = Vec::new();
        for i in 0..25 {
            pts.push(vec![0.1 + 0.002 * i as f64, 0.2]);
            pts.push(vec![0.8 + 0.002 * i as f64, 0.9]);
        }
        let dense =
            SpectralClustering::new(SpectralConfig::new(2).backend(EigenBackend::Dense)).run(&pts);
        let lz = SpectralClustering::new(SpectralConfig::new(2).backend(EigenBackend::Lanczos))
            .run(&pts);
        assert_eq!(
            agreement(&dense.clustering.assignments, &lz.clustering.assignments),
            1.0
        );
    }

    #[test]
    fn random_walk_laplacian_matches_symmetric_on_blobs() {
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for i in 0..25 {
            pts.push(vec![0.1 + 0.002 * i as f64, 0.2]);
            truth.push(0);
            pts.push(vec![0.8 + 0.002 * i as f64, 0.9]);
            truth.push(1);
        }
        let rw =
            SpectralClustering::new(SpectralConfig::new(2).laplacian(LaplacianKind::RandomWalk))
                .run(&pts);
        assert_eq!(agreement(&rw.clustering.assignments, &truth), 1.0);
        let sym = SpectralClustering::new(SpectralConfig::new(2)).run(&pts);
        assert_eq!(
            agreement(&rw.clustering.assignments, &sym.clustering.assignments),
            1.0
        );
    }

    #[test]
    fn random_walk_handles_rings() {
        let (pts, truth) = two_rings_free();
        let cfg = SpectralConfig::new(2)
            .kernel(Kernel::gaussian(0.05))
            .laplacian(LaplacianKind::RandomWalk);
        let res = SpectralClustering::new(cfg).run(&pts);
        assert!(agreement(&res.clustering.assignments, &truth) > 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let (pts, _) = two_rings_free();
        let cfg = SpectralConfig::new(2)
            .kernel(Kernel::gaussian(0.05))
            .seed(3);
        let a = SpectralClustering::new(cfg.clone()).run(&pts);
        let b = SpectralClustering::new(cfg).run(&pts);
        assert_eq!(a.clustering.assignments, b.clustering.assignments);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        SpectralClustering::new(SpectralConfig::new(2)).run(&[]);
    }
}
