//! The DASC algorithm (Section 3): LSH partitioning, bucket merging,
//! per-bucket approximate kernel blocks, per-bucket spectral clustering —
//! runnable serially (rayon over buckets) or as the paper's two
//! MapReduce stages on the `dasc-mapreduce` substrate.
//!
//! Every stage is traced with `dasc-obs` spans (`dasc.lsh`,
//! `dasc.bucket`, `dasc.gram`, `dasc.cluster`, `dasc.consolidate`, and
//! the `dasc.stage1`/`dasc.stage2` distributed counterparts); the same
//! guards produce [`DascStageTimes`], so the struct and a trace of the
//! run can never disagree. Run-level totals land in the global metrics
//! registry (`dasc_runs_total`, `dasc_points_total`,
//! `dasc_buckets_total`).

use std::time::Duration;

use dasc_obs::span;

use dasc_kernel::{ApproximateGram, Kernel};
use dasc_linalg::{FlatPoints, KernelBackend, PointsView};
use dasc_lsh::{BucketSet, LshConfig, Signature, SignatureModel};
use dasc_mapreduce::{
    reduce_groups, run_map_only, simulate_on_cluster, ClusterConfig, FnMapper, FnReducer, JobStats,
};
use rayon::prelude::*;

use crate::embedding::EigenPath;
use crate::spectral::{SpectralBreakdown, SpectralClustering, SpectralConfig};
use crate::Clustering;

/// DASC configuration.
#[derive(Clone, Debug)]
pub struct DascConfig {
    /// Total number of clusters `K` across the dataset. Each bucket `i`
    /// receives `Kᵢ ∝ Nᵢ` of them (at least one).
    pub k: usize,
    /// Kernel for the per-bucket similarity blocks (paper: Gaussian,
    /// Eq. 1).
    pub kernel: Kernel,
    /// LSH stage configuration (signature width `M`, merge threshold
    /// `P`, histogram bins, dimension selection).
    pub lsh: LshConfig,
    /// Dense→Lanczos eigensolver crossover inside buckets.
    pub lanczos_threshold: usize,
    /// Consolidate the `Σ Kᵢ` per-bucket clusters down to exactly `K`
    /// global clusters with a weighted K-means over fragment centroids.
    /// Buckets can split a natural cluster across partitions; without
    /// consolidation each fragment stays its own cluster and quality
    /// metrics over-penalize DASC for over-segmentation.
    pub consolidate: bool,
    /// RNG seed (spectral seeds derive from it per bucket).
    pub seed: u64,
}

impl DascConfig {
    /// Paper defaults for `n` points and `k` clusters:
    /// `M = ⌈log₂N⌉/2 − 1`, `P = M − 1`, Gaussian kernel σ = 0.2.
    pub fn for_dataset(n: usize, k: usize) -> Self {
        assert!(k >= 1, "DASC needs k >= 1");
        Self {
            k,
            kernel: Kernel::gaussian(0.2),
            lsh: LshConfig::for_dataset(n),
            lanczos_threshold: 512,
            consolidate: true,
            seed: 0xDA5C,
        }
    }

    /// Builder: toggle fragment consolidation.
    pub fn consolidate(mut self, on: bool) -> Self {
        self.consolidate = on;
        self
    }

    /// Builder: kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder: LSH configuration.
    pub fn lsh(mut self, lsh: LshConfig) -> Self {
        self.lsh = lsh;
        self
    }

    /// Builder: seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-stage wall-clock breakdown of a serial DASC run.
#[derive(Clone, Debug, Default)]
pub struct DascStageTimes {
    /// Signature generation (model fit + hashing).
    pub lsh: Duration,
    /// Bucket formation and merging.
    pub bucketing: Duration,
    /// Sub-similarity matrices.
    pub gram: Duration,
    /// Per-bucket spectral clustering.
    pub clustering: Duration,
    /// Laplacian scaling, summed across buckets (a slice of
    /// `clustering`; with several rayon workers the three substage sums
    /// can exceed the wall-clock `clustering` figure).
    pub laplacian: Duration,
    /// Eigensolves, summed across buckets (a slice of `clustering`).
    pub eigen: Duration,
    /// Row normalization + K-means, summed across buckets (a slice of
    /// `clustering`).
    pub kmeans: Duration,
}

/// Result of a DASC run.
#[derive(Clone, Debug)]
pub struct DascResult {
    /// The final clustering; cluster ids are contiguous across buckets.
    pub clustering: Clustering,
    /// The (merged) bucket structure used.
    pub buckets: BucketSet,
    /// Bytes of the approximate Gram matrix (4·Σ Nᵢ², Eq. 12).
    pub approx_gram_bytes: usize,
    /// Stage timings.
    pub times: DascStageTimes,
    /// Eigensolver route taken by the largest bucket — the run's
    /// dominant spectral cost.
    pub eigen_path: EigenPath,
    /// The kernel backend the run's gemm/dot/axpy primitives dispatched
    /// to (resolved once per process from `DASC_KERNEL`).
    pub kernel_backend: KernelBackend,
}

/// Result of a distributed DASC run, carrying MapReduce statistics so
/// elasticity can be replayed on other cluster sizes (Table 3).
#[derive(Clone, Debug)]
pub struct DascDistributedResult {
    /// The final clustering (identical to the serial result for the same
    /// configuration — the engine is deterministic).
    pub clustering: Clustering,
    /// Number of buckets after merging.
    pub num_buckets: usize,
    /// Bytes of the approximate Gram matrix.
    pub approx_gram_bytes: usize,
    /// Stage 1 (LSH map + shuffle) statistics.
    pub stage1: JobStats,
    /// Stage 2 (per-bucket clustering reduce) statistics.
    pub stage2: JobStats,
}

impl DascDistributedResult {
    /// Replay the recorded task bag on an arbitrary cluster and return
    /// the simulated total duration (the Table 3 mechanism).
    pub fn simulate_total(&self, cluster: &ClusterConfig) -> Duration {
        let s1 = simulate_on_cluster(&self.stage1, cluster);
        let s2 = simulate_on_cluster(&self.stage2, cluster);
        s1.total + s2.total
    }
}

/// A fully trained DASC pipeline: the clustering result together with
/// the fitted LSH model and the per-point signatures that produced it.
///
/// This is the unit of export for online serving: the signature model
/// freezes the hash function, the signatures (with
/// [`DascResult::buckets`]) recover every constituent signature of each
/// merged bucket, and the clustering pins the global cluster ids.
#[derive(Clone, Debug)]
pub struct DascTrained {
    /// The clustering result (assignments, buckets, timings).
    pub result: DascResult,
    /// The frozen LSH signature model used to hash the training set.
    pub model: SignatureModel,
    /// Per-point signatures, parallel to the training points.
    pub signatures: Vec<Signature>,
    /// The configuration that produced the run (provenance).
    pub config: DascConfig,
}

/// Distributed counterpart of [`DascTrained`].
#[derive(Clone, Debug)]
pub struct DascTrainedDistributed {
    /// The distributed run result (clustering + MapReduce statistics).
    pub result: DascDistributedResult,
    /// The frozen LSH signature model.
    pub model: SignatureModel,
    /// Per-point signatures reconstructed from the stage-1 shuffle.
    pub signatures: Vec<Signature>,
    /// The merged bucket structure (stage-2 reduce groups).
    pub buckets: BucketSet,
    /// The configuration that produced the run (provenance).
    pub config: DascConfig,
}

/// The DASC clusterer.
#[derive(Clone, Debug)]
pub struct Dasc {
    config: DascConfig,
}

impl Dasc {
    /// Create from a configuration.
    pub fn new(config: DascConfig) -> Self {
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &DascConfig {
        &self.config
    }

    /// Fit the LSH model, hash, bucket, and merge — steps 1–2 of the
    /// algorithm, exposed for the kernel-approximation use case where a
    /// different downstream algorithm consumes the buckets.
    pub fn partition(&self, points: &[Vec<f64>]) -> (SignatureModel, BucketSet) {
        let model = SignatureModel::fit(points, &self.config.lsh);
        let sigs = model.hash_all(points);
        let buckets = BucketSet::from_signatures(&sigs)
            .merge_with(self.config.lsh.merge_strategy, self.config.lsh.merge_p);
        (model, buckets)
    }

    /// Build the block-diagonal approximate kernel matrix — steps 1–3,
    /// the algorithm-independent approximation of the paper's abstract.
    pub fn approximate_gram(&self, points: &[Vec<f64>]) -> ApproximateGram {
        let (_, buckets) = self.partition(points);
        ApproximateGram::from_buckets(points, &buckets, &self.config.kernel)
    }

    /// Run the full DASC pipeline serially (buckets in parallel via
    /// rayon).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn run(&self, points: &[Vec<f64>]) -> DascResult {
        self.train(points).result
    }

    /// Run the full pipeline and keep the fitted signature model and
    /// per-point signatures alongside the result — the inputs a serving
    /// artifact needs (see `dasc-serve`).
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train(&self, points: &[Vec<f64>]) -> DascTrained {
        assert!(!points.is_empty(), "DASC: empty dataset");
        let lsh_span = span!("dasc.lsh");
        let fit_span = span!("dasc.lsh.fit");
        let model = SignatureModel::fit(points, &self.config.lsh);
        fit_span.finish();
        let sign_span = span!("dasc.lsh.sign");
        let sigs = model.hash_all(points);
        sign_span.finish();
        let lsh_time = lsh_span.finish();
        let mut result = self.run_with_signatures(points, &sigs);
        result.times.lsh = lsh_time;
        DascTrained {
            result,
            model,
            signatures: sigs,
            config: self.config.clone(),
        }
    }

    /// Run the pipeline from pre-computed signatures — the hook for
    /// plugging any LSH family (sign-random-projection, p-stable,
    /// PCA/spectral hashing for skewed data) in place of the paper's
    /// axis-threshold model. Bucket merging, per-bucket clustering and
    /// consolidation all behave exactly as in [`Dasc::run`].
    ///
    /// The merge threshold comes from `config.lsh.merge_p`; set
    /// `config.lsh` (via [`LshConfig::with_bits`]) to the external
    /// family's signature width so `P = M − 1` keeps its meaning.
    ///
    /// # Panics
    /// Panics if `signatures` does not match `points` in length, or the
    /// dataset is empty.
    pub fn run_with_signatures(&self, points: &[Vec<f64>], sigs: &[Signature]) -> DascResult {
        assert!(!points.is_empty(), "DASC: empty dataset");
        assert_eq!(points.len(), sigs.len(), "DASC: signature count mismatch");
        let n = points.len();
        let mut times = DascStageTimes::default();

        let bucket_span = span!("dasc.bucket");
        let buckets = BucketSet::from_signatures(sigs)
            .merge_with(self.config.lsh.merge_strategy, self.config.lsh.merge_p);
        times.bucketing = bucket_span.finish();

        let gram_span = span!("dasc.gram");
        let gram = ApproximateGram::from_buckets(points, &buckets, &self.config.kernel);
        times.gram = gram_span.finish();
        let approx_gram_bytes = gram.memory_bytes();

        let cluster_span = span!("dasc.cluster");
        // Schedule the biggest buckets first: per-bucket spectral cost
        // grows superlinearly with Nᵢ, so a large bucket started last
        // would finish alone while the rest of the pool idles. Spectral
        // seeds key on the *original* bucket index and results are
        // scattered back to input order, so the clustering is identical
        // to an in-order run. Blocks are consumed by value: each bucket's
        // similarity matrix is scaled into its Laplacian in place, so no
        // second copy of the approximate Gram exists during this stage.
        let mut blocks: Vec<(usize, dasc_kernel::GramBlock)> =
            gram.into_blocks().into_iter().enumerate().collect();
        let num_blocks = blocks.len();
        blocks.sort_by_key(|(_, b)| std::cmp::Reverse(b.members.len()));
        let computed: Vec<(usize, Vec<usize>, Clustering, SpectralBreakdown)> = blocks
            .into_par_iter()
            .map(|(bi, block)| {
                let _bucket_span = span!("dasc.cluster.bucket");
                let ki = bucket_cluster_count(self.config.k, block.members.len(), n);
                let sc = SpectralClustering::new(self.spectral_config(ki, bi as u64));
                let (c, breakdown) = sc.run_on_similarity_owned(block.matrix);
                (bi, block.members, c, breakdown)
            })
            .collect();
        // The rayon facade preserves order, so `computed[0]` is the
        // largest bucket — its path is the run's representative route.
        let eigen_path = computed
            .first()
            .map(|(_, _, _, br)| br.path)
            .unwrap_or(EigenPath::DenseFull);
        let mut per_bucket: Vec<Option<(Vec<usize>, Clustering)>> =
            (0..num_blocks).map(|_| None).collect();
        for (bi, members, c, breakdown) in computed {
            times.laplacian += breakdown.laplacian;
            times.eigen += breakdown.eigen;
            times.kmeans += breakdown.kmeans;
            per_bucket[bi] = Some((members, c));
        }
        let per_bucket: Vec<(Vec<usize>, Clustering)> = per_bucket
            .into_iter()
            .map(|b| b.expect("every bucket clustered"))
            .collect();
        times.clustering = cluster_span.finish();

        let stitched = stitch_global(n, &per_bucket);
        let clustering = if self.config.consolidate {
            let _consolidate_span = span!("dasc.consolidate");
            consolidate_fragments(points, &stitched, self.config.k, self.config.seed)
        } else {
            stitched
        };
        record_run_metrics(n, buckets.len(), approx_gram_bytes);
        DascResult {
            clustering,
            buckets,
            approx_gram_bytes,
            times,
            eigen_path,
            kernel_backend: KernelBackend::resolved(),
        }
    }

    /// Run DASC as the paper's two MapReduce stages.
    ///
    /// Stage 1 is Algorithm 1 (map: point → `(signature, index)`), with
    /// bucket merging applied between the shuffle and the reducer, as
    /// Section 3.3 specifies. Stage 2 is Algorithm 2 plus the spectral
    /// step: each reduce task computes a bucket's sub-similarity matrix
    /// and clusters it.
    pub fn run_distributed(
        &self,
        points: &[Vec<f64>],
        cluster: &ClusterConfig,
    ) -> DascDistributedResult {
        self.train_distributed(points, cluster).result
    }

    /// [`Dasc::run_distributed`], keeping the fitted signature model,
    /// per-point signatures, and merged buckets for artifact export.
    ///
    /// # Panics
    /// Panics on an empty dataset.
    pub fn train_distributed(
        &self,
        points: &[Vec<f64>],
        cluster: &ClusterConfig,
    ) -> DascTrainedDistributed {
        assert!(!points.is_empty(), "DASC: empty dataset");
        let n = points.len();

        // Stage 1: LSH signatures via MapReduce.
        let stage1_span = span!("dasc.stage1.lsh_map");
        let model = SignatureModel::fit(points, &self.config.lsh);
        let mapper = FnMapper::new(
            |index: usize, point: Vec<f64>, emit: &mut dyn FnMut(u64, usize)| {
                emit(model.hash(&point).bits(), index);
            },
        );
        let inputs: Vec<(usize, Vec<f64>)> = points.iter().cloned().enumerate().collect();
        let grouped = run_map_only(&mapper, inputs, cluster);
        let stage1 = grouped.stats.clone();
        stage1_span.finish();

        // Between-stage merge: reconstruct per-point signatures from the
        // shuffle groups and apply the P-similar rule.
        let merge_span = span!("dasc.bucket.merge");
        let m = self.config.lsh.num_bits;
        let mut sigs = vec![Signature::zero(m); n];
        for (bits, members) in &grouped.records {
            let s = Signature::from_bits(*bits, m);
            for &i in members {
                sigs[i] = s;
            }
        }
        let buckets = BucketSet::from_signatures(&sigs)
            .merge_with(self.config.lsh.merge_strategy, self.config.lsh.merge_p);
        let approx_gram_bytes = 4 * buckets.approx_gram_entries();
        merge_span.finish();

        // Stage 2: one reduce task per merged bucket.
        let k_total = self.config.k;
        let kernel = self.config.kernel;
        let lanczos_threshold = self.config.lanczos_threshold;
        let seed = self.config.seed;
        let reducer = FnReducer::new(
            move |bucket_id: usize,
                  members: Vec<usize>,
                  emit: &mut dyn FnMut((usize, usize, usize))| {
                let sub: Vec<Vec<f64>> = members.iter().map(|&i| points[i].clone()).collect();
                let ki = bucket_cluster_count(k_total, members.len(), n);
                let c = cluster_bucket(&sub, ki, kernel, lanczos_threshold, seed, bucket_id);
                for (local, &point) in members.iter().enumerate() {
                    emit((point, bucket_id, c.assignments[local]));
                }
            },
        );
        let stage2_span = span!("dasc.stage2.cluster_reduce");
        let groups: Vec<(usize, Vec<usize>)> = buckets
            .buckets()
            .iter()
            .enumerate()
            .map(|(bi, b)| (bi, b.members.clone()))
            .collect();
        let reduced = reduce_groups(&reducer, groups, cluster);
        let stage2 = reduced.stats.clone();
        stage2_span.finish();

        // Stitch bucket-local cluster ids into a global id space.
        let stitch_span = span!("dasc.stitch");
        let stitched = stitch_distributed(n, self.config.k, &buckets.sizes(), &reduced.records);
        stitch_span.finish();
        let clustering = if self.config.consolidate {
            let _consolidate_span = span!("dasc.consolidate");
            consolidate_fragments(points, &stitched, self.config.k, self.config.seed)
        } else {
            stitched
        };
        record_run_metrics(n, buckets.len(), approx_gram_bytes);

        let result = DascDistributedResult {
            clustering,
            num_buckets: buckets.len(),
            approx_gram_bytes,
            stage1,
            stage2,
        };
        DascTrainedDistributed {
            result,
            model,
            signatures: sigs,
            buckets,
            config: self.config.clone(),
        }
    }

    fn spectral_config(&self, ki: usize, bucket_index: u64) -> SpectralConfig {
        let mut cfg = SpectralConfig::new(ki)
            .kernel(self.config.kernel)
            .seed(self.config.seed ^ bucket_index.wrapping_mul(0x9E37_79B9));
        cfg.lanczos_threshold = self.config.lanczos_threshold;
        cfg
    }
}

/// Run-level totals for the global metrics registry, recorded once per
/// completed DASC run (serial or distributed).
fn record_run_metrics(points: usize, buckets: usize, approx_gram_bytes: usize) {
    let registry = dasc_obs::global();
    registry.inc("dasc_runs_total", 1);
    registry.inc("dasc_points_total", points as u64);
    registry.inc("dasc_buckets_total", buckets as u64);
    registry
        .gauge("dasc_approx_gram_bytes")
        .set(approx_gram_bytes as i64);
    registry
        .gauge(&dasc_obs::labeled(
            "dasc_kernel_backend",
            "backend",
            KernelBackend::resolved().as_str(),
        ))
        .set(1);
}

/// `Kᵢ = clamp(round(K · Nᵢ / N), 1, Nᵢ)`: clusters are apportioned to
/// buckets by size, never zero, never more than the bucket's points.
pub fn bucket_cluster_count(k_total: usize, bucket_size: usize, n: usize) -> usize {
    if bucket_size == 0 {
        return 0;
    }
    let share = (k_total as f64 * bucket_size as f64 / n as f64).round() as usize;
    share.clamp(1, bucket_size)
}

/// Spectrally cluster one bucket's points into `ki` clusters — the
/// stage-2 reduce body, shared verbatim by [`Dasc::train_distributed`]
/// and the `dasc-dist` worker so both executors are bit-identical. The
/// spectral seed derives from `(seed, bucket_id)` exactly as the serial
/// path derives it.
pub fn cluster_bucket(
    points: &[Vec<f64>],
    ki: usize,
    kernel: Kernel,
    lanczos_threshold: usize,
    seed: u64,
    bucket_id: usize,
) -> Clustering {
    cluster_bucket_flat(
        &FlatPoints::from_rows(points),
        ki,
        kernel,
        lanczos_threshold,
        seed,
        bucket_id,
    )
}

/// [`cluster_bucket`] over a flat row-major buffer. The shard-addressed
/// worker gathers a bucket's members straight out of mmap'd shards into
/// one flat buffer and clusters it here; `cluster_bucket` delegates to
/// this function, so the inline and dataset-ref executors stay
/// bit-identical by construction.
pub fn cluster_bucket_flat(
    points: &FlatPoints,
    ki: usize,
    kernel: Kernel,
    lanczos_threshold: usize,
    seed: u64,
    bucket_id: usize,
) -> Clustering {
    let mut cfg = SpectralConfig::new(ki)
        .kernel(kernel)
        .seed(seed ^ (bucket_id as u64).wrapping_mul(0x9E37_79B9));
    cfg.lanczos_threshold = lanczos_threshold;
    SpectralClustering::new(cfg).run_flat(points).clustering
}

/// Stitch distributed stage-2 output records `(point, bucket_id,
/// local_cluster)` into one assignment with contiguous global cluster
/// ids, given each bucket's size. Shared by [`Dasc::train_distributed`]
/// and the `dasc-dist` coordinator.
pub fn stitch_distributed(
    n: usize,
    k_total: usize,
    bucket_sizes: &[usize],
    records: &[(usize, usize, usize)],
) -> Clustering {
    let ki_per_bucket: Vec<usize> = bucket_sizes
        .iter()
        .map(|&ni| bucket_cluster_count(k_total, ni, n))
        .collect();
    let mut offsets = vec![0usize; ki_per_bucket.len() + 1];
    for (i, &ki) in ki_per_bucket.iter().enumerate() {
        offsets[i + 1] = offsets[i] + ki;
    }
    let mut assignments = vec![0usize; n];
    for &(point, bucket_id, local) in records {
        assignments[point] = offsets[bucket_id] + local.min(ki_per_bucket[bucket_id] - 1);
    }
    Clustering::new(assignments, (*offsets.last().expect("nonempty")).max(1))
}

/// Public entry to fragment consolidation (weighted K-means over
/// fragment centroids; see [`consolidate_fragments`]) for external
/// executors that replay the DASC pipeline — the `dasc-dist`
/// coordinator finishes its jobs through this exact function.
pub fn consolidate<P: PointsView + ?Sized>(
    points: &P,
    stitched: &Clustering,
    k: usize,
    seed: u64,
) -> Clustering {
    consolidate_fragments(points, stitched, k, seed)
}

/// Consolidate the stitched `Σ Kᵢ` fragment clusters down to exactly
/// `k` global clusters: weighted K-means (k-means++, Lloyd) over the
/// fragment centroids in input space, fragments weighted by size.
///
/// LSH buckets can split a natural cluster across partitions; this
/// two-level step reunites fragments, so the final clustering is
/// comparable to one produced directly with `k` clusters.
fn consolidate_fragments<P: PointsView + ?Sized>(
    points: &P,
    stitched: &Clustering,
    k: usize,
    seed: u64,
) -> Clustering {
    let num_fragments = stitched.num_clusters;
    if num_fragments <= k || points.is_empty() {
        return stitched.clone();
    }
    let d = points.dim();

    // Fragment centroids and weights. Accumulation order is point
    // order regardless of the points layout, so nested-vec and
    // shard-backed callers sum in the same sequence and agree bitwise.
    let mut centroids = vec![vec![0.0; d]; num_fragments];
    let mut weights = vec![0.0f64; num_fragments];
    for (i, &a) in stitched.assignments.iter().enumerate() {
        for (c, &v) in centroids[a].iter_mut().zip(points.row(i)) {
            *c += v;
        }
        weights[a] += 1.0;
    }
    for (c, &w) in centroids.iter_mut().zip(&weights) {
        if w > 0.0 {
            for v in c.iter_mut() {
                *v /= w;
            }
        }
    }

    let frag_to_final = weighted_kmeans(&centroids, &weights, k, seed);
    let assignments: Vec<usize> = stitched
        .assignments
        .iter()
        .map(|&a| frag_to_final[a])
        .collect();
    Clustering::new(assignments, k)
}

/// Weighted K-means over a small set of (centroid, weight) pairs.
/// Returns the cluster id of each input point. Deterministic per seed.
pub(crate) fn weighted_kmeans(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    seed: u64,
) -> Vec<usize> {
    use dasc_linalg::vector;
    use rand::{Rng, SeedableRng};

    let n = points.len();
    let k = k.min(n).max(1);
    let d = points[0].len();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xC0507);

    // Weighted k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (0..n).max_by(|&a, &b| weights[a].partial_cmp(&weights[b]).expect("NaN weight"));
    centers.push(points[first.expect("nonempty")].clone());
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| vector::sq_dist(p, &centers[0]))
        .collect();
    while centers.len() < k {
        let total: f64 = d2.iter().zip(weights).map(|(d, w)| d * w).sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, (&dd, &w)) in d2.iter().zip(weights).enumerate() {
                let mass = dd * w;
                if u < mass {
                    chosen = i;
                    break;
                }
                u -= mass;
            }
            chosen
        };
        centers.push(points[next].clone());
        let latest = centers.last().expect("just pushed").clone();
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(vector::sq_dist(p, &latest));
        }
    }

    // Weighted Lloyd iterations.
    let mut assign = vec![0usize; n];
    for _ in 0..50 {
        for (i, p) in points.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, cen) in centers.iter().enumerate() {
                let dd = vector::sq_dist(p, cen);
                if dd < best.1 {
                    best = (c, dd);
                }
            }
            assign[i] = best.0;
        }
        let mut sums = vec![vec![0.0; d]; k];
        let mut mass = vec![0.0f64; k];
        for (i, p) in points.iter().enumerate() {
            let w = weights[i];
            vector::axpy(w, p, &mut sums[assign[i]]);
            mass[assign[i]] += w;
        }
        let mut moved = 0.0;
        for c in 0..k {
            if mass[c] > 0.0 {
                let mut new_c = sums[c].clone();
                vector::scale(1.0 / mass[c], &mut new_c);
                moved += vector::dist(&centers[c], &new_c);
                centers[c] = new_c;
            }
        }
        if moved < 1e-9 {
            break;
        }
    }
    assign
}

/// Combine per-bucket clusterings into a single assignment with
/// contiguous global cluster ids.
fn stitch_global(n: usize, per_bucket: &[(Vec<usize>, Clustering)]) -> Clustering {
    let mut assignments = vec![0usize; n];
    let mut offset = 0usize;
    for (members, c) in per_bucket {
        for (local, &point) in members.iter().enumerate() {
            assignments[point] = offset + c.assignments[local];
        }
        offset += c.num_clusters;
    }
    Clustering::new(assignments, offset.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_lsh::LshConfig;

    /// Four tight blobs in the corners of the unit square.
    fn four_blobs(per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for i in 0..per {
                let jx = (i % 7) as f64 * 0.004;
                let jy = (i % 5) as f64 * 0.004;
                pts.push(vec![c[0] + jx, c[1] + jy]);
                labels.push(ci);
            }
        }
        (pts, labels)
    }

    #[test]
    fn bucket_cluster_count_rules() {
        assert_eq!(bucket_cluster_count(10, 0, 100), 0);
        assert_eq!(bucket_cluster_count(10, 1, 100), 1);
        assert_eq!(bucket_cluster_count(10, 50, 100), 5);
        assert_eq!(bucket_cluster_count(10, 100, 100), 10);
        // Never exceeds bucket size.
        assert_eq!(bucket_cluster_count(100, 2, 4), 2);
    }

    #[test]
    fn recovers_four_blobs() {
        let (pts, truth) = four_blobs(25);
        let cfg = DascConfig::for_dataset(pts.len(), 4)
            .kernel(Kernel::gaussian(0.15))
            .lsh(LshConfig::with_bits(2));
        let res = Dasc::new(cfg).run(&pts);
        assert_eq!(res.clustering.len(), 100);
        let acc = dasc_metrics::accuracy(&res.clustering.assignments, &truth);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn memory_below_full_gram() {
        // With tiny M the P = M−1 merge is transitive across the whole
        // 2-bit cube and collapses everything into one bucket (full
        // Gram); disable merging to observe the block-diagonal saving.
        let (pts, _) = four_blobs(25);
        let cfg = DascConfig::for_dataset(pts.len(), 4).lsh(LshConfig::with_bits(2).merge_p(2));
        let res = Dasc::new(cfg).run(&pts);
        let full = 4 * 100 * 100;
        assert!(
            res.approx_gram_bytes < full,
            "approx {} vs full {full}",
            res.approx_gram_bytes
        );
        assert!(res.buckets.len() >= 2, "LSH produced a single bucket");
    }

    #[test]
    fn partition_and_approximate_gram_agree() {
        let (pts, _) = four_blobs(10);
        let dasc = Dasc::new(DascConfig::for_dataset(pts.len(), 4).lsh(LshConfig::with_bits(2)));
        let (_, buckets) = dasc.partition(&pts);
        let gram = dasc.approximate_gram(&pts);
        assert_eq!(gram.blocks().len(), buckets.len());
        assert_eq!(gram.stored_entries(), buckets.approx_gram_entries());
    }

    #[test]
    fn distributed_matches_serial_accuracy() {
        let (pts, truth) = four_blobs(20);
        let cfg = DascConfig::for_dataset(pts.len(), 4)
            .kernel(Kernel::gaussian(0.15))
            .lsh(LshConfig::with_bits(2));
        let serial = Dasc::new(cfg.clone()).run(&pts);
        let dist = Dasc::new(cfg).run_distributed(&pts, &ClusterConfig::single_node());
        let acc_serial = dasc_metrics::accuracy(&serial.clustering.assignments, &truth);
        let acc_dist = dasc_metrics::accuracy(&dist.clustering.assignments, &truth);
        assert!((acc_serial - acc_dist).abs() < 1e-9);
        assert_eq!(dist.num_buckets, serial.buckets.len());
        assert_eq!(dist.approx_gram_bytes, serial.approx_gram_bytes);
    }

    #[test]
    fn distributed_stats_capture_both_stages() {
        let (pts, _) = four_blobs(10);
        let cfg = DascConfig::for_dataset(pts.len(), 4).lsh(LshConfig::with_bits(2));
        let dist = Dasc::new(cfg).run_distributed(&pts, &ClusterConfig::single_node());
        assert!(dist.stage1.num_map_tasks() >= 1);
        assert_eq!(dist.stage2.num_reduce_tasks(), dist.num_buckets);
        // Simulated time shrinks (weakly) with more nodes.
        let t1 = dist.simulate_total(&ClusterConfig::emr(1));
        let t64 = dist.simulate_total(&ClusterConfig::emr(64));
        assert!(t64 <= t1);
    }

    #[test]
    fn singleton_buckets_are_fine() {
        // One point per corner: every bucket is a singleton.
        let (pts, _) = four_blobs(1);
        let cfg = DascConfig::for_dataset(pts.len(), 4).lsh(LshConfig::with_bits(2));
        let res = Dasc::new(cfg).run(&pts);
        assert_eq!(res.clustering.len(), 4);
        // Four singleton buckets → four clusters.
        assert_eq!(res.clustering.num_clusters, 4);
    }

    #[test]
    fn custom_signatures_drive_the_pipeline() {
        // Feed sign-random-projection signatures instead of the paper's
        // axis-threshold model; blobs around distinct directions are
        // still recovered.
        use dasc_lsh::SignRandomProjection;
        let (pts, truth) = four_blobs(20);
        let m = 4usize;
        let srp = SignRandomProjection::new(m, 2, 11);
        let sigs = srp.hash_all(&pts);
        let cfg = DascConfig::for_dataset(pts.len(), 4)
            .kernel(Kernel::gaussian(0.15))
            .lsh(LshConfig::with_bits(m));
        let res = Dasc::new(cfg).run_with_signatures(&pts, &sigs);
        assert_eq!(res.clustering.len(), 80);
        let acc = dasc_metrics::accuracy(&res.clustering.assignments, &truth);
        assert!(acc > 0.8, "SRP-driven DASC accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "signature count mismatch")]
    fn mismatched_signatures_panic() {
        let (pts, _) = four_blobs(2);
        let sigs = vec![dasc_lsh::Signature::zero(2)];
        Dasc::new(DascConfig::for_dataset(8, 2)).run_with_signatures(&pts, &sigs);
    }

    #[test]
    fn consolidation_caps_cluster_count() {
        let (pts, _) = four_blobs(25);
        let cfg = DascConfig::for_dataset(pts.len(), 2)
            .kernel(Kernel::gaussian(0.15))
            .lsh(LshConfig::with_bits(2).merge_p(2));
        let with = Dasc::new(cfg.clone()).run(&pts);
        assert!(with.clustering.num_clusters <= 2);
        let without = Dasc::new(cfg.consolidate(false)).run(&pts);
        assert!(without.clustering.num_clusters >= with.clustering.num_clusters);
    }

    #[test]
    fn output_identical_across_thread_counts() {
        // The acceptance bar for real parallelism: the full pipeline —
        // LSH hashing, bucket Gram blocks, per-bucket spectral runs,
        // consolidation — produces bit-identical assignments whether it
        // runs on one worker or several.
        let (pts, _) = four_blobs(20);
        let cfg = DascConfig::for_dataset(pts.len(), 4)
            .lsh(LshConfig::with_bits(3))
            .seed(7);
        let seq = dasc_pool::Pool::new(1).install(|| Dasc::new(cfg.clone()).run(&pts));
        for threads in [2, 4] {
            let par = dasc_pool::Pool::new(threads).install(|| Dasc::new(cfg.clone()).run(&pts));
            assert_eq!(
                seq.clustering.assignments, par.clustering.assignments,
                "assignments differ at {threads} threads"
            );
            assert_eq!(seq.clustering.num_clusters, par.clustering.num_clusters);
            assert_eq!(seq.approx_gram_bytes, par.approx_gram_bytes);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (pts, _) = four_blobs(15);
        let cfg = DascConfig::for_dataset(pts.len(), 4)
            .lsh(LshConfig::with_bits(3))
            .seed(11);
        let a = Dasc::new(cfg.clone()).run(&pts);
        let b = Dasc::new(cfg).run(&pts);
        assert_eq!(a.clustering.assignments, b.clustering.assignments);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        Dasc::new(DascConfig::for_dataset(1, 1)).run(&[]);
    }

    #[test]
    fn train_emits_stage_spans_and_run_metrics() {
        // The global tracer is shared with any test running
        // concurrently, so every assertion here is monotone (presence,
        // >=, membership) rather than an exact count.
        let (pts, _) = four_blobs(15);
        let cfg = DascConfig::for_dataset(pts.len(), 4).lsh(LshConfig::with_bits(2));
        let runs_before = dasc_obs::global().counter_value("dasc_runs_total");

        let tracer = dasc_obs::tracer();
        tracer.enable();
        let res = Dasc::new(cfg).run(&pts);
        let spans = tracer.drain();
        tracer.disable();

        let names: std::collections::BTreeSet<&str> =
            spans.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "dasc.lsh",
            "dasc.lsh.fit",
            "dasc.lsh.sign",
            "dasc.bucket",
            "dasc.gram",
            "dasc.cluster",
            "dasc.cluster.bucket",
        ] {
            assert!(names.contains(stage), "missing span {stage}: {names:?}");
        }
        // lsh.fit/lsh.sign nest under some dasc.lsh span.
        let lsh_ids: std::collections::BTreeSet<u64> = spans
            .iter()
            .filter(|s| s.name == "dasc.lsh")
            .map(|s| s.id)
            .collect();
        assert!(spans
            .iter()
            .filter(|s| s.name.starts_with("dasc.lsh."))
            .all(|s| s.parent.is_some_and(|p| lsh_ids.contains(&p))));
        // At least one bucket-cluster span per bucket of our run.
        let per_bucket = spans
            .iter()
            .filter(|s| s.name == "dasc.cluster.bucket")
            .count();
        assert!(per_bucket >= res.buckets.len());

        assert!(dasc_obs::global().counter_value("dasc_runs_total") > runs_before);
    }
}
