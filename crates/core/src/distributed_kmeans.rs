//! MapReduce K-means — the Mahout algorithm the paper's related-work
//! section cites ("the open-source Apache Mahout library implements …
//! K-Means … using the MapReduce model"), and the final step of the
//! distributed spectral pipeline.
//!
//! One MapReduce job per Lloyd iteration, exactly Mahout's structure:
//! the driver broadcasts centroids, mappers emit
//! `(nearest centroid, (point-sum, count))` partial aggregates, reducers
//! average them into new centroids, and the driver checks convergence.

use dasc_linalg::vector;
use dasc_mapreduce::{
    reduce_groups, run_map_combine, ClusterConfig, FnMapper, FnReducer, JobStats,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::kmeans::KMeansConfig;
use crate::Clustering;

/// Result of a distributed K-means run.
#[derive(Clone, Debug)]
pub struct DistributedKMeansResult {
    /// Final clustering.
    pub clustering: Clustering,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations (MapReduce jobs) executed.
    pub iterations: usize,
    /// Merged statistics over all iterations' jobs.
    pub stats: JobStats,
}

/// Run K-means as iterated MapReduce jobs on the given cluster.
///
/// Deterministic per seed and independent of the cluster size (the
/// engine's shuffle is stable).
///
/// # Panics
/// Panics on an empty or ragged dataset.
pub fn distributed_kmeans(
    config: &KMeansConfig,
    points: &[Vec<f64>],
    cluster: &ClusterConfig,
) -> DistributedKMeansResult {
    assert!(!points.is_empty(), "distributed k-means: empty dataset");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "distributed k-means: ragged dataset"
    );
    let n = points.len();
    let k = config.k.min(n);

    // Driver-side k-means++ seeding (Mahout seeds on the driver too).
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut centroids = kmeanspp(points, k, &mut rng);

    let mut stats = JobStats::default();
    let mut iterations = 0;

    for _ in 0..config.max_iters {
        iterations += 1;
        // Map: point → (nearest centroid, (sum, count)).
        let centroids_ref = &centroids;
        let mapper = FnMapper::new(
            move |_idx: usize, point: Vec<f64>, emit: &mut dyn FnMut(usize, (Vec<f64>, usize))| {
                let c = nearest(&point, centroids_ref);
                emit(c, (point, 1));
            },
        );
        // Reduce: average the partial sums into the new centroid.
        let reducer = FnReducer::new(
            |cid: usize, parts: Vec<(Vec<f64>, usize)>, emit: &mut dyn FnMut((usize, Vec<f64>))| {
                let mut total = vec![0.0; parts[0].0.len()];
                let mut count = 0usize;
                for (sum, c) in parts {
                    vector::axpy(1.0, &sum, &mut total);
                    count += c;
                }
                vector::scale(1.0 / count as f64, &mut total);
                emit((cid, total));
            },
        );
        let inputs: Vec<(usize, Vec<f64>)> = points.iter().cloned().enumerate().collect();
        // Combiner: sum partial (point-sum, count) pairs per map task —
        // Mahout's combiner, shrinking the shuffle from N records to at
        // most (tasks × k).
        let grouped = run_map_combine(
            &mapper,
            |_cid: &usize, parts: Vec<(Vec<f64>, usize)>| {
                let mut total = vec![0.0; d];
                let mut count = 0usize;
                for (sum, c) in parts {
                    vector::axpy(1.0, &sum, &mut total);
                    count += c;
                }
                vec![(total, count)]
            },
            inputs,
            cluster,
        );
        stats.merge(&grouped.stats);
        let out = reduce_groups(&reducer, grouped.records, cluster);
        stats.merge(&out.stats);

        let mut movement = 0.0;
        let mut next = centroids.clone();
        for (cid, c) in out.records {
            movement += vector::dist(&centroids[cid], &c);
            next[cid] = c;
        }
        centroids = next;
        if movement <= config.tol {
            break;
        }
    }

    // Final assignment (a map-only pass in Mahout; computed driver-side
    // here since assignments must come back anyway).
    let assignments: Vec<usize> = points.iter().map(|p| nearest(p, &centroids)).collect();
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| vector::sq_dist(p, &centroids[a]))
        .sum();

    DistributedKMeansResult {
        clustering: Clustering::new(assignments, k),
        centroids,
        inertia,
        iterations,
        stats,
    }
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for (c, cen) in centroids.iter().enumerate() {
        let d = vector::sq_dist(p, cen);
        if d < best.1 {
            best = (c, d);
        }
    }
    best.0
}

fn kmeanspp(points: &[Vec<f64>], k: usize, rng: &mut ChaCha8Rng) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut centroids = vec![points[rng.gen_range(0..n)].clone()];
    let mut d2: Vec<f64> = points
        .iter()
        .map(|p| vector::sq_dist(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if u < w {
                    chosen = i;
                    break;
                }
                u -= w;
            }
            chosen
        };
        centroids.push(points[next].clone());
        let latest = centroids.last().expect("just pushed").clone();
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(vector::sq_dist(p, &latest));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            pts.push(vec![5.0 + 0.01 * i as f64, 5.0]);
        }
        pts
    }

    #[test]
    fn separates_blobs_on_mapreduce() {
        let res = distributed_kmeans(
            &KMeansConfig::new(2),
            &blobs(),
            &ClusterConfig::single_node(),
        );
        let a = res.clustering.assignments[0];
        let b = res.clustering.assignments[1];
        assert_ne!(a, b);
        for i in 0..60 {
            assert_eq!(
                res.clustering.assignments[i],
                if i % 2 == 0 { a } else { b }
            );
        }
        assert!(res.iterations >= 1);
        assert!(res.stats.num_map_tasks() >= res.iterations);
    }

    #[test]
    fn cluster_size_does_not_change_answer() {
        // The combiner sums partial aggregates per map task, so the
        // floating-point summation *order* varies with cluster size —
        // exactly as on real Hadoop. Assignments and centroids must agree
        // up to rounding, not bit-for-bit.
        let pts = blobs();
        let a = distributed_kmeans(&KMeansConfig::new(2), &pts, &ClusterConfig::single_node());
        let b = distributed_kmeans(&KMeansConfig::new(2), &pts, &ClusterConfig::emr(16));
        assert_eq!(a.clustering.assignments, b.clustering.assignments);
        for (ca, cb) in a.centroids.iter().zip(&b.centroids) {
            for (x, y) in ca.iter().zip(cb) {
                assert!((x - y).abs() < 1e-9, "centroid drift {x} vs {y}");
            }
        }
    }

    #[test]
    fn matches_serial_inertia_on_easy_data() {
        let pts = blobs();
        let dist = distributed_kmeans(&KMeansConfig::new(2), &pts, &ClusterConfig::emr(4));
        let serial = crate::KMeans::new(KMeansConfig::new(2)).run(&pts);
        assert!((dist.inertia - serial.inertia).abs() < 1e-9);
    }

    #[test]
    fn converges_quickly_on_separated_data() {
        let res = distributed_kmeans(
            &KMeansConfig::new(2),
            &blobs(),
            &ClusterConfig::single_node(),
        );
        assert!(res.iterations < 10, "took {} iterations", res.iterations);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        distributed_kmeans(&KMeansConfig::new(1), &[], &ClusterConfig::single_node());
    }
}
