//! Equivalence suite for the flat, tiled-assignment k-means: the
//! micro-kernel assignment step must land on the same clusterings as
//! the scalar reference path, on raw point clouds and on the spectral
//! embeddings the pipeline actually feeds it — at every thread count.

use dasc_core::embedding::{normalized_laplacian, row_normalize, top_eigenvectors};
use dasc_core::{AssignPath, KMeans, KMeansConfig};
use dasc_kernel::{full_gram, Kernel};
use dasc_linalg::FlatPoints;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn km(k: usize, seed: u64, path: AssignPath) -> KMeans {
    KMeans::new(KMeansConfig::new(k).seed(seed).assign_path(path))
}

/// Two well-separated Gaussian-ish blobs, n points, interleaved labels.
fn two_blobs(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.7;
            let (cx, cy) = if i % 2 == 0 { (0.0, 0.0) } else { (6.0, 6.0) };
            vec![cx + 0.3 * t.sin(), cy + 0.3 * t.cos()]
        })
        .collect()
}

/// The spectral-embedding fixture: rows of the top-k eigenvector matrix
/// of a normalized Laplacian, row-normalized — exactly what
/// `run_on_similarity` hands to k-means.
fn spectral_embedding(n: usize, k: usize) -> FlatPoints {
    let pts = two_blobs(n);
    let gram = full_gram(&pts, &Kernel::gaussian(1.5));
    let l = normalized_laplacian(&gram);
    let mut y = top_eigenvectors(&l, k, usize::MAX, 7);
    row_normalize(&mut y);
    FlatPoints::from_flat(y.into_vec(), k)
}

#[test]
fn tiled_matches_scalar_on_two_blobs() {
    // 150 points clears the Auto threshold, so Scalar vs Tiled here is a
    // genuine cross-path comparison.
    let pts = two_blobs(150);
    for seed in [0u64, 1, 42, 0xDA5C] {
        let scalar = km(2, seed, AssignPath::Scalar).run(&pts);
        let tiled = km(2, seed, AssignPath::Tiled).run(&pts);
        assert_eq!(
            scalar.assignments, tiled.assignments,
            "assignments diverge at seed {seed}"
        );
        assert!((scalar.inertia - tiled.inertia).abs() < 1e-9);
    }
}

#[test]
fn tiled_matches_scalar_on_spectral_embedding() {
    // Embedding coordinates are row-normalized (unit scale), the regime
    // the norm-expansion tolerance analysis assumes.
    for k in [2usize, 3] {
        let emb = spectral_embedding(120, k);
        for seed in [3u64, 99] {
            let scalar = km(k, seed, AssignPath::Scalar).run_flat(&emb);
            let tiled = km(k, seed, AssignPath::Tiled).run_flat(&emb);
            assert_eq!(
                scalar.assignments, tiled.assignments,
                "k={k} seed={seed}: embedding clusterings diverge"
            );
        }
    }
}

#[test]
fn flat_run_deterministic_across_thread_counts() {
    let emb = spectral_embedding(100, 2);
    let reference = dasc_pool::Pool::new(1).install(|| km(2, 5, AssignPath::Auto).run_flat(&emb));
    for threads in THREAD_COUNTS {
        let got =
            dasc_pool::Pool::new(threads).install(|| km(2, 5, AssignPath::Auto).run_flat(&emb));
        assert_eq!(
            reference.assignments, got.assignments,
            "assignments differ at {threads} threads"
        );
        assert_eq!(
            reference.inertia, got.inertia,
            "inertia differs at {threads} threads"
        );
        assert_eq!(reference.centroids, got.centroids);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn paths_agree_on_random_clouds(
        data in prop::collection::vec(-2.0f64..2.0, 130..480),
        dim in 1usize..5,
        seed in 0u64..1000,
    ) {
        // Random clouds have no structure, so Lloyd wanders more and any
        // assignment divergence between the paths compounds — this is a
        // stronger probe than the blob fixtures. Near-exact ties are
        // measure-zero for continuous draws.
        let n = data.len() / dim;
        let pts = FlatPoints::from_flat(data[..n * dim].to_vec(), dim);
        let scalar = km(3, seed, AssignPath::Scalar).run_flat(&pts);
        let tiled = km(3, seed, AssignPath::Tiled).run_flat(&pts);
        prop_assert_eq!(&scalar.assignments, &tiled.assignments);

        // And the nested-Vec entry point must match the flat one bitwise.
        let nested: Vec<Vec<f64>> = (0..n).map(|i| pts.row(i).to_vec()).collect();
        let via_nested = km(3, seed, AssignPath::Scalar).run(&nested);
        prop_assert_eq!(&scalar.assignments, &via_nested.assignments);
        prop_assert_eq!(scalar.inertia, via_nested.inertia);
    }
}
