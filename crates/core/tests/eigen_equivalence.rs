//! Pipeline-level equivalence for the eigensolver overhaul: clustering
//! labels must be independent of the eigen route on separable data and
//! bit-identical across thread counts on the k-targeted dense path.

use dasc_core::{Dasc, DascConfig, EigenBackend, SpectralClustering, SpectralConfig};
use dasc_kernel::Kernel;
use dasc_lsh::LshConfig;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Four separated blobs, `per` points each, big enough to push buckets
/// past the dense-k crossover (bucket order > 64).
fn four_blobs(per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let centers = [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9]];
    let mut pts = Vec::new();
    let mut labels = Vec::new();
    for (ci, c) in centers.iter().enumerate() {
        for i in 0..per {
            let jx = (i % 13) as f64 * 0.003;
            let jy = (i % 11) as f64 * 0.003;
            pts.push(vec![c[0] + jx, c[1] + jy]);
            labels.push(ci);
        }
    }
    (pts, labels)
}

#[test]
fn spectral_backends_agree_on_separable_data() {
    // n = 200 with k = 2: past DENSE_FULL_MAX and under the Lanczos
    // threshold, so Auto resolves to the k-targeted path — and all
    // routes must produce the same labels on clean structure.
    let (pts, truth) = four_blobs(50);
    let mut runs = Vec::new();
    for backend in [
        EigenBackend::Dense,
        EigenBackend::DenseK,
        EigenBackend::Lanczos,
        EigenBackend::Auto,
    ] {
        let cfg = SpectralConfig::new(4)
            .kernel(Kernel::gaussian(0.15))
            .backend(backend)
            .seed(7);
        runs.push((backend, SpectralClustering::new(cfg).run(&pts)));
    }
    for (backend, res) in &runs {
        let acc = dasc_metrics::accuracy(&res.clustering.assignments, &truth);
        assert!(acc > 0.99, "{backend:?} accuracy {acc}");
    }
}

#[test]
fn dense_k_spectral_run_bit_identical_across_thread_counts() {
    let (pts, _) = four_blobs(50);
    let cfg = SpectralConfig::new(4)
        .kernel(Kernel::gaussian(0.15))
        .backend(EigenBackend::DenseK)
        .seed(11);
    let reference =
        dasc_pool::Pool::new(1).install(|| SpectralClustering::new(cfg.clone()).run(&pts));
    for threads in THREAD_COUNTS {
        let got = dasc_pool::Pool::new(threads)
            .install(|| SpectralClustering::new(cfg.clone()).run(&pts));
        assert_eq!(
            reference.clustering.assignments, got.clustering.assignments,
            "labels differ at {threads} threads"
        );
    }
}

#[test]
fn dasc_pipeline_bit_identical_across_thread_counts() {
    // Buckets of ~100+ points route through the k-targeted dense solve
    // under Auto; the whole pipeline (LSH → Gram blocks → per-bucket
    // spectral → consolidation) must not depend on the pool width.
    let (pts, _) = four_blobs(100);
    let cfg = DascConfig::for_dataset(pts.len(), 4)
        .kernel(Kernel::gaussian(0.15))
        .lsh(LshConfig::with_bits(2))
        .seed(3);
    let reference = dasc_pool::Pool::new(1).install(|| Dasc::new(cfg.clone()).run(&pts));
    for threads in THREAD_COUNTS {
        let got = dasc_pool::Pool::new(threads).install(|| Dasc::new(cfg.clone()).run(&pts));
        assert_eq!(
            reference.clustering.assignments, got.clustering.assignments,
            "assignments differ at {threads} threads"
        );
        assert_eq!(
            reference.clustering.num_clusters,
            got.clustering.num_clusters
        );
        assert_eq!(reference.eigen_path, got.eigen_path);
    }
}
