//! Wikipedia-like document corpus generator.
//!
//! The paper's real dataset is 3,550,567 crawled Wikipedia documents
//! reduced to their top `F = 11` tf-idf terms, with ground-truth
//! categories. We cannot crawl Wikipedia, so this module generates a
//! corpus with the same statistical shape (the DESIGN.md substitution):
//!
//! * category counts follow the paper's fitted law
//!   `K = 17(log₂N − 9)` (Eq. 15), anchored to Table 1;
//! * vocabulary popularity is Zipfian, as natural language is;
//! * every category has a topic distribution over a subset of terms;
//! * a document mixes topic terms with background terms, is reduced to
//!   its top-`F` tf-idf terms, and embedded into an `F`-dimensional
//!   feature-hashed vector — so clustering sees exactly the kind of
//!   sparse, noisy signal the paper's pipeline produced.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;

/// Table 1 of the paper: Wikipedia dataset size vs. number of categories.
pub const TABLE1_SIZES: [(usize, usize); 12] = [
    (1024, 17),
    (2048, 31),
    (4096, 61),
    (8192, 96),
    (16384, 201),
    (32768, 330),
    (65536, 587),
    (131072, 1225),
    (262144, 2825),
    (524288, 5535),
    (1048576, 14237),
    (2097152, 42493),
];

/// Eq. 15: the paper's line fit of category count to corpus size,
/// `K = 17(log₂N − 9)`, clamped to at least one category and at most
/// `N` categories.
pub fn wiki_num_categories(n: usize) -> usize {
    if n < 2 {
        return 1;
    }
    let k = 17.0 * ((n as f64).log2() - 9.0);
    (k.round().max(1.0) as usize).min(n)
}

/// Configuration for the synthetic Wikipedia-like corpus.
#[derive(Clone, Debug)]
pub struct WikiCorpusConfig {
    /// Number of documents `N`.
    pub n: usize,
    /// Number of top tf-idf terms kept per document (`F`; paper uses 11
    /// after its term-selection study).
    pub f: usize,
    /// Override the category count; `None` applies Eq. 15.
    pub num_categories: Option<usize>,
    /// Vocabulary size; `None` scales with the category count.
    pub vocab_size: Option<usize>,
    /// Raw tokens drawn per document before tf-idf reduction.
    pub tokens_per_doc: usize,
    /// Probability that a token comes from the document's category topic
    /// (the rest is background noise).
    pub topic_affinity: f64,
    /// Category-size skew: `0.0` gives balanced categories (round-robin
    /// assignment); `s > 0` gives Zipf-like sizes `∝ (rank+1)^{−s}`
    /// (real Wikipedia categories are heavily skewed). Every category
    /// keeps at least one document when `n ≥ K`.
    pub category_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WikiCorpusConfig {
    /// Paper-shaped defaults for a corpus of `n` documents.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            f: 11,
            num_categories: None,
            vocab_size: None,
            tokens_per_doc: 40,
            topic_affinity: 0.9,
            category_skew: 0.0,
            seed: 0x5718_31c1,
        }
    }

    /// Builder: category-size skew (see
    /// [`WikiCorpusConfig::category_skew`]).
    pub fn category_skew(mut self, s: f64) -> Self {
        assert!(s >= 0.0, "category skew must be non-negative");
        self.category_skew = s;
        self
    }

    /// Builder: RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: number of retained tf-idf terms `F` (the Section 5.2
    /// term-selection study sweeps 6..=16).
    pub fn f_terms(mut self, f: usize) -> Self {
        assert!(f >= 1, "F must be at least 1");
        self.f = f;
        self
    }

    /// Builder: category count override.
    pub fn categories(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one category");
        self.num_categories = Some(k);
        self
    }

    /// Effective category count `K`.
    pub fn effective_categories(&self) -> usize {
        self.num_categories
            .unwrap_or_else(|| wiki_num_categories(self.n))
            .min(self.n.max(1))
    }

    /// Generate the corpus as a [`Dataset`] of `F`-dimensional
    /// feature-hashed tf-idf vectors, labelled by category.
    pub fn generate(&self) -> Dataset {
        let k = self.effective_categories();
        let vocab = self.vocab_size.unwrap_or((k * 40).max(2000));
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Each category's topic: a handful of characteristic terms drawn
        // from a category-exclusive block of the vocabulary — distinct
        // Wikipedia subject areas share almost no jargon. Random term ids
        // within the block give each category an independent random
        // feature-hash profile, avoiding systematic profile collisions.
        let topic_terms_per_cat = 8usize;
        let block = (vocab / k).max(topic_terms_per_cat);
        let topics: Vec<Vec<(usize, f64)>> = (0..k)
            .map(|c| {
                let base = (c * block) % vocab;
                let mut offsets: Vec<usize> = Vec::new();
                while offsets.len() < topic_terms_per_cat {
                    let o = rng.gen_range(0..block);
                    if !offsets.contains(&o) {
                        offsets.push(o);
                    }
                }
                offsets
                    .into_iter()
                    .enumerate()
                    .map(|(t, o)| {
                        let weight = 0.5f64.powi(t as i32 / 2) * rng.gen_range(0.7..1.3);
                        ((base + o) % vocab, weight)
                    })
                    .collect()
            })
            .collect();

        // Category assignment: balanced round-robin, or Zipf-skewed
        // sizes via largest-remainder apportionment.
        let category_of: Vec<usize> = if self.category_skew == 0.0 {
            (0..self.n).map(|i| i % k).collect()
        } else {
            zipf_category_assignment(self.n, k, self.category_skew)
        };

        // Pass 1: token counts per document.
        let mut doc_tokens: Vec<Vec<(usize, usize)>> = Vec::with_capacity(self.n);
        let mut doc_freq = vec![0usize; vocab];
        let mut labels = Vec::with_capacity(self.n);
        for &c in category_of.iter().take(self.n) {
            labels.push(c);
            let mut counts: std::collections::HashMap<usize, usize> =
                std::collections::HashMap::new();
            for _ in 0..self.tokens_per_doc {
                let term = if rng.gen_range(0.0..1.0) < self.topic_affinity {
                    sample_weighted(&topics[c], &mut rng)
                } else {
                    zipf_sample(vocab, &mut rng)
                };
                *counts.entry(term).or_insert(0) += 1;
            }
            let mut counts: Vec<(usize, usize)> = counts.into_iter().collect();
            counts.sort_unstable();
            for &(term, _) in &counts {
                doc_freq[term] += 1;
            }
            doc_tokens.push(counts);
        }

        // Pass 2: tf-idf, keep top F terms, feature-hash into F dims.
        let n_f = self.n as f64;
        let points: Vec<Vec<f64>> = doc_tokens
            .into_iter()
            .map(|counts| {
                let mut weighted: Vec<(usize, f64)> = counts
                    .into_iter()
                    .map(|(term, tf)| {
                        let idf = (n_f / (1.0 + doc_freq[term] as f64)).ln().max(0.0);
                        (term, tf as f64 * idf)
                    })
                    .collect();
                weighted.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("NaN tfidf")
                        .then(a.0.cmp(&b.0))
                });
                weighted.truncate(self.f);
                let mut v = vec![0.0; self.f];
                for (term, w) in weighted {
                    v[term % self.f] += w;
                }
                // L2-normalize (cosine convention for tf-idf vectors):
                // removes document-length noise so category profiles form
                // tight modes along every feature dimension.
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for x in &mut v {
                        *x /= norm;
                    }
                }
                v
            })
            .collect();

        let mut ds = Dataset::new(
            points,
            Some(labels),
            format!("wiki(n={},k={},f={})", self.n, k, self.f),
        );
        ds.normalize_unit_range();
        ds
    }
}

/// Deterministic Zipf-skewed category assignment: sizes
/// `∝ (rank+1)^{−s}` apportioned by largest remainder, at least one
/// document per category when `n ≥ k`. Documents of a category are
/// contiguous by index.
fn zipf_category_assignment(n: usize, k: usize, s: f64) -> Vec<usize> {
    let weights: Vec<f64> = (0..k).map(|c| ((c + 1) as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    // Floor shares with a one-doc floor, then distribute remainders by
    // largest fractional part.
    let spare = n.saturating_sub(k);
    let mut sizes: Vec<usize> = vec![usize::from(n >= k); k];
    let mut fracs: Vec<(f64, usize)> = Vec::with_capacity(k);
    let mut assigned: usize = sizes.iter().sum();
    for c in 0..k {
        let share = spare as f64 * weights[c] / total;
        let fl = share.floor() as usize;
        sizes[c] += fl;
        assigned += fl;
        fracs.push((share - share.floor(), c));
    }
    fracs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN").then(a.1.cmp(&b.1)));
    let mut i = 0;
    while assigned < n {
        sizes[fracs[i % k].1] += 1;
        assigned += 1;
        i += 1;
    }
    let mut out = Vec::with_capacity(n);
    for (c, &sz) in sizes.iter().enumerate() {
        out.extend(std::iter::repeat_n(c, sz));
    }
    out.truncate(n);
    out
}

/// Sample a term id from a weighted topic list.
fn sample_weighted(topic: &[(usize, f64)], rng: &mut ChaCha8Rng) -> usize {
    let total: f64 = topic.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen_range(0.0..total);
    for &(term, w) in topic {
        if u < w {
            return term;
        }
        u -= w;
    }
    topic.last().expect("nonempty topic").0
}

/// Approximate Zipf(1.0) sampling over `vocab` ranks via inverse CDF on
/// the harmonic weights (rejection-free, deterministic per RNG state).
fn zipf_sample(vocab: usize, rng: &mut ChaCha8Rng) -> usize {
    // Inverse-CDF on the continuous approximation: P(rank ≤ x) ≈ ln(x)/ln(V).
    let u: f64 = rng.gen_range(0.0..1.0);
    let x = (vocab as f64).powf(u);
    (x as usize).min(vocab - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq15_matches_anchor_points() {
        // Eq. 15 is exact at the fit anchor N = 2^10 → 17 categories,
        // and close at the next sizes. (Note: the paper's own fit departs
        // sharply from Table 1 at the tail — 17(21−9) = 204 vs the
        // table's 42,493 at N = 2²¹ — so only the head is checked; the
        // law itself is what the paper's analysis uses.)
        assert_eq!(wiki_num_categories(1024), 17);
        assert_eq!(wiki_num_categories(2048), 34); // table: 31
        assert_eq!(wiki_num_categories(4096), 51); // table: 61
                                                   // Monotone non-decreasing and never below 1 across Table 1 sizes.
        let mut last = 0;
        for &(n, _) in &TABLE1_SIZES {
            let k_fit = wiki_num_categories(n);
            assert!(k_fit >= 1 && k_fit >= last);
            last = k_fit;
        }
    }

    #[test]
    fn categories_clamped_for_tiny_n() {
        assert_eq!(wiki_num_categories(0), 1);
        assert_eq!(wiki_num_categories(1), 1);
        assert_eq!(wiki_num_categories(2), 1);
        assert!(wiki_num_categories(512) >= 1);
    }

    #[test]
    fn corpus_shape() {
        let ds = WikiCorpusConfig::new(256).categories(8).generate();
        assert_eq!(ds.len(), 256);
        assert_eq!(ds.dims(), 11);
        assert_eq!(ds.num_classes(), Some(8));
    }

    #[test]
    fn values_normalized() {
        let ds = WikiCorpusConfig::new(128).categories(4).generate();
        for p in &ds.points {
            for &v in p {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WikiCorpusConfig::new(64).categories(4).seed(5).generate();
        let b = WikiCorpusConfig::new(64).categories(4).seed(5).generate();
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn f_terms_changes_dimensionality() {
        let ds = WikiCorpusConfig::new(64)
            .categories(4)
            .f_terms(6)
            .generate();
        assert_eq!(ds.dims(), 6);
        let ds = WikiCorpusConfig::new(64)
            .categories(4)
            .f_terms(16)
            .generate();
        assert_eq!(ds.dims(), 16);
    }

    #[test]
    fn same_category_docs_are_more_similar() {
        let ds = WikiCorpusConfig::new(300).categories(3).seed(2).generate();
        let labels = ds.labels.as_ref().unwrap();
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in 0..100 {
            for j in (i + 1)..100 {
                let d: f64 = ds.points[i]
                    .iter()
                    .zip(&ds.points[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if labels[i] == labels[j] {
                    within = (within.0 + d, within.1 + 1);
                } else {
                    across = (across.0 + d, across.1 + 1);
                }
            }
        }
        let w = within.0 / within.1 as f64;
        let a = across.0 / across.1 as f64;
        assert!(
            w < a,
            "topic structure not recoverable: within {w} vs across {a}"
        );
    }

    #[test]
    fn zipf_categories_cover_all_and_sum_to_n() {
        let assign = zipf_category_assignment(1000, 20, 1.0);
        assert_eq!(assign.len(), 1000);
        let mut counts = vec![0usize; 20];
        for &c in &assign {
            counts[c] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 1), "empty category: {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        // Head category much larger than tail under skew 1.
        assert!(
            counts[0] > 4 * counts[19],
            "skew too mild: head {} tail {}",
            counts[0],
            counts[19]
        );
    }

    #[test]
    fn skewed_corpus_generates_with_ground_truth() {
        let ds = WikiCorpusConfig::new(400)
            .categories(8)
            .category_skew(1.2)
            .seed(4)
            .generate();
        assert_eq!(ds.len(), 400);
        assert_eq!(ds.num_classes(), Some(8));
        let labels = ds.labels.unwrap();
        let c0 = labels.iter().filter(|&&l| l == 0).count();
        let c7 = labels.iter().filter(|&&l| l == 7).count();
        assert!(c0 > c7, "head {c0} not larger than tail {c7}");
    }

    #[test]
    fn zero_skew_is_balanced() {
        let assign = zipf_category_assignment(100, 4, 0.0);
        let mut counts = vec![0usize; 4];
        for &c in &assign {
            counts[c] += 1;
        }
        assert_eq!(counts, vec![25; 4]);
    }

    #[test]
    fn zipf_sample_in_range_and_skewed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut low = 0;
        for _ in 0..1000 {
            let t = zipf_sample(1000, &mut rng);
            assert!(t < 1000);
            if t < 100 {
                low += 1;
            }
        }
        // Zipf mass concentrates on low ranks: ≥ half the draws in the
        // first decile.
        assert!(low >= 500, "only {low}/1000 draws in the head");
    }

    #[test]
    #[should_panic(expected = "F must be at least 1")]
    fn zero_f_panics() {
        WikiCorpusConfig::new(10).f_terms(0);
    }
}
