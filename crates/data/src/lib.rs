//! Dataset generation for the DASC experiments.
//!
//! The paper evaluates on two data sources:
//!
//! * **Synthetic** — 1 K to 4 M points, 64-dimensional, every feature in
//!   `[0, 1]` (Section 5.2). [`SyntheticConfig`] reproduces this with
//!   controllable cluster count, spread and seed.
//! * **Wikipedia** — 3.55 M crawled documents reduced to their top
//!   `F = 11` tf-idf terms, with ground-truth categories whose count
//!   follows the fitted law `K = 17(log₂N − 9)` (Eq. 15, Table 1).
//!   Crawling Wikipedia is outside this reproduction's reach, so
//!   [`WikiCorpusConfig`] generates a synthetic corpus with the same
//!   statistical shape: Zipfian vocabularies, per-category topic
//!   distributions, tf-idf weighting, and exactly the Table 1 category
//!   scaling. See DESIGN.md for the substitution argument.

pub mod csv;
pub mod dataset;
pub mod store_io;
pub mod synthetic;
pub mod wiki;

pub use csv::CsvError;
pub use dataset::Dataset;
pub use store_io::{dataset_from_store, dataset_to_store, pack_csv_to_store, PackError};
pub use synthetic::SyntheticConfig;
pub use wiki::{wiki_num_categories, WikiCorpusConfig, TABLE1_SIZES};
