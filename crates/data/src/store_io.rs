//! Dataset ⇄ on-disk store conversion and the streaming CSV→store
//! packer.
//!
//! The packer drives the CSV core row-by-row straight into a
//! [`StoreWriter`], so packing a file into a `.dstr` directory holds
//! at most one shard of points in memory — the out-of-core entry path
//! for datasets larger than RAM.

use std::io::BufRead;
use std::path::Path;

use dasc_store::{DatasetManifest, StoreError, StoreReader, StoreWriter};

use crate::csv::{for_each_row, CsvError};
use crate::Dataset;

/// What can go wrong while packing a CSV into a store.
#[derive(Clone, Debug, PartialEq)]
pub enum PackError {
    /// The CSV itself is malformed.
    Csv(CsvError),
    /// Writing the store failed.
    Store(StoreError),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::Csv(e) => write!(f, "{e}"),
            PackError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PackError {}

impl From<CsvError> for PackError {
    fn from(e: CsvError) -> Self {
        PackError::Csv(e)
    }
}

impl From<StoreError> for PackError {
    fn from(e: StoreError) -> Self {
        PackError::Store(e)
    }
}

/// Stream CSV rows into a `.dstr` store directory, one shard in
/// memory at a time. The first data row fixes the dimension.
pub fn pack_csv_to_store(
    reader: impl BufRead,
    labels_last_column: bool,
    out_dir: &Path,
    shard_rows: usize,
) -> Result<DatasetManifest, PackError> {
    let mut writer: Option<StoreWriter> = None;
    let mut pending: Option<StoreError> = None;
    for_each_row(reader, labels_last_column, |row, label| {
        if pending.is_some() {
            return Ok(());
        }
        let w = match &mut writer {
            Some(w) => w,
            None => match StoreWriter::create(out_dir, row.len(), label.is_some(), shard_rows) {
                Ok(w) => writer.insert(w),
                Err(e) => {
                    pending = Some(e);
                    return Ok(());
                }
            },
        };
        if let Err(e) = w.push_row(row, label) {
            pending = Some(e);
        }
        Ok(())
    })?;
    if let Some(e) = pending {
        return Err(e.into());
    }
    let writer = writer.ok_or(PackError::Csv(CsvError::Empty))?;
    Ok(writer.finish()?)
}

/// Write an in-memory [`Dataset`] out as a store.
pub fn dataset_to_store(
    ds: &Dataset,
    out_dir: &Path,
    shard_rows: usize,
) -> Result<DatasetManifest, StoreError> {
    let mut w = StoreWriter::create(out_dir, ds.dims(), ds.labels.is_some(), shard_rows)?;
    for (i, p) in ds.points.iter().enumerate() {
        w.push_row(p, ds.labels.as_ref().map(|ls| ls[i]))?;
    }
    w.finish()
}

/// Materialize a store back into an in-memory [`Dataset`] (named after
/// the store directory). Verifies every shard on the way through.
pub fn dataset_from_store(reader: &StoreReader) -> Result<Dataset, StoreError> {
    reader.verify_all()?;
    let mut points = Vec::with_capacity(reader.len());
    for s in 0..reader.manifest().shards.len() {
        let shard = reader.shard(s)?;
        points.extend(shard.points().iter().map(<[f64]>::to_vec));
    }
    let labels = reader.labels()?;
    let name = reader
        .path()
        .file_stem()
        .map_or_else(|| "store".to_string(), |s| s.to_string_lossy().into_owned());
    Ok(Dataset::new(points, labels, name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dasc-dataio-{}-{tag}-{seq}.dstr",
            std::process::id()
        ))
    }

    #[test]
    fn csv_pack_then_reopen_is_bit_identical() {
        let csv = "# x,y,label\n0.5,1.25,0\n-2.0,4.0,1\n8.5,0.125,0\n";
        let dir = temp_dir("csvpack");
        let manifest = pack_csv_to_store(Cursor::new(csv), true, &dir, 2).expect("pack");
        assert_eq!(manifest.n, 3);
        assert_eq!(manifest.dim, 2);
        assert!(manifest.has_labels);
        assert_eq!(manifest.shards.len(), 2);

        let r = StoreReader::open(&dir).expect("open");
        let ds = dataset_from_store(&r).expect("to dataset");
        assert_eq!(
            ds.points,
            vec![vec![0.5, 1.25], vec![-2.0, 4.0], vec![8.5, 0.125]]
        );
        assert_eq!(ds.labels, Some(vec![0, 1, 0]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_roundtrips_through_store() {
        let ds = Dataset::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            Some(vec![0, 1, 1]),
            "roundtrip",
        );
        let dir = temp_dir("dataset");
        let manifest = dataset_to_store(&ds, &dir, 2).expect("to store");
        assert_eq!(manifest.n, 3);

        let r = StoreReader::open(&dir).expect("open");
        let back = dataset_from_store(&r).expect("from store");
        assert_eq!(back.points, ds.points);
        assert_eq!(back.labels, ds.labels);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_csv_surfaces_as_csv_error() {
        let dir = temp_dir("badcsv");
        let err = pack_csv_to_store(Cursor::new("1.0,2.0\nnope,1.0\n"), false, &dir, 4)
            .expect_err("bad cell");
        assert!(matches!(err, PackError::Csv(CsvError::BadNumber { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_csv_is_empty_error() {
        let dir = temp_dir("emptycsv");
        let err =
            pack_csv_to_store(Cursor::new("# only comments\n"), false, &dir, 4).expect_err("empty");
        assert_eq!(err, PackError::Csv(CsvError::Empty));
        std::fs::remove_dir_all(&dir).ok();
    }
}
