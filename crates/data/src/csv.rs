//! Minimal CSV reading/writing for numeric point data (no external
//! dependencies; comma-separated, `#`-comments and blank lines
//! skipped).
//!
//! The parser streams line-by-line into one growing flat buffer
//! ([`read_points_flat`]) — one allocation amortized over the whole
//! file, not one `Vec<f64>` per point. The nested-row
//! [`read_points`] is a compatibility wrapper over the same core.

use std::io::{BufRead, Write};

use dasc_linalg::FlatPoints;

/// CSV shape/parse failure.
#[derive(Clone, Debug, PartialEq)]
pub enum CsvError {
    /// Non-numeric cell.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Offending cell text.
        cell: String,
    },
    /// Inconsistent column count.
    Ragged {
        /// 1-based line number.
        line: usize,
    },
    /// No data rows at all.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadNumber { line, cell } => {
                write!(f, "line {line}: cannot parse '{cell}' as a number")
            }
            CsvError::Ragged { line } => {
                write!(f, "line {line}: inconsistent column count")
            }
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parsed CSV content: the points plus optional trailing-column labels.
pub type PointsAndLabels = (Vec<Vec<f64>>, Option<Vec<usize>>);

/// Parsed CSV content in flat row-major form.
pub type FlatPointsAndLabels = (FlatPoints, Option<Vec<usize>>);

/// Visit each data row of the CSV exactly once, streaming: `on_row`
/// receives the parsed cells (label column already split off when
/// `labels_last_column`) and the optional label. This is the single
/// parsing core — the flat reader, the nested reader, and the
/// CSV→store packer all drive it, so they agree on comments, blanks,
/// whitespace, ragged detection, and label rounding by construction.
pub fn for_each_row(
    reader: impl BufRead,
    labels_last_column: bool,
    mut on_row: impl FnMut(&[f64], Option<usize>) -> Result<(), CsvError>,
) -> Result<usize, CsvError> {
    let mut width: Option<usize> = None;
    let mut row: Vec<f64> = Vec::new();
    let mut rows = 0usize;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|_| CsvError::Ragged { line: line_no })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        row.clear();
        for cell in trimmed.split(',') {
            let cell = cell.trim();
            let v: f64 = cell.parse().map_err(|_| CsvError::BadNumber {
                line: line_no,
                cell: cell.to_string(),
            })?;
            row.push(v);
        }
        match width {
            None => width = Some(row.len()),
            Some(w) if w != row.len() => return Err(CsvError::Ragged { line: line_no }),
            _ => {}
        }
        let label = if labels_last_column {
            let l = row.pop().ok_or(CsvError::Ragged { line: line_no })?;
            Some(l.round().max(0.0) as usize)
        } else {
            None
        };
        on_row(&row, label)?;
        rows += 1;
    }
    if rows == 0 {
        return Err(CsvError::Empty);
    }
    Ok(rows)
}

/// Read numeric rows into one flat row-major buffer. Returns the
/// packed points and, when `labels_last_column` is set, the final
/// column rounded to ground-truth labels.
pub fn read_points_flat(
    reader: impl BufRead,
    labels_last_column: bool,
) -> Result<FlatPointsAndLabels, CsvError> {
    let mut flat: Vec<f64> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut dim = 0usize;
    let rows = for_each_row(reader, labels_last_column, |row, label| {
        dim = row.len();
        flat.extend_from_slice(row);
        if let Some(l) = label {
            labels.push(l);
        }
        Ok(())
    })?;
    debug_assert!(dim == 0 || flat.len() == rows * dim);
    let points = FlatPoints::from_flat(flat, dim);
    Ok((points, labels_last_column.then_some(labels)))
}

/// Read numeric rows as nested `Vec<Vec<f64>>` (compatibility wrapper
/// over [`read_points_flat`]).
pub fn read_points(
    reader: impl BufRead,
    labels_last_column: bool,
) -> Result<PointsAndLabels, CsvError> {
    let mut points: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for_each_row(reader, labels_last_column, |row, label| {
        points.push(row.to_vec());
        if let Some(l) = label {
            labels.push(l);
        }
        Ok(())
    })?;
    Ok((points, labels_last_column.then_some(labels)))
}

/// Write points (optionally with a trailing label column).
pub fn write_points(
    mut w: impl Write,
    points: &[Vec<f64>],
    labels: Option<&[usize]>,
) -> std::io::Result<()> {
    for (i, p) in points.iter().enumerate() {
        let mut row: Vec<String> = p.iter().map(|v| format!("{v}")).collect();
        if let Some(ls) = labels {
            row.push(ls[i].to_string());
        }
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Write one assignment per line (`index,cluster`).
pub fn write_assignments(mut w: impl Write, assignments: &[usize]) -> std::io::Result<()> {
    writeln!(w, "# index,cluster")?;
    for (i, &c) in assignments.iter().enumerate() {
        writeln!(w, "{i},{c}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_basic() {
        let data = "1.0,2.0\n3.5,4.5\n";
        let (pts, labels) = read_points(Cursor::new(data), false).unwrap();
        assert_eq!(pts, vec![vec![1.0, 2.0], vec![3.5, 4.5]]);
        assert!(labels.is_none());
    }

    #[test]
    fn read_with_labels_and_comments() {
        let data = "# x,y,label\n0.1,0.2,0\n\n0.8,0.9,1\n";
        let (pts, labels) = read_points(Cursor::new(data), true).unwrap();
        assert_eq!(pts, vec![vec![0.1, 0.2], vec![0.8, 0.9]]);
        assert_eq!(labels, Some(vec![0, 1]));
    }

    #[test]
    fn flat_reader_matches_nested_bitwise() {
        let data = "# header\n1.0,2.5,0\n-3.125,0.0625,1\n 7 , 8 , 2 \n";
        for labels_last in [false, true] {
            let (nested, nlabels) = read_points(Cursor::new(data), labels_last).unwrap();
            let (flat, flabels) = read_points_flat(Cursor::new(data), labels_last).unwrap();
            assert_eq!(flat.to_rows(), nested);
            assert_eq!(flabels, nlabels);
            for (i, row) in nested.iter().enumerate() {
                for (a, b) in flat.row(i).iter().zip(row) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let data = " 1.0 , 2.0 \n";
        let (pts, _) = read_points(Cursor::new(data), false).unwrap();
        assert_eq!(pts[0], vec![1.0, 2.0]);
    }

    #[test]
    fn bad_number_reports_line() {
        let data = "1.0\nbad\n";
        let err = read_points(Cursor::new(data), false).unwrap_err();
        assert_eq!(
            err,
            CsvError::BadNumber {
                line: 2,
                cell: "bad".into()
            }
        );
        assert!(read_points_flat(Cursor::new(data), false).is_err());
    }

    #[test]
    fn ragged_detected() {
        let data = "1.0,2.0\n3.0\n";
        let err = read_points(Cursor::new(data), false).unwrap_err();
        assert_eq!(err, CsvError::Ragged { line: 2 });
        assert_eq!(
            read_points_flat(Cursor::new(data), false).unwrap_err(),
            CsvError::Ragged { line: 2 }
        );
    }

    #[test]
    fn empty_rejected() {
        let err = read_points(Cursor::new("# nothing\n"), false).unwrap_err();
        assert_eq!(err, CsvError::Empty);
        assert_eq!(
            read_points_flat(Cursor::new("# nothing\n"), false).unwrap_err(),
            CsvError::Empty
        );
    }

    #[test]
    fn roundtrip() {
        let pts = vec![vec![0.25, 0.75], vec![1.5, -2.0]];
        let labels = vec![3usize, 1];
        let mut buf = Vec::new();
        write_points(&mut buf, &pts, Some(&labels)).unwrap();
        let (rpts, rlabels) = read_points(Cursor::new(buf), true).unwrap();
        assert_eq!(rpts, pts);
        assert_eq!(rlabels, Some(labels));
    }

    #[test]
    fn assignments_format() {
        let mut buf = Vec::new();
        write_assignments(&mut buf, &[2, 0, 1]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "# index,cluster\n0,2\n1,0\n2,1\n");
    }
}
