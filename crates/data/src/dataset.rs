//! The dataset container shared by every experiment.

/// A labelled point set.
///
/// `labels`, when present, hold the ground-truth cluster/category of each
/// point and drive the accuracy metric of Figure 3.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Feature vectors, all the same dimensionality.
    pub points: Vec<Vec<f64>>,
    /// Optional ground-truth labels, same length as `points`.
    pub labels: Option<Vec<usize>>,
    /// Human-readable provenance tag.
    pub name: String,
}

impl Dataset {
    /// Build a dataset, validating shape invariants.
    ///
    /// # Panics
    /// Panics on ragged points or a label/point length mismatch.
    pub fn new(points: Vec<Vec<f64>>, labels: Option<Vec<usize>>, name: impl Into<String>) -> Self {
        if let Some(first) = points.first() {
            let d = first.len();
            assert!(
                points.iter().all(|p| p.len() == d),
                "Dataset: ragged points"
            );
        }
        if let Some(l) = &labels {
            assert_eq!(l.len(), points.len(), "Dataset: label count mismatch");
        }
        Self {
            points,
            labels,
            name: name.into(),
        }
    }

    /// Number of points `N`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality `d` (0 for an empty dataset).
    pub fn dims(&self) -> usize {
        self.points.first().map(|p| p.len()).unwrap_or(0)
    }

    /// Number of distinct ground-truth labels, if labelled.
    ///
    /// Single O(n) pass — labels are small non-negative class ids, so
    /// a bitset covers the common case and a `HashSet` absorbs any
    /// outliers without cloning or sorting the label vector.
    pub fn num_classes(&self) -> Option<usize> {
        self.labels.as_ref().map(|ls| {
            const BITSET_LIMIT: usize = 1 << 16;
            let mut bits = vec![0u64; 64]; // classes < 4096 stay in the bitset
            let mut distinct = 0usize;
            let mut large: Option<std::collections::HashSet<usize>> = None;
            for &l in ls {
                if l < BITSET_LIMIT {
                    let word = l / 64;
                    if word >= bits.len() {
                        bits.resize(word + 1, 0);
                    }
                    let mask = 1u64 << (l % 64);
                    if bits[word] & mask == 0 {
                        bits[word] |= mask;
                        distinct += 1;
                    }
                } else if large.get_or_insert_with(Default::default).insert(l) {
                    distinct += 1;
                }
            }
            distinct
        })
    }

    /// Min–max normalize every feature to `[0, 1]` in place — the
    /// "standard preprocessing step in data mining applications" the
    /// paper applies. Constant dimensions map to 0.
    pub fn normalize_unit_range(&mut self) {
        let d = self.dims();
        if self.points.is_empty() || d == 0 {
            return;
        }
        for j in 0..d {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for p in &self.points {
                lo = lo.min(p[j]);
                hi = hi.max(p[j]);
            }
            let span = hi - lo;
            for p in &mut self.points {
                p[j] = if span > 0.0 { (p[j] - lo) / span } else { 0.0 };
            }
        }
    }

    /// Deterministic shuffled train/test split: `frac` of the points go
    /// to the first dataset, the rest to the second.
    ///
    /// # Panics
    /// Panics unless `frac ∈ (0, 1)`.
    pub fn split(&self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(frac > 0.0 && frac < 1.0, "split fraction must be in (0, 1)");
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let cut = ((self.len() as f64) * frac).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        let pick = |ids: &[usize], tag: &str| Dataset {
            points: ids.iter().map(|&i| self.points[i].clone()).collect(),
            labels: self
                .labels
                .as_ref()
                .map(|ls| ids.iter().map(|&i| ls[i]).collect()),
            name: format!("{}[{tag}]", self.name),
        };
        (pick(&idx[..cut], "train"), pick(&idx[cut..], "test"))
    }

    /// Deterministically take the first `n` points (the paper varies
    /// dataset size by sampling from a fixed corpus).
    pub fn truncate(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            points: self.points[..n].to_vec(),
            labels: self.labels.as_ref().map(|l| l[..n].to_vec()),
            name: format!("{}[..{}]", self.name, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 10.0]],
            Some(vec![0, 1, 0]),
            "t",
        )
    }

    #[test]
    fn shape_accessors() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.num_classes(), Some(2));
        assert!(!d.is_empty());
    }

    #[test]
    fn num_classes_counts_distinct_without_mutating() {
        let labels = vec![5, 0, 5, 2, 1_000_000, 2, 1_000_000, 70_000];
        let d = Dataset::new(
            vec![vec![0.0]; labels.len()],
            Some(labels.clone()),
            "classes",
        );
        assert_eq!(d.num_classes(), Some(5));
        assert_eq!(d.labels, Some(labels), "label order preserved");
    }

    #[test]
    fn normalize_maps_to_unit_range() {
        let mut d = sample();
        d.normalize_unit_range();
        assert_eq!(d.points[0], vec![0.0, 0.0]);
        assert_eq!(d.points[1], vec![0.5, 1.0]);
        assert_eq!(d.points[2], vec![1.0, 0.0]);
    }

    #[test]
    fn normalize_constant_dim_to_zero() {
        let mut d = Dataset::new(vec![vec![7.0], vec![7.0]], None, "c");
        d.normalize_unit_range();
        assert_eq!(d.points, vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn split_partitions_without_loss() {
        let d = Dataset::new(
            (0..20).map(|i| vec![i as f64]).collect(),
            Some((0..20).map(|i| i % 2).collect()),
            "s",
        );
        let (train, test) = d.split(0.7, 3);
        assert_eq!(train.len(), 14);
        assert_eq!(test.len(), 6);
        // Every original value appears exactly once across the halves.
        let mut all: Vec<f64> = train
            .points
            .iter()
            .chain(&test.points)
            .map(|p| p[0])
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..20).map(|i| i as f64).collect::<Vec<_>>());
        // Labels follow their points.
        for (p, &l) in train.points.iter().zip(train.labels.as_ref().unwrap()) {
            assert_eq!(l, (p[0] as usize) % 2);
        }
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let d = Dataset::new((0..30).map(|i| vec![i as f64]).collect(), None, "s");
        let (a1, _) = d.split(0.5, 7);
        let (a2, _) = d.split(0.5, 7);
        assert_eq!(a1.points, a2.points);
        let (b, _) = d.split(0.5, 8);
        assert_ne!(a1.points, b.points);
    }

    #[test]
    #[should_panic(expected = "split fraction")]
    fn bad_split_fraction_panics() {
        sample().split(1.5, 0);
    }

    #[test]
    fn truncate_keeps_labels_aligned() {
        let d = sample().truncate(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels, Some(vec![0, 1]));
        // Truncating beyond length is a no-op.
        assert_eq!(sample().truncate(10).len(), 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_points_panic() {
        Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], None, "bad");
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn label_mismatch_panics() {
        Dataset::new(vec![vec![1.0]], Some(vec![0, 1]), "bad");
    }

    #[test]
    fn empty_dataset_is_fine() {
        let d = Dataset::new(vec![], None, "empty");
        assert!(d.is_empty());
        assert_eq!(d.dims(), 0);
        assert_eq!(d.num_classes(), None);
    }
}
