//! Synthetic Gaussian-mixture datasets (paper Section 5.2).
//!
//! "The size of the synthetic datasets ranges from 1024 to 4 million data
//! points. Each data point is a 64-dimension vector, where each dimension
//! takes a real value chosen from the period [0–1]."

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;

/// Configuration for a synthetic blob dataset.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of points `N`.
    pub n: usize,
    /// Dimensionality `d` (paper uses 64).
    pub d: usize,
    /// Number of ground-truth clusters `K`.
    pub k: usize,
    /// When set, the first `grid_bits` dimensions carry a binary grid:
    /// cluster `c`'s centroid is `0.25 + 0.5·bit_j(c)` along dimension
    /// `j < grid_bits` (and near 0.5 elsewhere), so axis-aligned LSH
    /// cuts at mid-range separate clusters exactly. This is the
    /// LSH-aligned regime the paper's collision analysis assumes for its
    /// Wikipedia data. Requires `k == 2^grid_bits`.
    pub grid_bits: Option<usize>,
    /// Per-dimension Gaussian spread of each blob (σ before clamping).
    pub spread: f64,
    /// Fraction of points replaced by uniform background noise in
    /// `[0,1]^d` (labelled with their nearest centroid).
    pub noise_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's synthetic setup: `d = 64`, values in `[0, 1]`, with a
    /// cluster spread small enough that clusters are recoverable.
    pub fn blobs(n: usize, d: usize, k: usize) -> Self {
        assert!(k >= 1, "need at least one cluster");
        assert!(d >= 1, "need at least one dimension");
        Self {
            n,
            d,
            k,
            grid_bits: None,
            spread: 0.04,
            noise_fraction: 0.0,
            seed: 0xDA5C,
        }
    }

    /// LSH-aligned grid mixture: `2^bits` clusters whose centroids form
    /// a binary grid over the first `bits` dimensions (see
    /// [`SyntheticConfig::grid_bits`]).
    ///
    /// # Panics
    /// Panics if `bits == 0` or `d < bits`.
    pub fn grid(n: usize, d: usize, bits: usize) -> Self {
        assert!(bits >= 1, "grid needs at least one bit");
        assert!(d >= bits, "grid needs d >= bits");
        let mut c = Self::blobs(n, d, 1 << bits);
        c.grid_bits = Some(bits);
        c
    }

    /// The exact paper defaults: 64 dimensions.
    pub fn paper_default(n: usize, k: usize) -> Self {
        Self::blobs(n, 64, k)
    }

    /// Builder: set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set the blob spread.
    pub fn spread(mut self, spread: f64) -> Self {
        assert!(spread >= 0.0, "spread must be non-negative");
        self.spread = spread;
        self
    }

    /// Builder: set the uniform-noise fraction.
    pub fn noise_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "noise fraction must be in [0,1]");
        self.noise_fraction = f;
        self
    }

    /// Generate the dataset. Deterministic for a given configuration.
    pub fn generate(&self) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Centroids drawn uniformly in [0.15, 0.85]^d so spread-σ tails
        // rarely clip at the domain boundary; grid mode pins the leading
        // dimensions to {0.25, 0.75} by the cluster id's bits and keeps
        // the rest low-span so span-ranked LSH picks the grid dimensions.
        let centroids: Vec<Vec<f64>> = (0..self.k)
            .map(|c| {
                (0..self.d)
                    .map(|j| match self.grid_bits {
                        Some(bits) if j < bits => {
                            if (c >> j) & 1 == 1 {
                                0.75
                            } else {
                                0.25
                            }
                        }
                        Some(_) => rng.gen_range(0.45..0.55),
                        None => rng.gen_range(0.15..0.85),
                    })
                    .collect()
            })
            .collect();

        let mut points = Vec::with_capacity(self.n);
        let mut labels = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let is_noise = rng.gen_range(0.0..1.0) < self.noise_fraction;
            if is_noise {
                let p: Vec<f64> = (0..self.d).map(|_| rng.gen_range(0.0..1.0)).collect();
                labels.push(nearest_centroid(&p, &centroids));
                points.push(p);
            } else {
                // Round-robin cluster membership keeps cluster sizes
                // balanced, matching controlled synthetic benchmarks.
                let c = i % self.k;
                let p: Vec<f64> = centroids[c]
                    .iter()
                    .map(|&mu| (mu + self.spread * standard_normal(&mut rng)).clamp(0.0, 1.0))
                    .collect();
                labels.push(c);
                points.push(p);
            }
        }

        Dataset::new(
            points,
            Some(labels),
            format!("synthetic(n={},d={},k={})", self.n, self.d, self.k),
        )
    }
}

fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| sq_dist(p, a).partial_cmp(&sq_dist(p, b)).expect("NaN"))
        .map(|(i, _)| i)
        .expect("at least one centroid")
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let ds = SyntheticConfig::blobs(100, 8, 3).generate();
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dims(), 8);
        assert_eq!(ds.num_classes(), Some(3));
    }

    #[test]
    fn values_in_unit_range() {
        let ds = SyntheticConfig::blobs(500, 16, 4).spread(0.3).generate();
        for p in &ds.points {
            for &v in p {
                assert!((0.0..=1.0).contains(&v), "value {v} out of range");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticConfig::blobs(50, 4, 2).seed(1).generate();
        let b = SyntheticConfig::blobs(50, 4, 2).seed(1).generate();
        assert_eq!(a.points, b.points);
        assert_eq!(a.labels, b.labels);
        let c = SyntheticConfig::blobs(50, 4, 2).seed(2).generate();
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn clusters_are_separated_with_small_spread() {
        let ds = SyntheticConfig::blobs(200, 8, 2).seed(3).generate();
        let labels = ds.labels.as_ref().unwrap();
        // Within-cluster distances must be far below the cross-cluster
        // distance on average.
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len().min(i + 20) {
                let d = sq_dist(&ds.points[i], &ds.points[j]).sqrt();
                if labels[i] == labels[j] {
                    within = (within.0 + d, within.1 + 1);
                } else {
                    across = (across.0 + d, across.1 + 1);
                }
            }
        }
        let w = within.0 / within.1 as f64;
        let a = across.0 / across.1 as f64;
        assert!(
            w * 2.0 < a,
            "clusters not separated: within {w}, across {a}"
        );
    }

    #[test]
    fn balanced_cluster_sizes_without_noise() {
        let ds = SyntheticConfig::blobs(90, 4, 3).generate();
        let labels = ds.labels.unwrap();
        for c in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 30);
        }
    }

    #[test]
    fn noise_points_still_labelled() {
        let ds = SyntheticConfig::blobs(100, 4, 2)
            .noise_fraction(0.5)
            .generate();
        assert_eq!(ds.labels.as_ref().unwrap().len(), 100);
        assert!(ds.labels.unwrap().iter().all(|&l| l < 2));
    }

    #[test]
    fn grid_centroids_are_binary() {
        let ds = SyntheticConfig::grid(64, 8, 3).seed(5).generate();
        assert_eq!(ds.num_classes(), Some(8));
        let labels = ds.labels.as_ref().unwrap();
        // Along grid dim j, a point's side of 0.5 encodes bit j of its
        // cluster id (spread 0.04 keeps samples well inside each half).
        for (p, &c) in ds.points.iter().zip(labels) {
            for (j, &v) in p.iter().enumerate().take(3) {
                let expect_high = (c >> j) & 1 == 1;
                assert_eq!(v > 0.5, expect_high, "cluster {c} dim {j}: {v}");
            }
        }
    }

    #[test]
    fn grid_nonleading_dims_low_span() {
        let ds = SyntheticConfig::grid(500, 8, 2).generate();
        for j in 2..8 {
            let lo = ds.points.iter().map(|p| p[j]).fold(f64::INFINITY, f64::min);
            let hi = ds.points.iter().map(|p| p[j]).fold(0.0f64, f64::max);
            assert!(hi - lo < 0.45, "dim {j} span {} too wide", hi - lo);
        }
    }

    #[test]
    #[should_panic(expected = "d >= bits")]
    fn grid_with_too_few_dims_panics() {
        SyntheticConfig::grid(10, 2, 3);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        SyntheticConfig::blobs(10, 4, 0);
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn bad_noise_fraction_panics() {
        SyntheticConfig::blobs(10, 4, 1).noise_fraction(1.5);
    }
}
