//! Type-erased, stack-allocated jobs and the latches that complete them.
//!
//! A parallel operation (a `join` branch, a pool root task) lives on the
//! *caller's* stack: [`StackJob`] wraps the closure, its result slot and
//! a completion [`Latch`]. The pool only ever sees a [`JobRef`] — a
//! lifetime-erased pointer plus an execute function. Soundness rests on
//! one invariant, upheld by every entry point in this crate: **the frame
//! that created a `StackJob` never returns before the job's latch is
//! set**, so the erased pointer can never dangle while the pool holds it.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

/// A lifetime-erased pointer to a job living on some caller's stack.
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// Safety: a `JobRef` is only ever created from a `StackJob` whose owner
// blocks until the latch is set, and the job's closure is `Send`.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Execute the job. Consumes the reference: a job runs exactly once.
    pub(crate) fn execute(self) {
        unsafe { (self.exec)(self.data) }
    }
}

/// One-shot completion flag with both a cheap polling path (for workers
/// that keep stealing while they wait) and a blocking path (for external
/// threads parked on a condvar).
pub(crate) struct Latch {
    done: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Self {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Has the job completed? Acquire pairs with the Release in
    /// [`Latch::set`], so a `true` answer also publishes the result slot.
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Mark complete and wake any blocked waiter. Taking the mutex after
    /// the store closes the check-then-wait race in [`Latch::wait`].
    pub(crate) fn set(&self) {
        self.done.store(true, Ordering::Release);
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// Block until set. Only external (non-worker) threads call this;
    /// workers use [`Latch::probe`] inside a steal loop instead.
    pub(crate) fn wait(&self) {
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while !self.probe() {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A closure pinned to its caller's stack, executable through a
/// [`JobRef`] from any worker thread.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    pub(crate) latch: Latch,
}

// Safety: the executor is the only thread touching the cells until the
// latch is set (Release); the owner reads them only after probing the
// latch (Acquire).
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        Self {
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// Erase the lifetime.
    ///
    /// # Safety
    /// The caller must not let `self` drop until `self.latch` is set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        unsafe fn exec_erased<F, R>(data: *const ())
        where
            F: FnOnce() -> R + Send,
            R: Send,
        {
            let job = &*(data as *const StackJob<F, R>);
            let f = (*job.func.get()).take().expect("job executed twice");
            // Catch panics so a poisoned task can't unwind through the
            // worker loop; the payload is rethrown on the owning thread.
            let r = panic::catch_unwind(AssertUnwindSafe(f));
            *job.result.get() = Some(r);
            job.latch.set();
        }
        JobRef {
            data: self as *const Self as *const (),
            exec: exec_erased::<F, R>,
        }
    }

    /// Take the result after the latch has been set.
    pub(crate) fn into_panic_result(self) -> thread::Result<R> {
        debug_assert!(self.latch.probe(), "result taken before completion");
        self.result
            .into_inner()
            .expect("completed job has no result")
    }
}

/// Rethrow a captured panic payload on the current thread.
pub(crate) fn resume<R>(r: thread::Result<R>) -> R {
    match r {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    }
}
