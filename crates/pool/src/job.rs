//! Type-erased, stack-allocated jobs and the latches that complete them.
//!
//! A parallel operation (a `join` branch, a pool root task) lives on the
//! *caller's* stack: [`StackJob`] wraps the closure, its result slot and
//! a completion latch. The pool only ever sees a [`JobRef`] — a
//! lifetime-erased pointer plus an execute function. Soundness rests on
//! one invariant, upheld by every entry point in this crate: **the frame
//! that created a `StackJob` never returns before the job's latch is
//! set**, so the erased pointer can never dangle while the pool holds it.
//!
//! Two latch flavors exist because the waiter's side dictates what the
//! *setter* may safely touch. The moment a waiter observes completion it
//! may pop the stack frame that owns the latch, so everything the setter
//! does after the observable "done" transition is a potential
//! use-after-free. Hence:
//!
//! * [`SpinLatch`] — for [`join`](crate::join) branches, whose owner
//!   busy-polls [`probe`](SpinLatch::probe) while stealing other work.
//!   `set` is a single atomic store: the setter's **last** access to job
//!   memory *is* the observable transition, so no tail race exists.
//! * [`LockLatch`] — for root tasks injected by external threads, which
//!   must block. The flag lives *inside* the mutex (no lock-free fast
//!   path), and `set` takes the lock **before** flipping it. A waiter
//!   can therefore only observe completion after acquiring the lock,
//!   which the setter held through its final latch access — the unlock
//!   hands the memory over cleanly. Setting `done` outside the lock (or
//!   exposing a lock-free probe on this flavor) would reopen the race:
//!   waiter locks between the setter's store and its `lock()`, sees
//!   done, frees the frame, and the setter locks freed memory —
//!   observed in practice as a worker futex-parked forever and
//!   `Pool::drop` hanging in `join()`.

use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

/// A lifetime-erased pointer to a job living on some caller's stack.
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// Safety: a `JobRef` is only ever created from a `StackJob` whose owner
// blocks until the latch is set, and the job's closure is `Send`.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Execute the job. Consumes the reference: a job runs exactly once.
    pub(crate) fn execute(self) {
        unsafe { (self.exec)(self.data) }
    }
}

/// Completion signal set exactly once by whichever worker runs the job.
pub(crate) trait Latch {
    /// Mark complete. After the completion becomes observable the job's
    /// stack frame may be freed at any instant, so implementations must
    /// not touch `self` past that point.
    fn set(&self);
}

/// Probe-only latch for fork-join branches: the owner spins (stealing
/// other work between probes), so no blocking machinery is needed and
/// `set` can be a bare store — the setter's final access to job memory.
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        Self {
            done: AtomicBool::new(false),
        }
    }

    /// Has the job completed? Acquire pairs with the Release in
    /// [`Latch::set`], so a `true` answer also publishes the result slot.
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Blocking latch for injected root tasks. The flag is only readable
/// under the mutex — see the module docs for why that, plus locking
/// before the store in `set`, is what makes freeing the frame safe.
pub(crate) struct LockLatch {
    state: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Block until set. Only external (non-worker) threads call this;
    /// workers use [`SpinLatch::probe`] inside a steal loop instead.
    pub(crate) fn wait(&self) {
        let mut done = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cv.notify_all();
    }
}

/// A closure pinned to its caller's stack, executable through a
/// [`JobRef`] from any worker thread.
pub(crate) struct StackJob<F, R, L> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    pub(crate) latch: L,
}

// Safety: the executor is the only thread touching the cells until the
// latch is set; the owner reads them only after observing completion,
// which both latch flavors order after the result write.
unsafe impl<F: Send, R: Send, L: Sync> Sync for StackJob<F, R, L> {}

impl<F, R, L> StackJob<F, R, L>
where
    F: FnOnce() -> R + Send,
    R: Send,
    L: Latch + Sync,
{
    pub(crate) fn new(f: F, latch: L) -> Self {
        Self {
            func: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch,
        }
    }

    /// Erase the lifetime.
    ///
    /// # Safety
    /// The caller must not let `self` drop until `self.latch` is set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        unsafe fn exec_erased<F, R, L>(data: *const ())
        where
            F: FnOnce() -> R + Send,
            R: Send,
            L: Latch + Sync,
        {
            let job = &*(data as *const StackJob<F, R, L>);
            let f = (*job.func.get()).take().expect("job executed twice");
            // Catch panics so a poisoned task can't unwind through the
            // worker loop; the payload is rethrown on the owning thread.
            let r = panic::catch_unwind(AssertUnwindSafe(f));
            *job.result.get() = Some(r);
            // Last touch of job memory: the frame may be freed the
            // moment this transition is observed.
            job.latch.set();
        }
        JobRef {
            data: self as *const Self as *const (),
            exec: exec_erased::<F, R, L>,
        }
    }

    /// Take the result after the latch has been set.
    pub(crate) fn into_panic_result(self) -> thread::Result<R> {
        self.result
            .into_inner()
            .expect("completed job has no result")
    }
}

/// Rethrow a captured panic payload on the current thread.
pub(crate) fn resume<R>(r: thread::Result<R>) -> R {
    match r {
        Ok(v) => v,
        Err(payload) => panic::resume_unwind(payload),
    }
}
