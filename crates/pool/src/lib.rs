//! A dependency-free work-stealing thread pool.
//!
//! This crate is what makes the workspace's `par_iter` calls actually
//! parallel: the vendored `rayon` facade (`vendor/rayon`) builds its
//! parallel iterators on [`join`] and [`in_pool`], so every existing
//! call site in `dasc-core`, `dasc-kernel`, `dasc-linalg`, and
//! `dasc-bench` fans out across cores without changing a line.
//!
//! Architecture (classic Cilk/rayon shape, implemented on `std` only):
//!
//! * one worker thread per slot, each owning a deque used **LIFO** by
//!   its owner (the task you just forked is the one you resume — it is
//!   hot in cache) and **FIFO** by thieves (a steal takes the oldest,
//!   i.e. largest, pending subtree, which amortizes the migration);
//! * [`join`] forks the right branch onto the local deque, runs the left
//!   branch inline, then *pops back* the right branch — or, if it was
//!   stolen, keeps executing other tasks instead of blocking, so workers
//!   never idle while work exists;
//! * external threads inject a root task and park on a latch; all
//!   recursive splitting then happens on worker stacks;
//! * the pool never reorders *results*: callers that write by index (the
//!   facade's map/collect) are bit-identical to a sequential run
//!   regardless of thread count or steal schedule.
//!
//! Sizing: the global pool reads `DASC_NUM_THREADS` (≥ 1), defaulting to
//! [`std::thread::available_parallelism`]. `DASC_NUM_THREADS=1` (or a
//! [`Pool::new(1)`](Pool::new) install) short-circuits every primitive
//! to plain inline execution — zero threads, zero overhead, the exact
//! sequential semantics the old shim had.
//!
//! Observability: the global registry carries `pool_threads` (gauge),
//! `pool_tasks_executed_total` and `pool_tasks_stolen_total` (counters).

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

mod job;
mod worker;

use job::{resume, LockLatch, SpinLatch, StackJob};
use worker::Shared;

/// Where the current thread stands relative to a pool.
#[derive(Clone)]
enum Context {
    /// A worker thread of some pool.
    Worker { shared: Arc<Shared>, index: usize },
    /// Inside a forced-sequential region (`Pool::new(1).install(..)`).
    Sequential,
}

thread_local! {
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

fn current_context() -> Option<Context> {
    CONTEXT.with(|c| c.borrow().clone())
}

pub(crate) fn set_worker_context(shared: Arc<Shared>, index: usize) {
    CONTEXT.with(|c| *c.borrow_mut() = Some(Context::Worker { shared, index }));
}

/// RAII guard installing a context for the current thread.
struct ContextGuard {
    previous: Option<Context>,
}

impl ContextGuard {
    fn install(ctx: Context) -> Self {
        let previous = CONTEXT.with(|c| c.borrow_mut().replace(ctx));
        Self { previous }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CONTEXT.with(|c| *c.borrow_mut() = previous);
    }
}

/// A work-stealing thread pool.
///
/// Most code never constructs one: the [`global`] pool (sized from
/// `DASC_NUM_THREADS`) backs [`join`] and [`in_pool`]. Explicit pools
/// exist for benchmarks and tests that pin a thread count, e.g.
/// `Pool::new(4).install(|| dasc.run(&points))`.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool with `threads` workers (`0` is treated as `1`).
    /// A 1-thread pool spawns nothing and runs everything inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::new(threads));
        let handles = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|index| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("dasc-pool-{index}"))
                        .spawn(move || worker::worker_loop(shared, index))
                        .expect("failed to spawn pool worker")
                })
                .collect()
        };
        Self { shared, handles }
    }

    /// Number of worker slots.
    pub fn num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Run `f` inside this pool and return its result.
    ///
    /// Nested [`join`]s and facade operations executed under `f` use
    /// *this* pool. A 1-thread pool runs `f` inline under a sequential
    /// context (so even nested calls stay sequential); otherwise `f` is
    /// injected as a root task and the calling thread blocks until it
    /// completes. Panics inside `f` propagate to the caller.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if self.shared.threads == 1 {
            let _guard = ContextGuard::install(Context::Sequential);
            return f();
        }
        // A worker installing into its own pool would deadlock waiting on
        // itself; it is already "inside", so just run inline.
        if let Some(Context::Worker { shared, .. }) = current_context() {
            if Arc::ptr_eq(&shared, &self.shared) {
                return f();
            }
        }
        run_root(&self.shared, f)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.terminate.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.handles.drain(..) {
            let _unused = handle.join();
        }
    }
}

/// Inject `f` as a root task and block until it completes.
fn run_root<R, F>(shared: &Arc<Shared>, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    // A blocking `LockLatch`: this thread parks rather than stealing.
    let job = StackJob::new(f, LockLatch::new());
    // Safety: we wait on the latch before `job` leaves this frame.
    unsafe { shared.inject(job.as_job_ref()) };
    job.latch.wait();
    resume(job.into_panic_result())
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Threads for the global pool: `DASC_NUM_THREADS` if set to a positive
/// integer, else the machine's available parallelism.
pub fn configured_threads() -> usize {
    std::env::var("DASC_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The process-wide pool, created lazily on first use.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let pool = Pool::new(configured_threads());
        dasc_obs::global()
            .gauge("pool_threads")
            .set(pool.num_threads() as i64);
        pool
    })
}

/// Thread count of the pool governing the current thread: the enclosing
/// worker's pool, `1` inside a sequential install, else the global pool.
pub fn current_num_threads() -> usize {
    match current_context() {
        Some(Context::Worker { shared, .. }) => shared.threads,
        Some(Context::Sequential) => 1,
        None => global().num_threads(),
    }
}

/// Enter the pool governing the current thread and run `f` there.
///
/// This is the facade's single entry point: parallel-iterator drivers
/// wrap their recursive split in `in_pool` once, and every nested
/// [`join`] then runs on worker stacks. Inline (no thread hop) when the
/// current thread is already a worker, sequentialized under a 1-thread
/// context, and a blocking root injection otherwise.
pub fn in_pool<R, F>(f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    match current_context() {
        Some(_) => f(),
        None => {
            let pool = global();
            if pool.num_threads() == 1 {
                f()
            } else {
                pool.install(f)
            }
        }
    }
}

/// Potentially-parallel fork-join: run `a` and `b`, returning both
/// results. `b` may run on another worker; `a` always runs on the
/// calling thread. While `a`'s sibling is stolen, the caller executes
/// *other* pending tasks instead of blocking, which is what makes deep
/// recursive splits scale.
///
/// Sequential contexts (1-thread pool, `DASC_NUM_THREADS=1`) degrade to
/// exactly `(a(), b())`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_context() {
        Some(Context::Sequential) => (a(), b()),
        Some(Context::Worker { shared, index }) => worker_join(&shared, index, a, b),
        None => {
            let pool = global();
            if pool.num_threads() == 1 {
                let _guard = ContextGuard::install(Context::Sequential);
                (a(), b())
            } else {
                pool.install(move || join(a, b))
            }
        }
    }
}

/// The fork-join protocol on a worker thread.
fn worker_join<A, B, RA, RB>(shared: &Arc<Shared>, index: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // A probe-only `SpinLatch`: this worker keeps stealing while it
    // waits, so completion is a bare store with no blocking machinery.
    let job_b = StackJob::new(b, SpinLatch::new());
    // Safety: this frame waits for `job_b.latch` before returning, even
    // if `a` panics, so the erased reference cannot dangle.
    unsafe { shared.push_local(index, job_b.as_job_ref()) };

    let result_a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));

    // Local-first: the common case pops `job_b` right back (it is the
    // newest entry) and runs it inline. If a thief got there first, keep
    // executing other tasks — ours or stolen — until the latch trips.
    let mut rotation = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    while !job_b.latch.probe() {
        match shared.find_work(index, &mut rotation) {
            Some(job) => {
                shared.executed.inc();
                job.execute();
            }
            None => std::thread::yield_now(),
        }
    }

    let result_b = job_b.into_panic_result();
    match result_a {
        Ok(ra) => (ra, resume(result_b)),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Pool {
        Pool::new(n)
    }

    #[test]
    fn one_thread_pool_is_inline() {
        let p = pool(1);
        assert_eq!(p.num_threads(), 1);
        let r = p.install(|| {
            assert_eq!(current_num_threads(), 1);
            let (a, b) = join(|| 2, || 3);
            a + b
        });
        assert_eq!(r, 5);
    }

    #[test]
    fn install_reports_pool_size() {
        let p = pool(3);
        assert_eq!(p.install(current_num_threads), 3);
    }

    #[test]
    fn join_returns_both_results() {
        let p = pool(2);
        let (a, b) = p.install(|| join(|| 1 + 1, || "x".to_string() + "y"));
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn recursive_join_sums_range() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
            a + b
        }
        for threads in [1, 2, 4] {
            let p = pool(threads);
            let total = p.install(|| sum(0, 10_000));
            assert_eq!(total, 10_000 * 9_999 / 2, "threads={threads}");
        }
    }

    #[test]
    fn join_propagates_left_panic() {
        let p = pool(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| join(|| panic!("left boom"), || 7))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn join_propagates_right_panic() {
        let p = pool(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                join(|| 7, || -> usize { panic!("right boom") });
            })
        }));
        assert!(r.is_err());
        // The pool survives a panicked task.
        assert_eq!(p.install(|| join(|| 1, || 2)), (1, 2));
    }

    #[test]
    fn install_propagates_panic() {
        let p = pool(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| panic!("root boom"))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn nested_installs_use_inner_pool() {
        let outer = pool(4);
        let inner_threads = outer.install(|| {
            let inner = pool(2);
            inner.install(current_num_threads)
        });
        assert_eq!(inner_threads, 2);
    }

    #[test]
    fn sequential_install_overrides_enclosing_pool() {
        let outer = pool(4);
        let seen = outer.install(|| pool(1).install(current_num_threads));
        assert_eq!(seen, 1);
    }

    #[test]
    fn drop_terminates_workers() {
        let p = pool(4);
        let (a, b) = p.install(|| join(|| 1, || 2));
        assert_eq!((a, b), (1, 2));
        drop(p); // must not hang
    }

    #[test]
    fn rapid_install_and_teardown_churn() {
        // Regression: `Latch::set` used to store a lock-free "done" flag
        // and *then* lock the latch mutex to notify. A root waiter could
        // observe the flag, return, and free the job's stack frame while
        // the worker was still locking it — leaving that worker parked
        // on freed memory forever and `Pool::drop` hung in `join()`.
        // Near-empty root tasks on tiny pools maximize the window; this
        // must complete (the harness would time the hang out).
        for _ in 0..200 {
            let p = pool(2);
            for i in 0..20 {
                assert_eq!(p.install(move || i + 1), i + 1);
            }
            drop(p); // joins workers: hangs if any worker is stuck
        }
    }

    #[test]
    fn heavy_nested_joins_complete() {
        // Exercise stealing: an unbalanced tree forces cross-worker
        // traffic even on few cores.
        fn fib(n: u64) -> u64 {
            if n < 10 {
                return (1..=n).fold((0, 1), |(a, b), _| (b, a + b)).0;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let p = pool(8);
        let expected = pool(1).install(|| fib(20));
        assert_eq!(p.install(|| fib(20)), expected);
    }
}
