//! Worker threads, per-worker deques, and the stealing protocol.
//!
//! Each worker owns a deque used LIFO from its own end (`push_back` /
//! `pop_back`), which keeps the hot recursive `join` path cache-local:
//! the task a worker just forked is the first one it picks back up.
//! Thieves take from the opposite end (`pop_front`), so a steal grabs
//! the *oldest* — and, under recursive splitting, the *largest* —
//! pending task, exactly the granularity worth migrating to another
//! core. External callers inject root tasks through a shared FIFO.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::job::JobRef;

/// State shared between a pool handle and its worker threads.
pub(crate) struct Shared {
    /// Per-worker deques. Owner pushes/pops at the back; thieves pop at
    /// the front.
    pub(crate) queues: Vec<Mutex<VecDeque<JobRef>>>,
    /// FIFO of root tasks injected by non-worker threads.
    pub(crate) injector: Mutex<VecDeque<JobRef>>,
    /// Number of workers currently parked (approximate; wake-ups are
    /// backstopped by a timed wait, so a racy read only costs latency).
    sleepers: AtomicUsize,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    pub(crate) terminate: AtomicBool,
    pub(crate) threads: usize,
    /// `pool_tasks_executed_total` — every task run by a worker.
    pub(crate) executed: Arc<dasc_obs::Counter>,
    /// `pool_tasks_stolen_total` — tasks taken from another worker's deque.
    pub(crate) stolen: Arc<dasc_obs::Counter>,
}

impl Shared {
    pub(crate) fn new(threads: usize) -> Self {
        let registry = dasc_obs::global();
        Self {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            terminate: AtomicBool::new(false),
            threads,
            executed: registry.counter("pool_tasks_executed_total"),
            stolen: registry.counter("pool_tasks_stolen_total"),
        }
    }

    /// Push onto a worker's own deque (LIFO end) and nudge a sleeper.
    pub(crate) fn push_local(&self, index: usize, job: JobRef) {
        self.queues[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.wake_one();
    }

    /// Inject a root task from outside the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.wake_one();
    }

    /// Pop from the worker's own deque — newest first.
    pub(crate) fn pop_local(&self, index: usize) -> Option<JobRef> {
        self.queues[index]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
    }

    /// One full scan for work as seen from `index`: local deque, then the
    /// injector, then a stealing sweep over the other workers starting at
    /// a rotating offset so thieves spread out instead of convoying.
    pub(crate) fn find_work(&self, index: usize, rotation: &mut u64) -> Option<JobRef> {
        if let Some(job) = self.pop_local(index) {
            return Some(job);
        }
        if let Some(job) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(job);
        }
        if self.threads <= 1 {
            return None;
        }
        // Xorshift step: cheap per-worker pseudo-random start.
        *rotation ^= *rotation << 13;
        *rotation ^= *rotation >> 7;
        *rotation ^= *rotation << 17;
        let start = (*rotation as usize) % self.threads;
        for k in 0..self.threads {
            let victim = (start + k) % self.threads;
            if victim == index {
                continue;
            }
            let job = self.queues[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            if let Some(job) = job {
                self.stolen.inc();
                return Some(job);
            }
        }
        None
    }

    /// Wake one parked worker if any are parked. Lock-free in the common
    /// (nobody parked) case; the timed wait in [`worker_loop`] bounds the
    /// cost of the inherent race to one park period.
    fn wake_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.sleep_cv.notify_one();
        }
    }

    /// Wake everything (termination).
    pub(crate) fn wake_all(&self) {
        let _guard = self.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        self.sleep_cv.notify_all();
    }
}

/// The body of each worker thread.
pub(crate) fn worker_loop(shared: Arc<Shared>, index: usize) {
    crate::set_worker_context(Arc::clone(&shared), index);
    // Per-worker xorshift seed; any odd constant works.
    let mut rotation = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut idle_spins: u32 = 0;
    loop {
        if let Some(job) = shared.find_work(index, &mut rotation) {
            idle_spins = 0;
            shared.executed.inc();
            job.execute();
            continue;
        }
        if shared.terminate.load(Ordering::Acquire) {
            break;
        }
        // Brief cooperative spin before parking: on loaded machines the
        // next task usually arrives within a few scheduler quanta.
        if idle_spins < 16 {
            idle_spins += 1;
            std::thread::yield_now();
            continue;
        }
        let guard = shared.sleep_lock.lock().unwrap_or_else(|e| e.into_inner());
        shared.sleepers.fetch_add(1, Ordering::Relaxed);
        // Timed wait backstops the racy `wake_one` fast path: a missed
        // notification costs at most one period, never a hang.
        let _unused = shared
            .sleep_cv
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap_or_else(|e| e.into_inner());
        shared.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
}
