//! Property tests: every parallel operation the rayon facade exposes
//! must produce results identical to a plain sequential computation,
//! under 1, 2, and 8 threads. This is the contract the whole workspace
//! leans on — clustering output is bit-identical across thread counts
//! because each of these primitives is.

use proptest::prelude::*;
use rayon::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run `f` under each thread count and assert it matches `expected`.
fn assert_all_pools<T, F>(expected: &T, f: F) -> Result<(), proptest::TestCaseError>
where
    T: PartialEq + std::fmt::Debug + Send,
    F: Fn() -> T + Sync,
{
    for threads in THREAD_COUNTS {
        let got = dasc_pool::Pool::new(threads).install(&f);
        prop_assert!(&got == expected, "mismatch at {} threads", threads);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn par_iter_map_collect_matches_sequential(data in prop::collection::vec(-1.0e3f64..1.0e3, 0..300)) {
        let expected: Vec<f64> = data.iter().map(|x| x * 1.5 + 0.25).collect();
        assert_all_pools(&expected, || {
            data.par_iter().map(|x| x * 1.5 + 0.25).collect::<Vec<f64>>()
        })?;
    }

    #[test]
    fn par_chunks_mut_matches_sequential(len in 0usize..300, chunk in 1usize..17) {
        let mut expected = vec![0u64; len];
        for (i, c) in expected.chunks_mut(chunk).enumerate() {
            for (off, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + off) as u64;
            }
        }
        assert_all_pools(&expected, || {
            let mut data = vec![0u64; len];
            data.par_chunks_mut(chunk).enumerate().for_each(|(i, c)| {
                for (off, v) in c.iter_mut().enumerate() {
                    *v = (i * 1000 + off) as u64;
                }
            });
            data
        })?;
    }

    #[test]
    fn nested_join_matches_sequential(values in prop::collection::vec(0u64..1000, 1..200)) {
        // Recursive binary-splitting sum via join — the access pattern
        // the facade's splitter uses internally.
        fn tree_sum(v: &[u64]) -> u64 {
            if v.len() <= 4 {
                return v.iter().sum();
            }
            let (lo, hi) = v.split_at(v.len() / 2);
            let (a, b) = dasc_pool::join(|| tree_sum(lo), || tree_sum(hi));
            a + b
        }
        let expected: u64 = values.iter().sum();
        assert_all_pools(&expected, || tree_sum(&values))?;
    }

    #[test]
    fn par_sum_is_bit_identical(data in prop::collection::vec(-1.0f64..1.0, 0..400)) {
        // Floating-point sums depend on association order; the facade
        // reduces in index order, so equality here is exact.
        let expected: f64 = data.iter().map(|x| x.sin()).sum();
        for threads in THREAD_COUNTS {
            let got: f64 = dasc_pool::Pool::new(threads)
                .install(|| data.par_iter().map(|x| x.sin()).sum());
            prop_assert!(got == expected || (got.is_nan() && expected.is_nan()),
                "sum differs at {} threads: {} vs {}", threads, got, expected);
        }
    }

    #[test]
    fn vec_into_par_iter_matches_sequential(
        data in prop::collection::vec(prop::collection::vec(0u8..255, 0..8), 0..120)
    ) {
        let expected: Vec<usize> = data.iter().map(Vec::len).collect();
        assert_all_pools(&expected, || {
            data.clone().into_par_iter().map(|s| s.len()).collect::<Vec<usize>>()
        })?;
    }
}
