//! Dispatch from a parsed [`Command`] to dataset generation or
//! clustering, with human-readable reporting.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use dasc_core::{
    local_scaling_similarity, Dasc, DascConfig, Nystrom, NystromConfig, ParallelSpectral,
    PscConfig, SpectralClustering, SpectralConfig,
};
use dasc_data::{dataset_from_store, pack_csv_to_store, SyntheticConfig, WikiCorpusConfig};
use dasc_dist::{Coordinator, JobClient, JobData, JobSpec, WorkerOptions};
use dasc_kernel::Kernel;
use dasc_lsh::LshConfig;
use dasc_mapreduce::ClusterConfig;
use dasc_metrics::{accuracy, nmi};
use dasc_serve::{AssignmentEngine, ModelArtifact, Server, ServerConfig};
use dasc_store::{StoreReader, DEFAULT_SHARD_ROWS};

use crate::args::{Algorithm, Command, USAGE};
use crate::csv;

/// Execute a command, returning the human-readable report that the
/// binary prints.
pub fn run(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            kind,
            n,
            d,
            k,
            seed,
            output,
        } => generate(kind, *n, *d, *k, *seed, output),
        Command::Cluster {
            input,
            data,
            output,
            k,
            algorithm,
            sigma,
            bits,
            labels_last_column,
            stage_timings,
            trace_out,
            dist,
            seed,
        } => match dist.as_deref() {
            Some(target) => cluster_dist(
                input.as_deref(),
                data.as_deref(),
                output.as_deref(),
                *k,
                *algorithm,
                *sigma,
                *bits,
                *seed,
                *labels_last_column,
                trace_out.as_deref(),
                target,
            ),
            None => cluster(
                input.as_deref(),
                data.as_deref(),
                output.as_deref(),
                *k,
                *algorithm,
                *sigma,
                *bits,
                *labels_last_column,
                *stage_timings,
                trace_out.as_deref(),
            ),
        },
        Command::Train {
            input,
            model_out,
            k,
            sigma,
            bits,
            seed,
            labels_last_column,
            stage_timings,
            trace_out,
        } => train(
            input,
            model_out,
            *k,
            *sigma,
            *bits,
            *seed,
            *labels_last_column,
            *stage_timings,
            trace_out.as_deref(),
        ),
        Command::Serve {
            model,
            addr,
            port,
            workers,
        } => serve(model, addr, *port, *workers),
        Command::Assign {
            model,
            input,
            output,
            labels_last_column,
        } => assign(model, input, output.as_deref(), *labels_last_column),
        Command::Coordinator {
            addr,
            port,
            http_port,
        } => coordinator(addr, *port, *http_port),
        Command::Worker { coordinator, name } => worker_daemon(coordinator, name),
        Command::DistMetrics { coordinator } => dist_metrics(coordinator),
        Command::Pack {
            input,
            output,
            shard_rows,
            labels_last_column,
        } => pack(input, output, *shard_rows, *labels_last_column),
        Command::Inspect { data } => inspect(data),
    }
}

/// Load points and optional ground-truth labels from either a CSV
/// file or a packed `.dstr` store. A store records label presence
/// itself, so `labels_last_column` only applies to CSV input.
#[allow(clippy::type_complexity)] // points + optional labels, same shape as csv::read_points
fn load_points(
    input: Option<&str>,
    data: Option<&str>,
    labels_last_column: bool,
) -> Result<(Vec<Vec<f64>>, Option<Vec<usize>>), String> {
    match (input, data) {
        (Some(path), None) => {
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            csv::read_points(BufReader::new(file), labels_last_column)
                .map_err(|e| format!("{path}: {e}"))
        }
        (None, Some(dir)) => {
            let reader =
                StoreReader::open(Path::new(dir)).map_err(|e| format!("open store {dir}: {e}"))?;
            let ds = dataset_from_store(&reader).map_err(|e| format!("read store {dir}: {e}"))?;
            Ok((ds.points, ds.labels))
        }
        _ => Err("exactly one of --input / --data is required".to_string()),
    }
}

fn generate(
    kind: &str,
    n: usize,
    d: usize,
    k: usize,
    seed: u64,
    output: &str,
) -> Result<String, String> {
    let ds = match kind {
        "blobs" => SyntheticConfig::blobs(n, d, k).seed(seed).generate(),
        "grid" => {
            let bits = (k.max(2) as f64).log2().ceil() as usize;
            SyntheticConfig::grid(n, d.max(bits), bits)
                .seed(seed)
                .generate()
        }
        "wiki" => WikiCorpusConfig::new(n)
            .categories(k.max(1))
            .seed(seed)
            .generate(),
        other => return Err(format!("unknown dataset kind '{other}'")),
    };
    let file = File::create(output).map_err(|e| format!("create {output}: {e}"))?;
    let mut w = BufWriter::new(file);
    csv::write_points(&mut w, &ds.points, ds.labels.as_deref())
        .and_then(|()| w.flush())
        .map_err(|e| format!("write {output}: {e}"))?;
    Ok(format!(
        "wrote {} points ({} dims, {} classes, labels in last column) to {output}",
        ds.points.len(),
        ds.dims(),
        ds.num_classes().unwrap_or(0)
    ))
}

/// Run `f` with the global stage tracer enabled when either
/// observability flag asks for it. Returns `f`'s output plus report
/// text: a pointer to the written Chrome trace and/or the rendered
/// per-stage wall-time table.
fn with_tracing<T>(
    stage_timings: bool,
    trace_out: Option<&str>,
    f: impl FnOnce() -> T,
) -> Result<(T, String), String> {
    if !stage_timings && trace_out.is_none() {
        return Ok((f(), String::new()));
    }
    let tracer = dasc_obs::tracer();
    tracer.enable();
    let out = f();
    let spans = tracer.drain();
    tracer.disable();

    let mut extra = String::new();
    if let Some(path) = trace_out {
        let json = dasc_obs::chrome_trace_json(&spans);
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
        extra.push_str(&format!(
            "\ntrace of {} spans written to {path} (open in chrome://tracing or Perfetto)",
            spans.len()
        ));
    }
    if stage_timings {
        extra.push_str("\nstage timings:\n");
        extra.push_str(&dasc_obs::stage_table(&spans));
    }
    Ok((out, extra))
}

#[allow(clippy::too_many_arguments)]
fn cluster(
    input: Option<&str>,
    data: Option<&str>,
    output: Option<&str>,
    k: usize,
    algorithm: Algorithm,
    sigma: Option<f64>,
    bits: Option<usize>,
    labels_last_column: bool,
    stage_timings: bool,
    trace_out: Option<&str>,
) -> Result<String, String> {
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    let (points, labels) = load_points(input, data, labels_last_column)?;
    let n = points.len();
    let kernel = match sigma {
        Some(s) if s > 0.0 => Kernel::gaussian(s),
        Some(s) => return Err(format!("--sigma must be positive, got {s}")),
        None => Kernel::gaussian_median_heuristic(&points),
    };

    let ((assignments, detail), trace_report) = with_tracing(stage_timings, trace_out, || {
        match algorithm {
            Algorithm::Dasc => {
                let mut cfg = DascConfig::for_dataset(n, k).kernel(kernel);
                if let Some(m) = bits {
                    cfg = cfg.lsh(LshConfig::with_bits(m));
                }
                let res = Dasc::new(cfg).run(&points);
                (
                    res.clustering.assignments,
                    format!(
                        "dasc: {} buckets, approx gram {} KB (full {} KB)",
                        res.buckets.len(),
                        res.approx_gram_bytes / 1024,
                        4 * n * n / 1024
                    ),
                )
            }
            Algorithm::Sc => {
                let res =
                    SpectralClustering::new(SpectralConfig::new(k).kernel(kernel)).run(&points);
                (
                    res.clustering.assignments,
                    format!("sc: full gram {} KB", res.gram_memory_bytes / 1024),
                )
            }
            Algorithm::Psc => {
                let res = ParallelSpectral::new(PscConfig::new(k).kernel(kernel)).run(&points);
                (
                    res.clustering.assignments,
                    format!(
                        "psc: {} nnz, sparse {} KB",
                        res.nnz,
                        res.sparse_memory_bytes / 1024
                    ),
                )
            }
            Algorithm::Nyst => {
                let res = Nystrom::new(NystromConfig::new(k).kernel(kernel)).run(&points);
                (
                    res.clustering.assignments,
                    format!(
                        "nyst: {} landmarks, {} KB",
                        res.landmarks,
                        res.memory_bytes / 1024
                    ),
                )
            }
            Algorithm::Stsc => {
                // Self-tuning: per-point bandwidths (r = 7), so --sigma is
                // ignored by construction.
                let s = local_scaling_similarity(&points, 7);
                let c = SpectralClustering::new(SpectralConfig::new(k)).run_on_similarity(&s);
                (
                    c.assignments,
                    "stsc: local scaling (r = 7), full similarity matrix".to_string(),
                )
            }
        }
    })?;

    let mut report = format!("clustered {n} points into k={k}\n{detail}");
    report.push_str(&trace_report);
    if let Some(truth) = &labels {
        report.push_str(&format!(
            "\naccuracy: {:.4}\nnmi: {:.4}",
            accuracy(&assignments, truth),
            nmi(&assignments, truth)
        ));
    }

    match output {
        Some("-") | None => {
            // Assignments to stdout only when explicitly requested with
            // "-"; otherwise just the report.
            if output == Some("-") {
                let mut buf = Vec::new();
                csv::write_assignments(&mut buf, &assignments).map_err(|e| e.to_string())?;
                report.push('\n');
                report.push_str(&String::from_utf8_lossy(&buf));
            }
        }
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(file);
            csv::write_assignments(&mut w, &assignments)
                .and_then(|()| w.flush())
                .map_err(|e| format!("write {path}: {e}"))?;
            report.push_str(&format!("\nassignments written to {path}"));
        }
    }
    Ok(report)
}

/// `cluster --dist`: run the distributed DASC engine — `local` executes
/// the in-process MapReduce simulation, anything else is a coordinator
/// address to submit the job to over the wire protocol. Both paths are
/// bit-identical to each other for the same data and seed.
///
/// With `--data <dstr>` and a coordinator target the job is submitted
/// *by reference*: the spec carries only the store path and content
/// hash, the coordinator opens the store itself, and tasks ship shard
/// tables instead of points (the points are still read locally once,
/// for the sigma heuristic and accuracy reporting).
#[allow(clippy::too_many_arguments)]
fn cluster_dist(
    input: Option<&str>,
    data: Option<&str>,
    output: Option<&str>,
    k: usize,
    algorithm: Algorithm,
    sigma: Option<f64>,
    bits: Option<usize>,
    seed: Option<u64>,
    labels_last_column: bool,
    trace_out: Option<&str>,
    target: &str,
) -> Result<String, String> {
    if algorithm != Algorithm::Dasc {
        return Err("--dist only supports --algorithm dasc".to_string());
    }
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    let (points, labels) = load_points(input, data, labels_last_column)?;
    let n = points.len();
    let kernel = match sigma {
        Some(s) if s > 0.0 => Kernel::gaussian(s),
        Some(s) => return Err(format!("--sigma must be positive, got {s}")),
        None => Kernel::gaussian_median_heuristic(&points),
    };
    let mut cfg = DascConfig::for_dataset(n, k).kernel(kernel);
    if let Some(m) = bits {
        cfg = cfg.lsh(LshConfig::with_bits(m));
    }
    if let Some(s) = seed {
        cfg = cfg.seed(s);
    }

    let (assignments, detail) = if target == "local" {
        // In-process simulation: the stage spans land on the global
        // tracer, so the single-process trace machinery applies.
        let (res, trace_report) = with_tracing(false, trace_out, || {
            Dasc::new(cfg).run_distributed(&points, &ClusterConfig::emr_default())
        })?;
        (
            res.clustering.assignments,
            format!(
                "dist(local): {} buckets, {} map + {} reduce tasks, {} records shuffled{trace_report}",
                res.num_buckets,
                res.stage1.map_task_durations.len(),
                res.stage2.reduce_task_durations.len(),
                res.stage1.shuffled_records,
            ),
        )
    } else {
        let cluster = ClusterConfig::emr_default();
        let job_data = match data {
            // By reference: resolve to an absolute path so the
            // coordinator finds the store regardless of its own cwd,
            // and pin the manifest hash so a swapped store is refused.
            Some(dir) => {
                let reader = StoreReader::open(Path::new(dir))
                    .map_err(|e| format!("open store {dir}: {e}"))?;
                let path = std::fs::canonicalize(dir)
                    .map(|p| p.to_string_lossy().into_owned())
                    .unwrap_or_else(|_| dir.to_string());
                JobData::Ref {
                    path,
                    content_hash: reader.manifest().content_hash,
                }
            }
            None => JobData::Inline { points },
        };
        let by_ref = matches!(job_data, JobData::Ref { .. });
        let spec = JobSpec {
            data: job_data,
            k: cfg.k,
            kernel: cfg.kernel,
            num_bits: bits.unwrap_or(0),
            seed: cfg.seed,
            consolidate: cfg.consolidate,
            collect_trace: trace_out.is_some(),
        };
        let mut client = JobClient::connect(target, &cluster);
        let outcome = client
            .run(spec, |_, _, _| {})
            .map_err(|e| format!("distributed job on {target}: {e}"))?;
        // The coordinator assembled one merged timeline (its own lane
        // plus one per worker); fetch and persist it.
        let mut trace_report = String::new();
        if let Some(path) = trace_out {
            let job_id = client.last_job_id().expect("job just ran");
            let json = client
                .trace_json(job_id)
                .map_err(|e| format!("fetch trace for job {job_id}: {e}"))?;
            std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
            trace_report = format!(
                "\nmerged cluster trace written to {path} (open in chrome://tracing or Perfetto)"
            );
        }
        let mode = if by_ref { ", shard-addressed" } else { "" };
        (
            outcome.assignments,
            format!(
                "dist({target}{mode}): {} buckets, {} workers, \
                 stage1 {:.1} ms, stage2 {:.1} ms, \
                 {} records / {} bytes shuffled, {} task retries{trace_report}",
                outcome.num_buckets,
                outcome.workers_used,
                outcome.stage1_us as f64 / 1e3,
                outcome.stage2_us as f64 / 1e3,
                outcome.shuffle_records,
                outcome.shuffle_bytes,
                outcome.task_retries,
            ),
        )
    };

    let mut report = format!("clustered {n} points into k={k}\n{detail}");
    if let Some(truth) = &labels {
        report.push_str(&format!(
            "\naccuracy: {:.4}\nnmi: {:.4}",
            accuracy(&assignments, truth),
            nmi(&assignments, truth)
        ));
    }
    match output {
        Some("-") | None => {
            if output == Some("-") {
                let mut buf = Vec::new();
                csv::write_assignments(&mut buf, &assignments).map_err(|e| e.to_string())?;
                report.push('\n');
                report.push_str(&String::from_utf8_lossy(&buf));
            }
        }
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(file);
            csv::write_assignments(&mut w, &assignments)
                .and_then(|()| w.flush())
                .map_err(|e| format!("write {path}: {e}"))?;
            report.push_str(&format!("\nassignments written to {path}"));
        }
    }
    Ok(report)
}

/// Run a coordinator daemon until the process is killed. The HTTP
/// observability sidecar (`/metrics`, `/workers`) binds `http_port`,
/// defaulting to the RPC port + 1 (the RPC port is resolved first, so
/// `--port 0` still yields a deterministic pairing).
fn coordinator(addr: &str, port: u16, http_port: Option<u16>) -> Result<String, String> {
    let mut handle = Coordinator::start(&format!("{addr}:{port}"), ClusterConfig::emr_default())
        .map_err(|e| format!("bind {addr}:{port}: {e}"))?;
    let http_port = http_port.unwrap_or_else(|| handle.addr().port().wrapping_add(1));
    let http_addr = handle
        .serve_http(&format!("{addr}:{http_port}"))
        .map_err(|e| format!("bind http {addr}:{http_port}: {e}"))?;
    // Flush the ready lines before blocking so callers (the smoke
    // script included) can wait for them.
    println!("coordinator listening on {}", handle.addr());
    println!("metrics over http on http://{http_addr}/metrics");
    std::io::stdout().flush().ok();
    handle.wait();
    Ok("coordinator stopped".to_string())
}

/// Run a worker daemon attached to a coordinator until the process is
/// killed or the coordinator becomes unreachable.
fn worker_daemon(coordinator: &str, name: &str) -> Result<String, String> {
    println!("worker '{name}' connecting to {coordinator}");
    std::io::stdout().flush().ok();
    let options = WorkerOptions::named(name);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    dasc_dist::run_worker(coordinator, &options, &stop)
        .map_err(|e| format!("worker '{name}': {e}"))?;
    Ok(format!("worker '{name}' stopped"))
}

/// Scrape the coordinator's metrics endpoint and return the Prometheus
/// text exposition.
fn dist_metrics(coordinator: &str) -> Result<String, String> {
    let mut client = JobClient::connect(coordinator, &ClusterConfig::emr_default());
    client.metrics()
}

/// Stream a CSV into a sharded `.dstr` store, one shard in memory at a
/// time.
fn pack(
    input: &str,
    output: &str,
    shard_rows: Option<usize>,
    labels_last_column: bool,
) -> Result<String, String> {
    let file = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let rows = shard_rows.unwrap_or(DEFAULT_SHARD_ROWS);
    let manifest = pack_csv_to_store(
        BufReader::new(file),
        labels_last_column,
        Path::new(output),
        rows,
    )
    .map_err(|e| format!("pack {input}: {e}"))?;
    let bytes: u64 = manifest.shards.iter().map(|s| s.byte_len).sum();
    Ok(format!(
        "packed {} rows x {} dims into {} shards ({} rows/shard, {bytes} bytes) at {output}\n\
         content hash {:#018x}, labels: {}",
        manifest.n,
        manifest.dim,
        manifest.shards.len(),
        manifest.shard_rows,
        manifest.content_hash,
        if manifest.has_labels { "yes" } else { "no" },
    ))
}

/// Print a store's manifest and verify every shard checksum.
fn inspect(data: &str) -> Result<String, String> {
    let reader =
        StoreReader::open(Path::new(data)).map_err(|e| format!("open store {data}: {e}"))?;
    reader
        .verify_all()
        .map_err(|e| format!("verify {data}: {e}"))?;
    let m = reader.manifest();
    let bytes: u64 = m.shards.iter().map(|s| s.byte_len).sum();
    let mut report = format!(
        "store {data}\n\
         content hash  {:#018x}\n\
         rows          {} x {} dims, labels: {}\n\
         shards        {} ({} rows/shard, {bytes} bytes total)\n\
         checksums     all {} shards verified",
        m.content_hash,
        m.n,
        m.dim,
        if m.has_labels { "yes" } else { "no" },
        m.shards.len(),
        m.shard_rows,
        m.shards.len(),
    );
    for (i, s) in m.shards.iter().enumerate() {
        report.push_str(&format!(
            "\n  shard {i:>5}: {} rows, {} bytes, fnv1a {:#018x}",
            s.rows, s.byte_len, s.checksum
        ));
    }
    Ok(report)
}

/// Train a DASC model and persist the serving artifact.
#[allow(clippy::too_many_arguments)]
fn train(
    input: &str,
    model_out: &str,
    k: usize,
    sigma: Option<f64>,
    bits: Option<usize>,
    seed: Option<u64>,
    labels_last_column: bool,
    stage_timings: bool,
    trace_out: Option<&str>,
) -> Result<String, String> {
    if k == 0 {
        return Err("--k must be at least 1".to_string());
    }
    let file = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let (points, labels) = csv::read_points(BufReader::new(file), labels_last_column)
        .map_err(|e| format!("{input}: {e}"))?;
    let n = points.len();
    let kernel = match sigma {
        Some(s) if s > 0.0 => Kernel::gaussian(s),
        Some(s) => return Err(format!("--sigma must be positive, got {s}")),
        None => Kernel::gaussian_median_heuristic(&points),
    };
    let mut cfg = DascConfig::for_dataset(n, k).kernel(kernel);
    if let Some(m) = bits {
        cfg = cfg.lsh(LshConfig::with_bits(m));
    }
    if let Some(s) = seed {
        cfg = cfg.seed(s);
    }

    let (trained, trace_report) =
        with_tracing(stage_timings, trace_out, || Dasc::new(cfg).train(&points))?;
    let artifact = ModelArtifact::from_trained(&trained, &points);
    artifact
        .save(model_out)
        .map_err(|e| format!("save {model_out}: {e}"))?;
    let bytes = std::fs::metadata(model_out).map(|m| m.len()).unwrap_or(0);

    let mut report = format!(
        "trained on {n} points ({} dims) into k={k}\n\
         model: {} signatures, {} buckets, {} bit hashes\n\
         artifact written to {model_out} ({bytes} bytes)",
        artifact.dimension,
        artifact.signature_table.len(),
        artifact.buckets.len(),
        artifact.planes.len(),
    );
    report.push_str(&trace_report);
    if let Some(truth) = &labels {
        let assignments = &trained.result.clustering.assignments;
        report.push_str(&format!(
            "\ntraining accuracy: {:.4}\ntraining nmi: {:.4}",
            accuracy(assignments, truth),
            nmi(assignments, truth)
        ));
    }
    Ok(report)
}

/// Serve a persisted model over HTTP until the process is killed.
fn serve(model: &str, addr: &str, port: u16, workers: Option<usize>) -> Result<String, String> {
    let artifact = ModelArtifact::load(model).map_err(|e| format!("load {model}: {e}"))?;
    let engine = AssignmentEngine::new(&artifact);
    let mut config = ServerConfig {
        addr: format!("{addr}:{port}"),
        ..ServerConfig::default()
    };
    if let Some(w) = workers {
        config.workers = w.max(1);
    }
    let workers = config.workers;
    let handle = Server::new(engine, config)
        .start()
        .map_err(|e| format!("bind {addr}:{port}: {e}"))?;
    // Print (and flush) the ready line before blocking so callers — the
    // smoke script included — can wait for it.
    println!(
        "serving {model} on http://{} ({} dims, k={}, {workers} workers)",
        handle.addr(),
        artifact.dimension,
        artifact.num_clusters,
    );
    std::io::stdout().flush().ok();
    handle.wait();
    Ok("server stopped".to_string())
}

/// Batch-assign a CSV of points against a persisted model.
fn assign(
    model: &str,
    input: &str,
    output: Option<&str>,
    labels_last_column: bool,
) -> Result<String, String> {
    let artifact = ModelArtifact::load(model).map_err(|e| format!("load {model}: {e}"))?;
    let engine = AssignmentEngine::new(&artifact);
    let file = File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let (points, labels) = csv::read_points(BufReader::new(file), labels_last_column)
        .map_err(|e| format!("{input}: {e}"))?;
    if let Some(p) = points.iter().find(|p| p.len() != engine.dimension()) {
        return Err(format!(
            "{input}: points have {} dimensions but the model expects {}",
            p.len(),
            engine.dimension()
        ));
    }

    let assignments = engine.assign_batch(&points);
    let counts = engine.routing_counts();
    let mut report = format!(
        "assigned {} points with model {model}\n\
         routing: {} exact, {} one-bit neighbor, {} global fallback",
        assignments.len(),
        counts.exact,
        counts.one_bit_neighbor,
        counts.global_fallback,
    );
    if let Some(truth) = &labels {
        let clusters: Vec<usize> = assignments.iter().map(|a| a.cluster).collect();
        report.push_str(&format!(
            "\naccuracy: {:.4}\nnmi: {:.4}",
            accuracy(&clusters, truth),
            nmi(&clusters, truth)
        ));
    }

    let render = |w: &mut dyn Write| -> std::io::Result<()> {
        writeln!(w, "# index,cluster,route")?;
        for (i, a) in assignments.iter().enumerate() {
            writeln!(w, "{i},{},{}", a.cluster, a.route.as_str())?;
        }
        Ok(())
    };
    match output {
        Some("-") => {
            let mut buf = Vec::new();
            render(&mut buf).map_err(|e| e.to_string())?;
            report.push('\n');
            report.push_str(&String::from_utf8_lossy(&buf));
        }
        None => {}
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(file);
            render(&mut w)
                .and_then(|()| w.flush())
                .map_err(|e| format!("write {path}: {e}"))?;
            report.push_str(&format!("\nassignments written to {path}"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("dasc-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn sv(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generate_then_cluster_roundtrip() {
        let data = tmp("pts.csv");
        let out = tmp("assign.csv");
        let r = run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "120", "--d", "8", "--k", "3", "--output", &data,
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("120 points"));

        let r = run(&args::parse(&sv(&[
            "cluster",
            "--input",
            &data,
            "--k",
            "3",
            "--labels-last-column",
            "--output",
            &out,
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("accuracy"), "report: {r}");
        // High accuracy on easy blobs.
        let acc: f64 = r
            .lines()
            .find(|l| l.starts_with("accuracy:"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("accuracy line");
        assert!(acc > 0.9, "accuracy {acc}");

        let written = std::fs::read_to_string(&out).unwrap();
        assert!(written.starts_with("# index,cluster"));
        assert_eq!(written.lines().count(), 121);

        let _ = std::fs::remove_file(&data);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn all_algorithms_run() {
        let data = tmp("pts2.csv");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "80", "--d", "4", "--k", "2", "--output", &data,
        ]))
        .unwrap())
        .unwrap();
        for alg in ["dasc", "sc", "psc", "nyst", "stsc"] {
            let r = run(&args::parse(&sv(&[
                "cluster",
                "--input",
                &data,
                "--k",
                "2",
                "--algorithm",
                alg,
                "--labels-last-column",
            ]))
            .unwrap())
            .unwrap();
            assert!(r.contains("clustered 80 points"), "{alg}: {r}");
        }
        let _ = std::fs::remove_file(&data);
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let e = run(&Command::Generate {
            kind: "mystery".into(),
            n: 1,
            d: 1,
            k: 1,
            seed: 0,
            output: tmp("x.csv"),
        })
        .unwrap_err();
        assert!(e.contains("unknown dataset kind"));
    }

    #[test]
    fn missing_input_is_an_error() {
        let e = run(&args::parse(&sv(&[
            "cluster",
            "--input",
            "/nonexistent/nope.csv",
            "--k",
            "2",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(e.contains("open"));
    }

    #[test]
    fn bad_sigma_rejected() {
        let data = tmp("pts3.csv");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "10", "--d", "2", "--k", "2", "--output", &data,
        ]))
        .unwrap())
        .unwrap();
        let e = run(&args::parse(&sv(&[
            "cluster", "--input", &data, "--k", "2", "--sigma", "-1",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(e.contains("sigma"));
        let _ = std::fs::remove_file(&data);
    }

    #[test]
    fn help_returns_usage() {
        assert!(run(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn train_then_assign_roundtrip() {
        let data = tmp("train-pts.csv");
        let model = tmp("model.dasc");
        let out = tmp("assign-out.csv");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "120", "--d", "8", "--k", "3", "--output", &data,
        ]))
        .unwrap())
        .unwrap();

        let r = run(&args::parse(&sv(&[
            "train",
            "--input",
            &data,
            "--k",
            "3",
            "--model-out",
            &model,
            "--labels-last-column",
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("artifact written to"), "{r}");
        assert!(r.contains("training accuracy"), "{r}");

        // Assigning the training set back through the frozen model hits
        // the exact tier for every point and matches the labels well.
        let r = run(&args::parse(&sv(&[
            "assign",
            "--model",
            &model,
            "--input",
            &data,
            "--output",
            &out,
            "--labels-last-column",
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("assigned 120 points"), "{r}");
        assert!(r.contains("routing:"), "{r}");
        let acc: f64 = r
            .lines()
            .find(|l| l.starts_with("accuracy:"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("accuracy line");
        assert!(acc > 0.9, "accuracy {acc}\n{r}");

        let written = std::fs::read_to_string(&out).unwrap();
        assert!(written.starts_with("# index,cluster,route"));
        assert_eq!(written.lines().count(), 121);

        for f in [&data, &model, &out] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn assign_rejects_dimension_mismatch() {
        let data = tmp("dim-pts.csv");
        let wrong = tmp("dim-wrong.csv");
        let model = tmp("dim-model.dasc");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "60", "--d", "4", "--k", "2", "--output", &data,
        ]))
        .unwrap())
        .unwrap();
        run(&args::parse(&sv(&[
            "train",
            "--input",
            &data,
            "--k",
            "2",
            "--model-out",
            &model,
            "--labels-last-column",
        ]))
        .unwrap())
        .unwrap();
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "10", "--d", "7", "--k", "2", "--output", &wrong,
        ]))
        .unwrap())
        .unwrap();
        let e = run(&args::parse(&sv(&[
            "assign",
            "--model",
            &model,
            "--input",
            &wrong,
            "--labels-last-column",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(e.contains("dimensions"), "{e}");
        for f in [&data, &wrong, &model] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn train_with_tracing_writes_chrome_json_and_stage_table() {
        let data = tmp("obs-pts.csv");
        let model = tmp("obs-model.dasc");
        let trace = tmp("obs-trace.json");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "90", "--d", "6", "--k", "3", "--output", &data,
        ]))
        .unwrap())
        .unwrap();

        let r = run(&args::parse(&sv(&[
            "train",
            "--input",
            &data,
            "--k",
            "3",
            "--model-out",
            &model,
            "--stage-timings",
            "--trace-out",
            &trace,
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("stage timings:"), "{r}");
        assert!(r.contains("dasc.lsh"), "{r}");
        assert!(r.contains(&format!("written to {trace}")), "{r}");

        let json = std::fs::read_to_string(&trace).unwrap();
        let parsed = dasc_serve::JsonValue::parse(&json).expect("trace parses");
        let events = parsed.as_array().expect("array of events");
        assert!(events.len() >= 5, "only {} events", events.len());
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("dasc.cluster")));

        for f in [&data, &model, &trace] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn cluster_dist_local_and_remote_agree() {
        let data = tmp("dist-pts.csv");
        let local_out = tmp("dist-local.csv");
        let remote_out = tmp("dist-remote.csv");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "150", "--d", "6", "--k", "3", "--output", &data,
        ]))
        .unwrap())
        .unwrap();

        let r = run(&args::parse(&sv(&[
            "cluster",
            "--input",
            &data,
            "--k",
            "3",
            "--seed",
            "7",
            "--labels-last-column",
            "--dist",
            "local",
            "--output",
            &local_out,
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("dist(local)"), "{r}");

        // Same job against a real coordinator + worker over TCP.
        let coord =
            Coordinator::start("127.0.0.1:0", ClusterConfig::emr_default()).expect("coordinator");
        let addr = coord.addr().to_string();
        let w = dasc_dist::worker::spawn(&addr, WorkerOptions::named("cli-test"));
        let r = run(&args::parse(&sv(&[
            "cluster",
            "--input",
            &data,
            "--k",
            "3",
            "--seed",
            "7",
            "--labels-last-column",
            "--dist",
            &addr,
            "--output",
            &remote_out,
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains(&format!("dist({addr})")), "{r}");

        let local = std::fs::read_to_string(&local_out).unwrap();
        let remote = std::fs::read_to_string(&remote_out).unwrap();
        assert_eq!(local, remote, "dist assignments diverge from local");

        w.shutdown().expect("worker");
        coord.shutdown();
        for f in [&data, &local_out, &remote_out] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn pack_inspect_and_cluster_from_store_match_csv() {
        let data = tmp("store-pts.csv");
        let store = tmp("store-pts.dstr");
        let csv_out = tmp("store-csv-out.csv");
        let store_out = tmp("store-store-out.csv");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "150", "--d", "6", "--k", "3", "--output", &data,
        ]))
        .unwrap())
        .unwrap();

        let r = run(&args::parse(&sv(&[
            "pack",
            "--input",
            &data,
            "--output",
            &store,
            "--shard-rows",
            "64",
            "--labels-last-column",
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("packed 150 rows"), "{r}");
        assert!(r.contains("3 shards"), "{r}");
        assert!(r.contains("labels: yes"), "{r}");

        let r = run(&args::parse(&sv(&["inspect", "--data", &store])).unwrap()).unwrap();
        assert!(r.contains("150 x 6 dims"), "{r}");
        assert!(r.contains("all 3 shards verified"), "{r}");
        assert!(r.contains("shard     0"), "{r}");

        // The same clustering from the CSV and from the packed store,
        // bit-for-bit: both read identical points and run the same
        // engine with the same defaults.
        run(&args::parse(&sv(&[
            "cluster",
            "--input",
            &data,
            "--k",
            "3",
            "--labels-last-column",
            "--output",
            &csv_out,
        ]))
        .unwrap())
        .unwrap();
        let r = run(&args::parse(&sv(&[
            "cluster", "--data", &store, "--k", "3", "--output", &store_out,
        ]))
        .unwrap())
        .unwrap();
        // Labels ride along inside the store, so accuracy is reported
        // without any flag.
        assert!(r.contains("accuracy"), "{r}");
        let from_csv = std::fs::read_to_string(&csv_out).unwrap();
        let from_store = std::fs::read_to_string(&store_out).unwrap();
        assert_eq!(from_csv, from_store, "store path diverges from CSV path");

        for f in [&data, &csv_out, &store_out] {
            let _ = std::fs::remove_file(f);
        }
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn cluster_dist_ref_submission_matches_inline() {
        let data = tmp("ref-pts.csv");
        let store = tmp("ref-pts.dstr");
        let inline_out = tmp("ref-inline.csv");
        let ref_out = tmp("ref-byref.csv");
        run(&args::parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "150", "--d", "6", "--k", "3", "--output", &data,
        ]))
        .unwrap())
        .unwrap();
        run(&args::parse(&sv(&[
            "pack",
            "--input",
            &data,
            "--output",
            &store,
            "--shard-rows",
            "48",
            "--labels-last-column",
        ]))
        .unwrap())
        .unwrap();

        let coord =
            Coordinator::start("127.0.0.1:0", ClusterConfig::emr_default()).expect("coordinator");
        let addr = coord.addr().to_string();
        let w = dasc_dist::worker::spawn(&addr, WorkerOptions::named("cli-ref"));

        run(&args::parse(&sv(&[
            "cluster",
            "--input",
            &data,
            "--k",
            "3",
            "--seed",
            "7",
            "--labels-last-column",
            "--dist",
            &addr,
            "--output",
            &inline_out,
        ]))
        .unwrap())
        .unwrap();
        let r = run(&args::parse(&sv(&[
            "cluster", "--data", &store, "--k", "3", "--seed", "7", "--dist", &addr, "--output",
            &ref_out,
        ]))
        .unwrap())
        .unwrap();
        assert!(r.contains("shard-addressed"), "{r}");

        let inline = std::fs::read_to_string(&inline_out).unwrap();
        let by_ref = std::fs::read_to_string(&ref_out).unwrap();
        assert_eq!(inline, by_ref, "ref submission diverges from inline");

        w.shutdown().expect("worker");
        coord.shutdown();
        for f in [&data, &inline_out, &ref_out] {
            let _ = std::fs::remove_file(f);
        }
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn cluster_dist_rejects_non_dasc_algorithms() {
        let e = run(&args::parse(&sv(&[
            "cluster",
            "--input",
            "whatever.csv",
            "--k",
            "2",
            "--algorithm",
            "sc",
            "--dist",
            "local",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(e.contains("--dist only supports"), "{e}");
    }

    #[test]
    fn serve_rejects_missing_model() {
        let e = run(&args::parse(&sv(&["serve", "--model", "/nonexistent/m.dasc"])).unwrap())
            .unwrap_err();
        assert!(e.contains("load"), "{e}");
    }
}
