//! CSV I/O for the CLI — re-exported from `dasc-data`, where the
//! canonical streaming parser lives (it is shared with the CSV→store
//! packer, so the `pack` subcommand and `cluster --input` agree on
//! every parsing detail).

pub use dasc_data::csv::{
    read_points, read_points_flat, write_assignments, write_points, CsvError, PointsAndLabels,
};
