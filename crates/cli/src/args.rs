//! Argument parsing for the `dasc` binary (hand-rolled; no external
//! dependencies).
//!
//! ```text
//! dasc cluster  --input pts.csv --k 8 [--algorithm dasc] [--sigma 0.2]
//!               [--bits M] [--labels-last-column] [--output out.csv]
//! dasc generate --kind blobs|wiki|grid --n 1000 [--d 64] [--k 8]
//!               [--seed 42] --output pts.csv
//! ```

use std::fmt;

/// Which clustering algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's contribution.
    Dasc,
    /// Exact spectral clustering.
    Sc,
    /// Parallel spectral clustering (t-NN sparse).
    Psc,
    /// Nyström-extension spectral clustering.
    Nyst,
    /// Self-tuning spectral clustering (Zelnik-Manor local scaling).
    Stsc,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s.to_ascii_lowercase().as_str() {
            "dasc" => Ok(Self::Dasc),
            "sc" => Ok(Self::Sc),
            "psc" => Ok(Self::Psc),
            "nyst" | "nystrom" => Ok(Self::Nyst),
            "stsc" | "self-tuning" => Ok(Self::Stsc),
            other => Err(ParseError::Invalid(format!("unknown algorithm '{other}'"))),
        }
    }
}

/// A fully-parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Cluster a CSV dataset.
    Cluster {
        /// Input CSV path.
        input: String,
        /// Output CSV path (`-` or empty = stdout).
        output: Option<String>,
        /// Number of clusters.
        k: usize,
        /// Algorithm choice.
        algorithm: Algorithm,
        /// Gaussian bandwidth; `None` = median heuristic.
        sigma: Option<f64>,
        /// LSH signature bits; `None` = paper default.
        bits: Option<usize>,
        /// Treat the last CSV column as a ground-truth label and report
        /// accuracy/NMI.
        labels_last_column: bool,
    },
    /// Generate a demo dataset as CSV.
    Generate {
        /// `blobs`, `wiki`, or `grid`.
        kind: String,
        /// Number of points.
        n: usize,
        /// Dimensions (blobs/grid).
        d: usize,
        /// Clusters/categories.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Output CSV path.
        output: String,
    },
    /// Print usage.
    Help,
}

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Missing required flag.
    Missing(&'static str),
    /// Malformed value or unknown flag/command.
    Invalid(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Missing(flag) => write!(f, "missing required {flag}"),
            ParseError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
dasc — distributed approximate spectral clustering

USAGE:
  dasc cluster  --input <csv> --k <K> [--algorithm dasc|sc|psc|nyst|stsc]
                [--sigma <f>] [--bits <M>] [--labels-last-column]
                [--output <csv>]
  dasc generate --kind blobs|wiki|grid --n <N> [--d <D>] [--k <K>]
                [--seed <S>] --output <csv>
  dasc help
";

/// Parse an argv slice (excluding the program name).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let mut it = argv.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "cluster" => parse_cluster(&argv[1..]),
        "generate" => parse_generate(&argv[1..]),
        other => Err(ParseError::Invalid(format!("unknown command '{other}'"))),
    }
}

struct Flags<'a> {
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn scan(argv: &'a [String], boolean: &[&str]) -> Result<Self, ParseError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            if !flag.starts_with("--") {
                return Err(ParseError::Invalid(format!("unexpected argument '{flag}'")));
            }
            if boolean.contains(&flag) {
                pairs.push((flag, None));
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseError::Invalid(format!("flag {flag} needs a value")))?;
                pairs.push((flag, Some(value.as_str())));
                i += 2;
            }
        }
        Ok(Self { pairs })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| *f == flag)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, flag: &str) -> bool {
        self.pairs.iter().any(|(f, _)| *f == flag)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, ParseError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v.parse::<T>().map(Some).map_err(|_| {
                ParseError::Invalid(format!("bad value '{v}' for {flag}"))
            }),
        }
    }
}

fn parse_cluster(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &["--labels-last-column"])?;
    Ok(Command::Cluster {
        input: flags
            .get("--input")
            .ok_or(ParseError::Missing("--input"))?
            .to_string(),
        output: flags.get("--output").map(str::to_string),
        k: flags
            .parsed::<usize>("--k")?
            .ok_or(ParseError::Missing("--k"))?,
        algorithm: match flags.get("--algorithm") {
            Some(a) => Algorithm::parse(a)?,
            None => Algorithm::Dasc,
        },
        sigma: flags.parsed::<f64>("--sigma")?,
        bits: flags.parsed::<usize>("--bits")?,
        labels_last_column: flags.has("--labels-last-column"),
    })
}

fn parse_generate(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &[])?;
    Ok(Command::Generate {
        kind: flags
            .get("--kind")
            .ok_or(ParseError::Missing("--kind"))?
            .to_string(),
        n: flags
            .parsed::<usize>("--n")?
            .ok_or(ParseError::Missing("--n"))?,
        d: flags.parsed::<usize>("--d")?.unwrap_or(64),
        k: flags.parsed::<usize>("--k")?.unwrap_or(8),
        seed: flags.parsed::<u64>("--seed")?.unwrap_or(42),
        output: flags
            .get("--output")
            .ok_or(ParseError::Missing("--output"))?
            .to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_cluster() {
        let c = parse(&sv(&["cluster", "--input", "a.csv", "--k", "5"])).unwrap();
        assert_eq!(
            c,
            Command::Cluster {
                input: "a.csv".into(),
                output: None,
                k: 5,
                algorithm: Algorithm::Dasc,
                sigma: None,
                bits: None,
                labels_last_column: false,
            }
        );
    }

    #[test]
    fn parses_full_cluster() {
        let c = parse(&sv(&[
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "3",
            "--algorithm",
            "psc",
            "--sigma",
            "0.5",
            "--bits",
            "6",
            "--labels-last-column",
            "--output",
            "out.csv",
        ]))
        .unwrap();
        match c {
            Command::Cluster { algorithm, sigma, bits, labels_last_column, output, .. } => {
                assert_eq!(algorithm, Algorithm::Psc);
                assert_eq!(sigma, Some(0.5));
                assert_eq!(bits, Some(6));
                assert!(labels_last_column);
                assert_eq!(output.as_deref(), Some("out.csv"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_generate_with_defaults() {
        let c = parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "100", "--output", "o.csv",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Generate {
                kind: "blobs".into(),
                n: 100,
                d: 64,
                k: 8,
                seed: 42,
                output: "o.csv".into(),
            }
        );
    }

    #[test]
    fn help_variants() {
        for h in [&["help"][..], &["--help"], &["-h"], &[]] {
            assert_eq!(parse(&sv(h)).unwrap(), Command::Help);
        }
    }

    #[test]
    fn missing_required_flag() {
        let e = parse(&sv(&["cluster", "--k", "2"])).unwrap_err();
        assert_eq!(e, ParseError::Missing("--input"));
    }

    #[test]
    fn bad_number() {
        let e = parse(&sv(&["cluster", "--input", "a", "--k", "two"])).unwrap_err();
        assert!(matches!(e, ParseError::Invalid(_)));
    }

    #[test]
    fn unknown_algorithm() {
        let e = parse(&sv(&[
            "cluster", "--input", "a", "--k", "2", "--algorithm", "magic",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("unknown algorithm"));
    }

    #[test]
    fn unknown_command() {
        assert!(parse(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn dangling_flag_value() {
        let e = parse(&sv(&["cluster", "--input"])).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
    }
}
