//! Argument parsing for the `dasc` binary (hand-rolled; no external
//! dependencies).
//!
//! ```text
//! dasc cluster  --input pts.csv --k 8 [--algorithm dasc] [--sigma 0.2]
//!               [--bits M] [--labels-last-column] [--output out.csv]
//! dasc generate --kind blobs|wiki|grid --n 1000 [--d 64] [--k 8]
//!               [--seed 42] --output pts.csv
//! dasc train    --input pts.csv --k 8 --model-out m.dasc [--sigma 0.2]
//!               [--bits M] [--seed 42] [--labels-last-column]
//! dasc serve    --model m.dasc [--port 7878] [--addr 127.0.0.1]
//!               [--workers N]
//! dasc assign   --model m.dasc --input new.csv [--output out.csv]
//!               [--labels-last-column]
//! ```

use std::fmt;

/// Which clustering algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's contribution.
    Dasc,
    /// Exact spectral clustering.
    Sc,
    /// Parallel spectral clustering (t-NN sparse).
    Psc,
    /// Nyström-extension spectral clustering.
    Nyst,
    /// Self-tuning spectral clustering (Zelnik-Manor local scaling).
    Stsc,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s.to_ascii_lowercase().as_str() {
            "dasc" => Ok(Self::Dasc),
            "sc" => Ok(Self::Sc),
            "psc" => Ok(Self::Psc),
            "nyst" | "nystrom" => Ok(Self::Nyst),
            "stsc" | "self-tuning" => Ok(Self::Stsc),
            other => Err(ParseError::Invalid(format!("unknown algorithm '{other}'"))),
        }
    }
}

/// A fully-parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Cluster a CSV dataset or a packed `.dstr` store.
    Cluster {
        /// Input CSV path (exactly one of `--input` / `--data`).
        input: Option<String>,
        /// Packed `.dstr` store directory to cluster instead of a CSV.
        /// With `--dist <host:port>` the job is submitted *by
        /// reference*: tasks carry shard tables, not points.
        data: Option<String>,
        /// Output CSV path (`-` or empty = stdout).
        output: Option<String>,
        /// Number of clusters.
        k: usize,
        /// Algorithm choice.
        algorithm: Algorithm,
        /// Gaussian bandwidth; `None` = median heuristic.
        sigma: Option<f64>,
        /// LSH signature bits; `None` = paper default.
        bits: Option<usize>,
        /// Treat the last CSV column as a ground-truth label and report
        /// accuracy/NMI.
        labels_last_column: bool,
        /// Print a per-stage wall-time table after the run.
        stage_timings: bool,
        /// Write a Chrome trace-event JSON of the run's stage spans.
        trace_out: Option<String>,
        /// Run the distributed engine: `local` = in-process simulation,
        /// anything else = a coordinator address to submit the job to.
        dist: Option<String>,
        /// RNG seed override (pins bucket clustering across runs).
        seed: Option<u64>,
    },
    /// Generate a demo dataset as CSV.
    Generate {
        /// `blobs`, `wiki`, or `grid`.
        kind: String,
        /// Number of points.
        n: usize,
        /// Dimensions (blobs/grid).
        d: usize,
        /// Clusters/categories.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Output CSV path.
        output: String,
    },
    /// Train a DASC model and persist it as a serving artifact.
    Train {
        /// Input CSV path.
        input: String,
        /// Artifact output path.
        model_out: String,
        /// Number of clusters.
        k: usize,
        /// Gaussian bandwidth; `None` = median heuristic.
        sigma: Option<f64>,
        /// LSH signature bits; `None` = paper default.
        bits: Option<usize>,
        /// RNG seed; `None` = config default.
        seed: Option<u64>,
        /// Strip a trailing ground-truth column and report accuracy/NMI.
        labels_last_column: bool,
        /// Print a per-stage wall-time table after the run.
        stage_timings: bool,
        /// Write a Chrome trace-event JSON of the run's stage spans.
        trace_out: Option<String>,
    },
    /// Serve a persisted model over HTTP.
    Serve {
        /// Artifact path.
        model: String,
        /// Bind host.
        addr: String,
        /// Bind port.
        port: u16,
        /// Worker threads; `None` = available parallelism.
        workers: Option<usize>,
    },
    /// Batch-assign a CSV of points with a persisted model.
    Assign {
        /// Artifact path.
        model: String,
        /// Input CSV path.
        input: String,
        /// Output CSV path (`-` or empty = stdout).
        output: Option<String>,
        /// Strip a trailing ground-truth column and report accuracy/NMI.
        labels_last_column: bool,
    },
    /// Run a DASC cluster coordinator daemon.
    Coordinator {
        /// Bind host.
        addr: String,
        /// Bind port (0 picks a free port).
        port: u16,
        /// HTTP observability port (`/metrics`, `/workers`); `None` =
        /// RPC port + 1.
        http_port: Option<u16>,
    },
    /// Run a DASC worker daemon attached to a coordinator.
    Worker {
        /// Coordinator address (`host:port`).
        coordinator: String,
        /// Worker name reported on registration.
        name: String,
    },
    /// Scrape a coordinator's Prometheus metrics over the wire protocol.
    DistMetrics {
        /// Coordinator address (`host:port`).
        coordinator: String,
    },
    /// Pack a CSV into a sharded on-disk `.dstr` store.
    Pack {
        /// Input CSV path.
        input: String,
        /// Output store directory.
        output: String,
        /// Rows per shard; `None` = format default.
        shard_rows: Option<usize>,
        /// Store the last CSV column as per-row labels.
        labels_last_column: bool,
    },
    /// Print a packed store's manifest and verify every shard checksum.
    Inspect {
        /// Store directory path.
        data: String,
    },
    /// Print usage.
    Help,
}

/// Parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Missing required flag.
    Missing(&'static str),
    /// Malformed value or unknown flag/command.
    Invalid(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Missing(flag) => write!(f, "missing required {flag}"),
            ParseError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Usage text.
pub const USAGE: &str = "\
dasc — distributed approximate spectral clustering

USAGE:
  dasc cluster  --input <csv>|--data <dstr> --k <K>
                [--algorithm dasc|sc|psc|nyst|stsc]
                [--sigma <f>] [--bits <M>] [--seed <S>] [--labels-last-column]
                [--output <csv>] [--stage-timings] [--trace-out <json>]
                [--dist local|<host:port>]
  dasc generate --kind blobs|wiki|grid --n <N> [--d <D>] [--k <K>]
                [--seed <S>] --output <csv>
  dasc pack     --input <csv> --output <dstr-dir> [--shard-rows <R>]
                [--labels-last-column]
  dasc inspect  --data <dstr-dir>
  dasc train    --input <csv> --k <K> --model-out <path> [--sigma <f>]
                [--bits <M>] [--seed <S>] [--labels-last-column]
                [--stage-timings] [--trace-out <json>]
  dasc serve    --model <path> [--port <P>] [--addr <host>] [--workers <N>]
  dasc assign   --model <path> --input <csv> [--output <csv>]
                [--labels-last-column]
  dasc coordinator [--addr <host>] [--port <P>] [--http-port <P>]
  dasc worker   --coordinator <host:port> [--name <id>]
  dasc dist-metrics --coordinator <host:port>
  dasc help
";

/// Parse an argv slice (excluding the program name).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let mut it = argv.iter();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "cluster" => parse_cluster(&argv[1..]),
        "generate" => parse_generate(&argv[1..]),
        "train" => parse_train(&argv[1..]),
        "serve" => parse_serve(&argv[1..]),
        "assign" => parse_assign(&argv[1..]),
        "coordinator" => parse_coordinator(&argv[1..]),
        "worker" => parse_worker(&argv[1..]),
        "dist-metrics" => parse_dist_metrics(&argv[1..]),
        "pack" => parse_pack(&argv[1..]),
        "inspect" => parse_inspect(&argv[1..]),
        other => Err(ParseError::Invalid(format!("unknown command '{other}'"))),
    }
}

struct Flags<'a> {
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Flags<'a> {
    fn scan(argv: &'a [String], boolean: &[&str]) -> Result<Self, ParseError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            if !flag.starts_with("--") {
                return Err(ParseError::Invalid(format!("unexpected argument '{flag}'")));
            }
            if boolean.contains(&flag) {
                pairs.push((flag, None));
                i += 1;
            } else {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseError::Invalid(format!("flag {flag} needs a value")))?;
                pairs.push((flag, Some(value.as_str())));
                i += 2;
            }
        }
        Ok(Self { pairs })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(f, _)| *f == flag)
            .and_then(|(_, v)| *v)
    }

    fn has(&self, flag: &str) -> bool {
        self.pairs.iter().any(|(f, _)| *f == flag)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, ParseError> {
        match self.get(flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| ParseError::Invalid(format!("bad value '{v}' for {flag}"))),
        }
    }
}

fn parse_cluster(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &["--labels-last-column", "--stage-timings"])?;
    let input = flags.get("--input").map(str::to_string);
    let data = flags.get("--data").map(str::to_string);
    match (&input, &data) {
        (None, None) => return Err(ParseError::Missing("--input or --data")),
        (Some(_), Some(_)) => {
            return Err(ParseError::Invalid(
                "--input and --data are mutually exclusive".to_string(),
            ))
        }
        _ => {}
    }
    Ok(Command::Cluster {
        input,
        data,
        output: flags.get("--output").map(str::to_string),
        k: flags
            .parsed::<usize>("--k")?
            .ok_or(ParseError::Missing("--k"))?,
        algorithm: match flags.get("--algorithm") {
            Some(a) => Algorithm::parse(a)?,
            None => Algorithm::Dasc,
        },
        sigma: flags.parsed::<f64>("--sigma")?,
        bits: flags.parsed::<usize>("--bits")?,
        labels_last_column: flags.has("--labels-last-column"),
        stage_timings: flags.has("--stage-timings"),
        trace_out: flags.get("--trace-out").map(str::to_string),
        dist: flags.get("--dist").map(str::to_string),
        seed: flags.parsed::<u64>("--seed")?,
    })
}

fn parse_generate(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &[])?;
    Ok(Command::Generate {
        kind: flags
            .get("--kind")
            .ok_or(ParseError::Missing("--kind"))?
            .to_string(),
        n: flags
            .parsed::<usize>("--n")?
            .ok_or(ParseError::Missing("--n"))?,
        d: flags.parsed::<usize>("--d")?.unwrap_or(64),
        k: flags.parsed::<usize>("--k")?.unwrap_or(8),
        seed: flags.parsed::<u64>("--seed")?.unwrap_or(42),
        output: flags
            .get("--output")
            .ok_or(ParseError::Missing("--output"))?
            .to_string(),
    })
}

fn parse_train(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &["--labels-last-column", "--stage-timings"])?;
    Ok(Command::Train {
        input: flags
            .get("--input")
            .ok_or(ParseError::Missing("--input"))?
            .to_string(),
        model_out: flags
            .get("--model-out")
            .ok_or(ParseError::Missing("--model-out"))?
            .to_string(),
        k: flags
            .parsed::<usize>("--k")?
            .ok_or(ParseError::Missing("--k"))?,
        sigma: flags.parsed::<f64>("--sigma")?,
        bits: flags.parsed::<usize>("--bits")?,
        seed: flags.parsed::<u64>("--seed")?,
        labels_last_column: flags.has("--labels-last-column"),
        stage_timings: flags.has("--stage-timings"),
        trace_out: flags.get("--trace-out").map(str::to_string),
    })
}

fn parse_serve(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &[])?;
    Ok(Command::Serve {
        model: flags
            .get("--model")
            .ok_or(ParseError::Missing("--model"))?
            .to_string(),
        addr: flags.get("--addr").unwrap_or("127.0.0.1").to_string(),
        port: flags.parsed::<u16>("--port")?.unwrap_or(7878),
        workers: flags.parsed::<usize>("--workers")?,
    })
}

fn parse_assign(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &["--labels-last-column"])?;
    Ok(Command::Assign {
        model: flags
            .get("--model")
            .ok_or(ParseError::Missing("--model"))?
            .to_string(),
        input: flags
            .get("--input")
            .ok_or(ParseError::Missing("--input"))?
            .to_string(),
        output: flags.get("--output").map(str::to_string),
        labels_last_column: flags.has("--labels-last-column"),
    })
}

fn parse_coordinator(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &[])?;
    Ok(Command::Coordinator {
        addr: flags.get("--addr").unwrap_or("127.0.0.1").to_string(),
        port: flags.parsed::<u16>("--port")?.unwrap_or(7979),
        http_port: flags.parsed::<u16>("--http-port")?,
    })
}

fn parse_worker(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &[])?;
    Ok(Command::Worker {
        coordinator: flags
            .get("--coordinator")
            .ok_or(ParseError::Missing("--coordinator"))?
            .to_string(),
        name: flags
            .get("--name")
            .unwrap_or(&format!("worker-{}", std::process::id()))
            .to_string(),
    })
}

fn parse_dist_metrics(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &[])?;
    Ok(Command::DistMetrics {
        coordinator: flags
            .get("--coordinator")
            .ok_or(ParseError::Missing("--coordinator"))?
            .to_string(),
    })
}

fn parse_pack(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &["--labels-last-column"])?;
    let shard_rows = flags.parsed::<usize>("--shard-rows")?;
    if shard_rows == Some(0) {
        return Err(ParseError::Invalid(
            "--shard-rows must be positive".to_string(),
        ));
    }
    Ok(Command::Pack {
        input: flags
            .get("--input")
            .ok_or(ParseError::Missing("--input"))?
            .to_string(),
        output: flags
            .get("--output")
            .ok_or(ParseError::Missing("--output"))?
            .to_string(),
        shard_rows,
        labels_last_column: flags.has("--labels-last-column"),
    })
}

fn parse_inspect(argv: &[String]) -> Result<Command, ParseError> {
    let flags = Flags::scan(argv, &[])?;
    Ok(Command::Inspect {
        data: flags
            .get("--data")
            .ok_or(ParseError::Missing("--data"))?
            .to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_cluster() {
        let c = parse(&sv(&["cluster", "--input", "a.csv", "--k", "5"])).unwrap();
        assert_eq!(
            c,
            Command::Cluster {
                input: Some("a.csv".into()),
                data: None,
                output: None,
                k: 5,
                algorithm: Algorithm::Dasc,
                sigma: None,
                bits: None,
                labels_last_column: false,
                stage_timings: false,
                trace_out: None,
                dist: None,
                seed: None,
            }
        );
    }

    #[test]
    fn parses_full_cluster() {
        let c = parse(&sv(&[
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "3",
            "--algorithm",
            "psc",
            "--sigma",
            "0.5",
            "--bits",
            "6",
            "--labels-last-column",
            "--output",
            "out.csv",
        ]))
        .unwrap();
        match c {
            Command::Cluster {
                algorithm,
                sigma,
                bits,
                labels_last_column,
                output,
                ..
            } => {
                assert_eq!(algorithm, Algorithm::Psc);
                assert_eq!(sigma, Some(0.5));
                assert_eq!(bits, Some(6));
                assert!(labels_last_column);
                assert_eq!(output.as_deref(), Some("out.csv"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_generate_with_defaults() {
        let c = parse(&sv(&[
            "generate", "--kind", "blobs", "--n", "100", "--output", "o.csv",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Generate {
                kind: "blobs".into(),
                n: 100,
                d: 64,
                k: 8,
                seed: 42,
                output: "o.csv".into(),
            }
        );
    }

    #[test]
    fn help_variants() {
        for h in [&["help"][..], &["--help"], &["-h"], &[]] {
            assert_eq!(parse(&sv(h)).unwrap(), Command::Help);
        }
    }

    #[test]
    fn parses_cluster_dist_and_seed() {
        let c = parse(&sv(&[
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "4",
            "--dist",
            "127.0.0.1:7979",
            "--seed",
            "7",
        ]))
        .unwrap();
        match c {
            Command::Cluster { dist, seed, .. } => {
                assert_eq!(dist.as_deref(), Some("127.0.0.1:7979"));
                assert_eq!(seed, Some(7));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_coordinator_defaults_and_overrides() {
        assert_eq!(
            parse(&sv(&["coordinator"])).unwrap(),
            Command::Coordinator {
                addr: "127.0.0.1".into(),
                port: 7979,
                http_port: None,
            }
        );
        assert_eq!(
            parse(&sv(&[
                "coordinator",
                "--addr",
                "0.0.0.0",
                "--port",
                "9000",
                "--http-port",
                "9001",
            ]))
            .unwrap(),
            Command::Coordinator {
                addr: "0.0.0.0".into(),
                port: 9000,
                http_port: Some(9001),
            }
        );
    }

    #[test]
    fn parses_worker() {
        let c = parse(&sv(&[
            "worker",
            "--coordinator",
            "127.0.0.1:7979",
            "--name",
            "w1",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Worker {
                coordinator: "127.0.0.1:7979".into(),
                name: "w1".into(),
            }
        );
        // Name defaults to a pid-derived identifier.
        match parse(&sv(&["worker", "--coordinator", "h:1"])).unwrap() {
            Command::Worker { name, .. } => assert!(name.starts_with("worker-")),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn worker_requires_coordinator() {
        let e = parse(&sv(&["worker"])).unwrap_err();
        assert_eq!(e, ParseError::Missing("--coordinator"));
        let e = parse(&sv(&["dist-metrics"])).unwrap_err();
        assert_eq!(e, ParseError::Missing("--coordinator"));
    }

    #[test]
    fn missing_required_flag() {
        let e = parse(&sv(&["cluster", "--k", "2"])).unwrap_err();
        assert_eq!(e, ParseError::Missing("--input or --data"));
    }

    #[test]
    fn parses_cluster_data_store() {
        let c = parse(&sv(&["cluster", "--data", "pts.dstr", "--k", "4"])).unwrap();
        match c {
            Command::Cluster { input, data, .. } => {
                assert_eq!(input, None);
                assert_eq!(data.as_deref(), Some("pts.dstr"));
            }
            _ => panic!("wrong command"),
        }
        let e = parse(&sv(&[
            "cluster", "--input", "a.csv", "--data", "a.dstr", "--k", "2",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn parses_pack_and_inspect() {
        assert_eq!(
            parse(&sv(&[
                "pack",
                "--input",
                "a.csv",
                "--output",
                "a.dstr",
                "--shard-rows",
                "512",
                "--labels-last-column",
            ]))
            .unwrap(),
            Command::Pack {
                input: "a.csv".into(),
                output: "a.dstr".into(),
                shard_rows: Some(512),
                labels_last_column: true,
            }
        );
        assert_eq!(
            parse(&sv(&["pack", "--input", "a.csv", "--output", "a.dstr"])).unwrap(),
            Command::Pack {
                input: "a.csv".into(),
                output: "a.dstr".into(),
                shard_rows: None,
                labels_last_column: false,
            }
        );
        let e = parse(&sv(&[
            "pack",
            "--input",
            "a.csv",
            "--output",
            "a.dstr",
            "--shard-rows",
            "0",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("positive"), "{e}");
        assert_eq!(
            parse(&sv(&["pack", "--input", "a.csv"])).unwrap_err(),
            ParseError::Missing("--output")
        );

        assert_eq!(
            parse(&sv(&["inspect", "--data", "a.dstr"])).unwrap(),
            Command::Inspect {
                data: "a.dstr".into(),
            }
        );
        assert_eq!(
            parse(&sv(&["inspect"])).unwrap_err(),
            ParseError::Missing("--data")
        );
    }

    #[test]
    fn bad_number() {
        let e = parse(&sv(&["cluster", "--input", "a", "--k", "two"])).unwrap_err();
        assert!(matches!(e, ParseError::Invalid(_)));
    }

    #[test]
    fn unknown_algorithm() {
        let e = parse(&sv(&[
            "cluster",
            "--input",
            "a",
            "--k",
            "2",
            "--algorithm",
            "magic",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("unknown algorithm"));
    }

    #[test]
    fn unknown_command() {
        assert!(parse(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn parses_train() {
        let c = parse(&sv(&[
            "train",
            "--input",
            "a.csv",
            "--k",
            "4",
            "--model-out",
            "m.dasc",
            "--bits",
            "10",
            "--seed",
            "9",
            "--labels-last-column",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Train {
                input: "a.csv".into(),
                model_out: "m.dasc".into(),
                k: 4,
                sigma: None,
                bits: Some(10),
                seed: Some(9),
                labels_last_column: true,
                stage_timings: false,
                trace_out: None,
            }
        );
    }

    #[test]
    fn parses_observability_flags() {
        let c = parse(&sv(&[
            "train",
            "--input",
            "a.csv",
            "--k",
            "4",
            "--model-out",
            "m.dasc",
            "--stage-timings",
            "--trace-out",
            "trace.json",
        ]))
        .unwrap();
        match c {
            Command::Train {
                stage_timings,
                trace_out,
                ..
            } => {
                assert!(stage_timings);
                assert_eq!(trace_out.as_deref(), Some("trace.json"));
            }
            _ => panic!("wrong command"),
        }

        let c = parse(&sv(&[
            "cluster",
            "--input",
            "a.csv",
            "--k",
            "2",
            "--trace-out",
            "t.json",
        ]))
        .unwrap();
        match c {
            Command::Cluster {
                stage_timings,
                trace_out,
                ..
            } => {
                assert!(!stage_timings);
                assert_eq!(trace_out.as_deref(), Some("t.json"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn train_requires_model_out() {
        let e = parse(&sv(&["train", "--input", "a.csv", "--k", "4"])).unwrap_err();
        assert_eq!(e, ParseError::Missing("--model-out"));
    }

    #[test]
    fn parses_serve_with_defaults() {
        let c = parse(&sv(&["serve", "--model", "m.dasc"])).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                model: "m.dasc".into(),
                addr: "127.0.0.1".into(),
                port: 7878,
                workers: None,
            }
        );
    }

    #[test]
    fn parses_serve_overrides() {
        let c = parse(&sv(&[
            "serve",
            "--model",
            "m",
            "--port",
            "9000",
            "--addr",
            "0.0.0.0",
            "--workers",
            "3",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                model: "m".into(),
                addr: "0.0.0.0".into(),
                port: 9000,
                workers: Some(3),
            }
        );
    }

    #[test]
    fn parses_assign() {
        let c = parse(&sv(&[
            "assign", "--model", "m.dasc", "--input", "new.csv", "--output", "o.csv",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Assign {
                model: "m.dasc".into(),
                input: "new.csv".into(),
                output: Some("o.csv".into()),
                labels_last_column: false,
            }
        );
    }

    #[test]
    fn assign_requires_model() {
        let e = parse(&sv(&["assign", "--input", "new.csv"])).unwrap_err();
        assert_eq!(e, ParseError::Missing("--model"));
    }

    #[test]
    fn dangling_flag_value() {
        let e = parse(&sv(&["cluster", "--input"])).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
    }
}
