//! The `dasc` command-line binary. See `dasc help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dasc_cli::main_with_args(&argv) {
        Ok(report) => println!("{report}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", dasc_cli::args::USAGE);
            std::process::exit(2);
        }
    }
}
