//! Library backing the `dasc` command-line tool: CSV I/O, argument
//! parsing, and the dispatch from parsed options to the algorithms.
//!
//! Kept as a library so every piece is unit-testable; `main.rs` is a
//! thin shell around [`run`].

pub mod args;
pub mod csv;
pub mod runner;

pub use args::{Algorithm, Command, ParseError};
pub use runner::run;

/// Entry point used by the binary: parse then run, mapping every error
/// to a message + exit code.
pub fn main_with_args(argv: &[String]) -> Result<String, String> {
    let cmd = args::parse(argv).map_err(|e| e.to_string())?;
    runner::run(&cmd).map_err(|e| e.to_string())
}
