//! Black-box tests of the compiled `dasc` CLI binary: spawn the real
//! executable and assert on its stdout/stderr/exit codes.

use std::process::Command;

/// The `dasc` binary, built by cargo before this test runs.
fn dasc_bin() -> &'static str {
    env!("CARGO_BIN_EXE_dasc")
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("dasc-bin-test-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let out = Command::new(dasc_bin())
        .arg("help")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"), "stdout: {text}");
}

#[test]
fn bad_command_exits_nonzero_with_usage() {
    let out = Command::new(dasc_bin())
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "stderr: {err}");
    assert!(err.contains("USAGE"), "stderr: {err}");
}

#[test]
fn generate_and_cluster_end_to_end() {
    let data = tmp("e2e.csv");
    let assignments = tmp("e2e-assign.csv");

    let out = Command::new(dasc_bin())
        .args([
            "generate", "--kind", "blobs", "--n", "150", "--d", "8", "--k", "3", "--seed", "7",
            "--output", &data,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(dasc_bin())
        .args([
            "cluster",
            "--input",
            &data,
            "--k",
            "3",
            "--labels-last-column",
            "--output",
            &assignments,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("accuracy:"), "report: {report}");

    let written = std::fs::read_to_string(&assignments).expect("assignments file");
    assert_eq!(written.lines().count(), 151); // header + 150 rows

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&assignments);
}

#[test]
fn cluster_labels_agree_across_kernel_backends() {
    // Pipeline-level backend equivalence: the same clustering run under
    // DASC_KERNEL=scalar and DASC_KERNEL=auto must emit identical
    // labels. Distances differ by a few ULPs between backends, but the
    // spectral fixtures have no near-exact ties for those ULPs to flip.
    // Each backend gets its own process because the backend is resolved
    // once per process.
    let data = tmp("backend.csv");
    let out = Command::new(dasc_bin())
        .args([
            "generate", "--kind", "blobs", "--n", "200", "--d", "8", "--k", "4", "--seed", "11",
            "--output", &data,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut assignment_files = Vec::new();
    for backend in ["scalar", "auto"] {
        let assignments = tmp(&format!("backend-assign-{backend}.csv"));
        let out = Command::new(dasc_bin())
            .env("DASC_KERNEL", backend)
            .args([
                "cluster",
                "--input",
                &data,
                "--k",
                "4",
                "--labels-last-column",
                "--output",
                &assignments,
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "DASC_KERNEL={backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assignment_files.push(assignments);
    }

    let scalar_labels = std::fs::read_to_string(&assignment_files[0]).expect("scalar labels");
    let auto_labels = std::fs::read_to_string(&assignment_files[1]).expect("auto labels");
    assert_eq!(
        scalar_labels, auto_labels,
        "clustering labels diverged between scalar and auto kernel backends"
    );

    let _ = std::fs::remove_file(&data);
    for f in assignment_files {
        let _ = std::fs::remove_file(&f);
    }
}

#[test]
fn missing_file_reports_cleanly() {
    let out = Command::new(dasc_bin())
        .args(["cluster", "--input", "/definitely/not/here.csv", "--k", "2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("open"), "stderr: {err}");
}
