//! The on-wire frame: header + opaque payload.
//!
//! Layout (all integers little-endian):
//!
//! | offset | size | field       | value                                |
//! |--------|------|-------------|--------------------------------------|
//! | 0      | 4    | magic       | `b"DNET"`                            |
//! | 4      | 2    | version     | [`VERSION`] (currently 1)            |
//! | 6      | 2    | msg_type    | message discriminant (protocol layer)|
//! | 8      | 4    | payload_len | bytes of payload that follow         |
//! | 12     | 8    | checksum    | FNV-1a-64 of the payload             |
//! | 20     | n    | payload     | opaque bytes ([`crate::wire`] body)  |
//!
//! The checksum guards against torn writes and transport corruption,
//! not adversaries. A reader positioned at a frame boundary that sees
//! EOF reports [`FrameError::Closed`] (clean hangup); EOF anywhere
//! inside a frame is [`FrameError::Truncated`].

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"DNET";
/// Protocol version stamped into every header; decoders reject skew.
pub const VERSION: u16 = 1;
/// Header size in bytes (magic + version + msg_type + len + checksum).
pub const HEADER_LEN: usize = 20;
/// Maximum accepted payload length (256 MiB) — a cap against corrupted
/// or hostile length fields allocating unbounded memory.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// One decoded frame: message discriminant plus payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant, interpreted by the protocol layer.
    pub msg_type: u16,
    /// Opaque payload (typically a [`crate::wire`]-encoded body).
    pub payload: Vec<u8>,
}

/// Everything that can go wrong reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error (includes read timeouts, which
    /// surface as `WouldBlock`/`TimedOut` io errors).
    Io(io::Error),
    /// Clean EOF at a frame boundary: the peer hung up between frames.
    Closed,
    /// EOF in the middle of a header or payload.
    Truncated,
    /// First four bytes were not [`MAGIC`].
    BadMagic,
    /// Header carried this version instead of [`VERSION`].
    BadVersion(u16),
    /// Header declared this payload length, above [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// Payload arrived but its FNV-1a checksum did not match.
    BadChecksum,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds cap"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// True when the error is a read timeout rather than a dead peer —
    /// callers in idle-poll loops retry on this.
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut)
    }
}

/// FNV-1a 64-bit over `bytes` — the same hash family the shuffle
/// partitioner uses; cheap, dependency-free, good torn-write detection.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encode a frame into a fresh buffer (header + payload).
pub fn encode_frame(msg_type: u16, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&msg_type.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Write one frame; returns the bytes put on the wire. Bumps the
/// `dasc_net_frames_sent_total` / `dasc_net_bytes_sent_total` counters.
pub fn write_frame(w: &mut impl Write, msg_type: u16, payload: &[u8]) -> io::Result<usize> {
    assert!(
        payload.len() as u64 <= u64::from(MAX_FRAME_LEN),
        "frame payload exceeds MAX_FRAME_LEN"
    );
    let buf = encode_frame(msg_type, payload);
    w.write_all(&buf)?;
    w.flush()?;
    let reg = dasc_obs::global();
    reg.inc("dasc_net_frames_sent_total", 1);
    reg.inc("dasc_net_bytes_sent_total", buf.len() as u64);
    Ok(buf.len())
}

/// Read one frame. Distinguishes a clean hangup at a frame boundary
/// ([`FrameError::Closed`]) from mid-frame truncation by probing the
/// first header byte separately. Decode failures bump
/// `dasc_net_decode_errors_total`.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let result = read_frame_inner(r);
    let reg = dasc_obs::global();
    match &result {
        Ok(f) => {
            reg.inc("dasc_net_frames_received_total", 1);
            reg.inc(
                "dasc_net_bytes_received_total",
                (HEADER_LEN + f.payload.len()) as u64,
            );
        }
        Err(FrameError::Closed) | Err(FrameError::Io(_)) => {}
        Err(_) => reg.inc("dasc_net_decode_errors_total", 1),
    }
    result
}

fn read_frame_inner(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // Probe the first byte on its own: EOF here is a clean hangup, EOF
    // after it is a torn frame.
    loop {
        match r.read(&mut header[..1]) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(1) => break,
            Ok(_) => unreachable!("read of 1 byte returned more"),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    read_exact_or_truncated(r, &mut header[1..])?;

    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let msg_type = u16::from_le_bytes([header[6], header[7]]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let checksum = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));

    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut payload)?;
    if fnv1a64(&payload) != checksum {
        return Err(FrameError::BadChecksum);
    }
    Ok(Frame { msg_type, payload })
}

/// `read_exact` that maps EOF to [`FrameError::Truncated`] — once the
/// first header byte has arrived, anything short is a torn frame.
fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_basic() {
        let bytes = encode_frame(7, b"hello");
        let f = read_frame(&mut Cursor::new(&bytes)).expect("decode");
        assert_eq!(f.msg_type, 7);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn roundtrip_empty_payload() {
        let bytes = encode_frame(0, b"");
        let f = read_frame(&mut Cursor::new(&bytes)).expect("decode");
        assert_eq!(f.msg_type, 0);
        assert!(f.payload.is_empty());
    }

    #[test]
    fn eof_at_boundary_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut Cursor::new(empty)),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn eof_mid_header_is_truncated() {
        let bytes = encode_frame(3, b"abc");
        for cut in 1..HEADER_LEN {
            let err = read_frame(&mut Cursor::new(&bytes[..cut])).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut={cut}: {err}");
        }
    }

    #[test]
    fn eof_mid_payload_is_truncated() {
        let bytes = encode_frame(3, b"abcdef");
        for cut in HEADER_LEN..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut])).unwrap_err();
            assert!(matches!(err, FrameError::Truncated), "cut={cut}: {err}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_frame(3, b"abc");
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_frame(3, b"abc");
        bytes[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::BadVersion(9))
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut bytes = encode_frame(3, b"");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut bytes = encode_frame(3, b"abcdef");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::BadChecksum)
        ));
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn back_to_back_frames_stream() {
        let mut bytes = encode_frame(1, b"one");
        bytes.extend_from_slice(&encode_frame(2, b"two"));
        let mut cur = Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cur).unwrap().payload, b"one");
        assert_eq!(read_frame(&mut cur).unwrap().payload, b"two");
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }
}
