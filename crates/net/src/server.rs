//! Accept-loop frame server dispatching to a [`Service`].
//!
//! One acceptor thread plus one thread per live connection (the dist
//! runtime has a handful of long-lived worker connections, not a
//! thundering herd). Each frame is handled inside the `dasc-pool`
//! work-stealing pool via [`dasc_pool::in_pool`], so a compute-heavy
//! handler (e.g. a reduce task) parallelizes across the machine while
//! the connection threads stay cheap blocking loops.
//!
//! Graceful shutdown mirrors `dasc-serve`: set the flag, self-connect
//! to unblock `accept`, join everything. Connection threads notice the
//! flag at their next read timeout.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::frame::{read_frame, write_frame};

/// Identifies one accepted connection for a [`Service`]'s lifetime
/// callbacks. Monotonically increasing per server, never reused.
pub type ConnId = u64;

/// Per-frame protocol logic plugged into a [`Server`].
pub trait Service: Send + Sync + 'static {
    /// Handle one request frame; return `Some((msg_type, payload))` to
    /// reply, or `None` to close the connection without replying (used
    /// by fault-injection harnesses to simulate a dying peer).
    fn handle(&self, conn: ConnId, msg_type: u16, payload: &[u8]) -> Option<(u16, Vec<u8>)>;

    /// Called exactly once when a connection ends (hangup, protocol
    /// error, or shutdown). The coordinator uses this to re-queue a
    /// dead worker's in-flight tasks promptly.
    fn on_disconnect(&self, _conn: ConnId) {}
}

/// Blanket impl so simple servers can pass a closure.
impl<F> Service for F
where
    F: Fn(ConnId, u16, &[u8]) -> Option<(u16, Vec<u8>)> + Send + Sync + 'static,
{
    fn handle(&self, conn: ConnId, msg_type: u16, payload: &[u8]) -> Option<(u16, Vec<u8>)> {
        self(conn, msg_type, payload)
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Idle read timeout per connection; bounds shutdown latency, since
    /// parked connection threads re-check the flag on timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// A frame server ready to bind.
pub struct Server<S: Service> {
    service: Arc<S>,
    config: ServerConfig,
}

struct Shared<S: Service> {
    service: Arc<S>,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<Vec<JoinHandle<()>>>,
    read_timeout: Duration,
}

/// A running server: bound address + graceful-shutdown control.
pub struct ServerHandle<S: Service> {
    addr: SocketAddr,
    shared: Arc<Shared<S>>,
    acceptor: Option<JoinHandle<()>>,
}

impl<S: Service> Server<S> {
    /// Wrap a service with the given tuning.
    pub fn new(service: S, config: ServerConfig) -> Self {
        Self {
            service: Arc::new(service),
            config,
        }
    }

    /// Bind `addr` (port 0 picks a free port), spawn the acceptor, and
    /// return a handle. Serving begins immediately.
    pub fn start(self, addr: &str) -> io::Result<ServerHandle<S>> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: self.service,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            conns: Mutex::new(Vec::new()),
            read_timeout: self.config.read_timeout,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                    let worker = {
                        let shared = Arc::clone(&shared);
                        thread::spawn(move || serve_connection(&shared, stream, conn))
                    };
                    shared.conns.lock().expect("conns lock").push(worker);
                }
            })
        };

        Ok(ServerHandle {
            addr: local,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

impl<S: Service> ServerHandle<S> {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind this server.
    pub fn service(&self) -> &S {
        &self.shared.service
    }

    /// Block until the acceptor exits on its own (fatal listener error
    /// or [`ServerHandle::shutdown`] from another thread won't happen —
    /// this is for run-until-killed daemons like the CLI coordinator).
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.join_conns();
    }

    /// Stop accepting, let in-flight handlers finish, join all threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept with a self-connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.join_conns();
    }

    fn join_conns(&self) {
        loop {
            let Some(h) = self.shared.conns.lock().expect("conns lock").pop() else {
                break;
            };
            let _ = h.join();
        }
    }
}

/// Serve one connection until hangup, protocol error, or shutdown.
fn serve_connection<S: Service>(shared: &Shared<S>, stream: TcpStream, conn: ConnId) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let mut stream = stream;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(e) if e.is_timeout() => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            // Clean hangup, torn frame, or protocol garbage: the
            // counters already recorded decode errors; just drop.
            Err(_) => break,
        };
        let service = &shared.service;
        let reply = dasc_pool::in_pool(|| service.handle(conn, frame.msg_type, &frame.payload));
        match reply {
            Some((msg_type, payload)) => {
                if write_frame(&mut stream, msg_type, &payload).is_err() {
                    break;
                }
            }
            None => break,
        }
    }
    shared.service.on_disconnect(conn);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientConfig};
    use std::sync::atomic::AtomicUsize;

    fn quick_client(addr: SocketAddr) -> Client {
        Client::new(
            addr.to_string(),
            ClientConfig {
                connect_timeout: Duration::from_millis(500),
                read_timeout: Duration::from_secs(2),
                write_timeout: Duration::from_secs(2),
                backoff_base: Duration::from_millis(5),
                backoff_max: Duration::from_millis(20),
                max_connect_attempts: 3,
            },
        )
    }

    #[test]
    fn serves_concurrent_clients() {
        let hits = Arc::new(AtomicUsize::new(0));
        let handle = {
            let hits = Arc::clone(&hits);
            Server::new(
                move |_conn: ConnId, msg_type: u16, payload: &[u8]| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    let mut reply = payload.to_vec();
                    reply.reverse();
                    Some((msg_type + 1, reply))
                },
                ServerConfig::default(),
            )
            .start("127.0.0.1:0")
            .expect("start")
        };
        let addr = handle.addr();
        thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    let mut client = quick_client(addr);
                    for i in 0..5u16 {
                        let reply = client.call(i, b"abc").expect("call");
                        assert_eq!(reply.msg_type, i + 1, "thread {t}");
                        assert_eq!(reply.payload, b"cba");
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 20);
        handle.shutdown();
    }

    #[test]
    fn disconnect_callback_fires_once_per_connection() {
        struct Tracking {
            drops: AtomicUsize,
        }
        impl Service for Tracking {
            fn handle(&self, _c: ConnId, t: u16, p: &[u8]) -> Option<(u16, Vec<u8>)> {
                Some((t, p.to_vec()))
            }
            fn on_disconnect(&self, _c: ConnId) {
                self.drops.fetch_add(1, Ordering::Relaxed);
            }
        }
        let handle = Server::new(
            Tracking {
                drops: AtomicUsize::new(0),
            },
            ServerConfig::default(),
        )
        .start("127.0.0.1:0")
        .expect("start");
        let addr = handle.addr();
        for _ in 0..3 {
            let mut c = quick_client(addr);
            c.call(1, b"x").expect("call");
            c.disconnect();
        }
        // Hangups are noticed on the connection threads' next read.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.service().drops.load(Ordering::Relaxed) < 3
            && std::time::Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(handle.service().drops.load(Ordering::Relaxed), 3);
        handle.shutdown();
    }

    #[test]
    fn none_reply_drops_the_connection() {
        let handle = Server::new(
            |_c: ConnId, t: u16, _p: &[u8]| if t == 0 { None } else { Some((t, Vec::new())) },
            ServerConfig::default(),
        )
        .start("127.0.0.1:0")
        .expect("start");
        let mut client = quick_client(handle.addr());
        assert!(client.call(1, b"ok").is_ok());
        // msg_type 0 → handler returns None → peer closes instead of
        // replying; the client observes a hangup/timeout error.
        assert!(client.call(0, b"die").is_err());
        // A fresh call redials fine.
        assert!(client.call(2, b"again").is_ok());
        handle.shutdown();
    }

    #[test]
    fn garbage_bytes_do_not_kill_the_server() {
        let handle = Server::new(
            |_c: ConnId, t: u16, p: &[u8]| Some((t, p.to_vec())),
            ServerConfig::default(),
        )
        .start("127.0.0.1:0")
        .expect("start");
        {
            use std::io::Write;
            let mut s = TcpStream::connect(handle.addr()).expect("connect");
            s.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("garbage");
        }
        let mut client = quick_client(handle.addr());
        assert_eq!(
            client.call(5, b"still up").expect("call").payload,
            b"still up"
        );
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_quickly() {
        let handle = Server::new(
            |_c: ConnId, t: u16, p: &[u8]| Some((t, p.to_vec())),
            ServerConfig::default(),
        )
        .start("127.0.0.1:0")
        .expect("start");
        // Park an idle connection to exercise the timeout wake-up path.
        let mut idle = quick_client(handle.addr());
        idle.call(1, b"x").expect("call");
        let begin = std::time::Instant::now();
        handle.shutdown();
        assert!(
            begin.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}",
            begin.elapsed()
        );
    }
}
