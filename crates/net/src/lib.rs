//! Framed TCP transport for the DASC distributed runtime.
//!
//! The paper's DASC runs on Hadoop, whose daemons speak a simple
//! length-prefixed RPC over TCP. This crate is the workspace's
//! equivalent substrate, std-only by design:
//!
//! * [`frame`] — the on-wire unit: a 20-byte header (magic, version,
//!   message type, payload length, FNV-1a checksum) followed by an
//!   opaque payload. The decoder rejects truncation, bad magic, version
//!   skew, oversized frames and checksum mismatches without panicking.
//! * [`wire`] — [`Wire`], a tiny little-endian encode/decode trait for
//!   message bodies, following the binary conventions of
//!   `dasc-serve`'s model-artifact codec (explicit lengths, caps on
//!   every length read, no trailing bytes).
//! * [`client`] — a blocking [`Client`] with connect/read/write
//!   timeouts and bounded exponential-backoff reconnection.
//! * [`server`] — an accept-loop [`Server`] that runs a [`Service`]
//!   callback per frame; handlers execute inside the `dasc-pool`
//!   work-stealing pool so compute-heavy RPCs parallelize.
//!
//! Every frame sent/received bumps `dasc_net_*` counters in the global
//! `dasc-obs` registry; RPC latencies land in the
//! `dasc_net_rpc_duration_us` histogram.

pub mod client;
pub mod frame;
pub mod server;
pub mod wire;

pub use client::{Client, ClientConfig};
pub use frame::{read_frame, write_frame, Frame, FrameError, HEADER_LEN, MAX_FRAME_LEN, VERSION};
pub use server::{ConnId, Server, ServerConfig, ServerHandle, Service};
pub use wire::{decode_from_slice, encode_to_vec, Wire, WireError, WireReader, WireWriter};
