//! [`Wire`]: little-endian binary encode/decode for message bodies.
//!
//! Follows the conventions of `dasc-serve`'s model-artifact codec:
//! every integer little-endian, every sequence prefixed by an explicit
//! length, every length capped before allocation, and a decode is only
//! valid if it consumes the payload exactly (no trailing bytes). Unlike
//! the artifact codec this one works on in-memory buffers — frames are
//! read whole off the socket by [`crate::frame`], so decoding never
//! touches I/O.

use std::fmt;

/// Cap on a single string/byte field (1 MiB).
const MAX_STR_LEN: u32 = 1 << 20;
/// Cap on a single sequence's element count (64 Mi elements).
const MAX_SEQ_LEN: u32 = 1 << 26;
/// Cap on a single blob field (64 MiB) — bulk data transfers such as
/// dataset-shard replies, which legitimately exceed [`MAX_STR_LEN`].
const MAX_BLOB_LEN: u32 = 1 << 26;

/// Decode failures. All are terminal for the message — the transport
/// layer discards the frame and reports a protocol error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of payload mid-field.
    Truncated,
    /// Payload bytes left over after the message decoded.
    Trailing(usize),
    /// A length prefix exceeded its cap.
    TooLong(u32),
    /// A field held an out-of-domain value (bad enum tag, bad bool,
    /// invalid UTF-8, …).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            WireError::TooLong(n) => write!(f, "length {n} exceeds cap"),
            WireError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Growable little-endian output buffer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as u64 so 32- and 64-bit peers agree.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        assert!(s.len() as u64 <= u64::from(MAX_STR_LEN), "string too long");
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        assert!(b.len() as u64 <= u64::from(MAX_STR_LEN), "bytes too long");
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed bulk payload, capped at 64 MiB instead of the
    /// 1 MiB field cap (shard bytes and similar data-plane transfers).
    pub fn put_blob(&mut self, b: &[u8]) {
        assert!(b.len() as u64 <= u64::from(MAX_BLOB_LEN), "blob too long");
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Slice cursor over a payload; every read is bounds-checked.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// `usize` travels as u64; rejects values the host can't represent.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Invalid("usize overflow"))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool")),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_STR_LEN {
            return Err(WireError::TooLong(len));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("utf-8"))
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()?;
        if len > MAX_STR_LEN {
            return Err(WireError::TooLong(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Length-prefixed bulk payload (64 MiB cap; see
    /// [`WireWriter::put_blob`]).
    pub fn blob(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()?;
        if len > MAX_BLOB_LEN {
            return Err(WireError::TooLong(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Sequence length prefix, validated against the element cap.
    pub fn seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.u32()?;
        if len > MAX_SEQ_LEN {
            return Err(WireError::TooLong(len));
        }
        Ok(len as usize)
    }

    /// Fail unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(self.remaining()))
        }
    }
}

/// A type with a canonical binary wire form.
pub trait Wire: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);
    /// Decode one value, advancing `r` past exactly its bytes.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Encode a value into a fresh payload buffer.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = WireWriter::new();
    value.encode(&mut w);
    w.into_vec()
}

/// Decode a value from a full payload, rejecting trailing bytes.
pub fn decode_from_slice<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

macro_rules! impl_wire_scalar {
    ($($ty:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Wire for $ty {
            fn encode(&self, w: &mut WireWriter) {
                w.$put(*self);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                r.$get()
            }
        }
    )*};
}

impl_wire_scalar! {
    u8 => put_u8 / u8,
    u16 => put_u16 / u16,
    u32 => put_u32 / u32,
    u64 => put_u64 / u64,
    usize => put_usize / usize,
    f64 => put_f64 / f64,
    bool => put_bool / bool,
}

impl Wire for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.str()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        assert!(
            self.len() as u64 <= u64::from(MAX_SEQ_LEN),
            "sequence too long"
        );
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.seq_len()?;
        // Reserve against what could actually be present, not the
        // declared length — a lying prefix must not allocate 64 Mi slots
        // before Truncated surfaces.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_from_slice::<T>(&bytes).expect("decode"), v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xbeefu16);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-0.0f64);
        roundtrip(f64::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
    }

    #[test]
    fn nested_sequences_roundtrip() {
        roundtrip(vec![vec![1u32, 2, 3], vec![], vec![9]]);
        roundtrip(vec![(1usize, String::from("a")), (2, String::from("b"))]);
        roundtrip(vec![(1u64, 2usize, vec![0.5f64, -1.0])]);
    }

    #[test]
    fn nan_payload_survives_bitwise() {
        let bytes = encode_to_vec(&f64::NAN);
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        assert_eq!(
            decode_from_slice::<u32>(&bytes),
            Err(WireError::Trailing(1))
        );
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = encode_to_vec(&vec![(1u64, String::from("abc")), (2, String::from("d"))]);
        for cut in 0..bytes.len() {
            let err = decode_from_slice::<Vec<(u64, String)>>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn lying_length_prefix_does_not_overallocate() {
        // Sequence claiming u32::MAX-ish elements with a 4-byte body.
        let mut bytes = (MAX_SEQ_LEN).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let err = decode_from_slice::<Vec<u64>>(&bytes).unwrap_err();
        assert_eq!(err, WireError::Truncated);

        let bytes = (MAX_SEQ_LEN + 1).to_le_bytes().to_vec();
        let err = decode_from_slice::<Vec<u64>>(&bytes).unwrap_err();
        assert_eq!(err, WireError::TooLong(MAX_SEQ_LEN + 1));
    }

    #[test]
    fn blobs_roundtrip_past_the_field_cap() {
        // Larger than MAX_STR_LEN, so put_bytes would assert — the
        // blob codec is the only legal path for payloads this size.
        let payload = vec![0xA5u8; (MAX_STR_LEN as usize) + 17];
        let mut w = WireWriter::new();
        w.put_blob(&payload);
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.blob().expect("blob"), payload);
        r.finish().expect("consumed exactly");
    }

    #[test]
    fn blob_cap_and_truncation_enforced() {
        let mut bytes = (MAX_BLOB_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 4]);
        assert_eq!(
            WireReader::new(&bytes).blob(),
            Err(WireError::TooLong(MAX_BLOB_LEN + 1))
        );

        let mut w = WireWriter::new();
        w.put_blob(&[1, 2, 3, 4, 5]);
        let bytes = w.into_vec();
        for cut in 0..bytes.len() {
            assert_eq!(
                WireReader::new(&bytes[..cut]).blob(),
                Err(WireError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_rejected() {
        assert_eq!(
            decode_from_slice::<bool>(&[2]),
            Err(WireError::Invalid("bool"))
        );
        let mut bytes = 2u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_from_slice::<String>(&bytes),
            Err(WireError::Invalid("utf-8"))
        );
    }
}
