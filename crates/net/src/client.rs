//! Blocking request/reply client with bounded reconnect backoff.

use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::frame::{read_frame, write_frame, Frame, FrameError};

/// Client tuning. Defaults mirror `ClusterConfig::emr_default()`'s RPC
/// knobs (the dist runtime constructs this from its `ClusterConfig`, so
/// the values live in one place; these are the same numbers for
/// standalone use).
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (bounds how long a call waits for a reply).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// First delay of the exponential reconnect backoff.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Connection attempts before giving up.
    pub max_connect_attempts: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            max_connect_attempts: 8,
        }
    }
}

/// A blocking framed-TCP client. One outstanding request at a time:
/// [`Client::call`] writes a frame and reads the single reply frame.
///
/// The connection is lazy and sticky — established on first use, kept
/// across calls, re-established (with bounded exponential backoff) when
/// a send fails. A failure *after* the request was sent is returned to
/// the caller rather than retried: the transport can't know whether the
/// peer acted on the request, so retry policy belongs to the protocol
/// layer (`dasc-dist` re-queues tasks; it never blind-retries RPCs).
pub struct Client {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
}

impl Client {
    /// Client for `addr` (e.g. `"127.0.0.1:7000"`). Does not connect.
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> Self {
        Self {
            addr: addr.into(),
            config,
            stream: None,
        }
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// True when a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Drop the current connection; the next call reconnects.
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Ensure a live connection, dialing with exponential backoff up to
    /// `max_connect_attempts`.
    pub fn connect(&mut self) -> Result<(), FrameError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut delay = self.config.backoff_base;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.config.max_connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(self.config.backoff_max);
                dasc_obs::global().inc("dasc_net_reconnects_total", 1);
            }
            match self.dial() {
                Ok(stream) => {
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(FrameError::Io(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no connect attempts")
        })))
    }

    fn dial(&self) -> io::Result<TcpStream> {
        // Resolve then dial each candidate with the connect timeout.
        let addrs: Vec<_> = std::net::ToSocketAddrs::to_socket_addrs(&self.addr)?.collect();
        let mut last = io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing");
        for a in addrs {
            match TcpStream::connect_timeout(&a, self.config.connect_timeout) {
                Ok(s) => {
                    s.set_nodelay(true)?;
                    s.set_read_timeout(Some(self.config.read_timeout))?;
                    s.set_write_timeout(Some(self.config.write_timeout))?;
                    return Ok(s);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One request/reply round trip. Reconnects and resends once if the
    /// *send* fails (nothing reached the peer); any failure after the
    /// request is on the wire surfaces to the caller.
    pub fn call(&mut self, msg_type: u16, payload: &[u8]) -> Result<Frame, FrameError> {
        let start = Instant::now();
        self.connect()?;

        if let Err(send_err) = self.send(msg_type, payload) {
            // The request never made it out; safe to redial and retry.
            self.stream = None;
            self.connect()?;
            self.send(msg_type, payload).map_err(|_| send_err)?;
        }

        let reply = match read_frame(self.stream.as_mut().expect("connected")) {
            Ok(f) => Ok(f),
            Err(e) => {
                // Reply never arrived (timeout, hangup, torn frame):
                // poison the connection so the next call starts clean.
                self.stream = None;
                Err(e)
            }
        };

        let reg = dasc_obs::global();
        reg.inc("dasc_net_rpcs_total", 1);
        reg.observe(
            "dasc_net_rpc_duration_us",
            start.elapsed().as_micros() as u64,
        );
        reply
    }

    fn send(&mut self, msg_type: u16, payload: &[u8]) -> Result<(), FrameError> {
        let stream = self.stream.as_mut().expect("connected");
        write_frame(stream, msg_type, payload)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn quick_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(20),
            max_connect_attempts: 3,
        }
    }

    /// One-shot echo server: accepts `n` connections, echoes frames
    /// until each closes.
    fn echo_server(n: usize) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || {
            for _ in 0..n {
                let (mut s, _) = listener.accept().expect("accept");
                while let Ok(f) = read_frame(&mut s) {
                    write_frame(&mut s, f.msg_type, &f.payload).expect("echo");
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn call_roundtrips() {
        let (addr, server) = echo_server(1);
        let mut client = Client::new(&addr, quick_config());
        for i in 0..3u16 {
            let reply = client.call(i, format!("req-{i}").as_bytes()).expect("call");
            assert_eq!(reply.msg_type, i);
            assert_eq!(reply.payload, format!("req-{i}").as_bytes());
        }
        drop(client);
        server.join().expect("server");
    }

    #[test]
    fn connect_to_dead_addr_fails_after_bounded_attempts() {
        // Bind then drop a listener to get a port nothing listens on.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let started = Instant::now();
        let mut client = Client::new(addr, quick_config());
        assert!(client.call(1, b"x").is_err());
        // 3 attempts with 5+10ms backoff — well under a second.
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn reconnects_after_peer_hangup() {
        let (addr, server) = echo_server(2);
        let mut client = Client::new(&addr, quick_config());
        assert_eq!(client.call(1, b"first").expect("call 1").payload, b"first");
        // Server drops the connection when we do nothing... force the
        // issue: poison our side, then call again — the client must
        // redial transparently.
        client.disconnect();
        assert_eq!(
            client.call(2, b"second").expect("call 2").payload,
            b"second"
        );
        drop(client);
        server.join().expect("server");
    }

    #[test]
    fn reply_timeout_surfaces_and_poisons_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            // Accept, read the request, never reply; then serve one
            // connection properly.
            let (mut s, _) = listener.accept().expect("accept");
            let _ = read_frame(&mut s);
            std::thread::sleep(Duration::from_millis(800));
            drop(s);
            let (mut s, _) = listener.accept().expect("accept 2");
            let f = read_frame(&mut s).expect("req");
            write_frame(&mut s, f.msg_type, &f.payload).expect("reply");
        });
        let mut client = Client::new(&addr, quick_config());
        let err = client.call(1, b"no reply").unwrap_err();
        assert!(err.is_timeout(), "{err}");
        assert!(!client.is_connected());
        // Next call redials and succeeds.
        assert_eq!(client.call(2, b"ok").expect("call").payload, b"ok");
        server.join().expect("server");
    }

    #[test]
    fn garbage_reply_is_a_decode_error_not_a_panic() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let _ = read_frame(&mut s);
            s.write_all(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")
                .expect("garbage");
        });
        let mut client = Client::new(&addr, quick_config());
        let err = client.call(1, b"hi").unwrap_err();
        assert!(matches!(err, FrameError::BadMagic), "{err}");
        server.join().expect("server");
    }
}
