//! Property tests for the frame codec: arbitrary payloads round-trip
//! (including through pathologically fragmented reads), and corruption
//! anywhere in the deterministic header/payload regions is rejected
//! without panicking.

use std::io::{Cursor, Read};

use dasc_net::frame::{encode_frame, fnv1a64, read_frame};
use dasc_net::{Frame, FrameError};
use proptest::prelude::*;

/// A reader that yields at most `chunk` bytes per `read` call — the
/// worst-case fragmentation a TCP stream can legally deliver.
struct Dribble<R> {
    inner: R,
    chunk: usize,
}

impl<R: Read> Read for Dribble<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk.max(1));
        self.inner.read(&mut buf[..n])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_payload_roundtrips(
        msg_type in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let bytes = encode_frame(msg_type, &payload);
        let frame = read_frame(&mut Cursor::new(&bytes)).expect("decode");
        prop_assert_eq!(frame, Frame { msg_type, payload });
    }

    #[test]
    fn split_reads_reassemble_identically(
        msg_type in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..8,
    ) {
        let bytes = encode_frame(msg_type, &payload);
        let mut reader = Dribble { inner: Cursor::new(&bytes), chunk };
        let frame = read_frame(&mut reader).expect("decode fragmented");
        prop_assert_eq!(frame, Frame { msg_type, payload });
    }

    #[test]
    fn truncation_at_any_point_is_rejected(
        payload in prop::collection::vec(any::<u8>(), 0..256),
        cut_seed in any::<u64>(),
    ) {
        let bytes = encode_frame(1, &payload);
        let cut = (cut_seed as usize) % bytes.len(); // < len: always truncating
        let result = read_frame(&mut Cursor::new(&bytes[..cut]));
        match result {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0),
            Err(FrameError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "cut={} gave {:?}", cut, other.map(|f| f.msg_type)),
        }
    }

    #[test]
    fn corrupting_checked_bytes_is_rejected(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(1, &payload);
        // Checked regions: magic (0..4), version (4..6), checksum
        // (12..20), payload (20..). msg_type (6..8) is opaque to the
        // codec and length corruption (8..12) degrades to Truncated or
        // BadChecksum depending on direction — exercised above.
        let checked: Vec<usize> = (0..bytes.len())
            .filter(|&i| !(6..12).contains(&i))
            .collect();
        let pos = checked[(pos_seed as usize) % checked.len()];
        bytes[pos] ^= flip;
        let result = read_frame(&mut Cursor::new(&bytes));
        match (pos, result) {
            (0..=3, Err(FrameError::BadMagic)) => {}
            (4..=5, Err(FrameError::BadVersion(_))) => {}
            (_, Err(FrameError::BadChecksum)) => prop_assert!(pos >= 12),
            (p, other) => prop_assert!(
                false,
                "flip at {} gave {:?}",
                p,
                other.map(|f| f.msg_type)
            ),
        }
    }

    #[test]
    fn fnv_is_sensitive_to_any_single_bit(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut corrupted = payload.clone();
        let pos = (pos_seed as usize) % corrupted.len();
        corrupted[pos] ^= 1 << bit;
        prop_assert_ne!(fnv1a64(&payload), fnv1a64(&corrupted));
    }
}
