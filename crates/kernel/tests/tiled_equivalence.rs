//! Property tests: the tiled (GEMM micro-kernel) Gram path must agree
//! with the scalar reference entrywise, across odd sizes, degenerate
//! buckets, and thread counts.
//!
//! Tolerance note: the tiled path computes `‖x−y‖²` by norm expansion
//! (`‖x‖² + ‖y‖² − 2⟨x,y⟩`), which cancels where the scalar path
//! subtracts coordinate-wise. With coordinates in `[−2, 2]` and d ≤ 6
//! the raw values are O(100), so a few ULPs of cancellation stay well
//! under the 1e-12 absolute bound asserted here. The bound is *not*
//! scale-free — callers with huge coordinates should normalize first
//! (see DESIGN.md, "Micro-kernel layer").

use dasc_kernel::{full_gram_flat_scalar, full_gram_flat_tiled, Kernel};
use dasc_linalg::{gemm, vector, FlatPoints};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const TOL: f64 = 1e-12;

/// Build a `FlatPoints` from a flat coordinate pool, truncated to a
/// whole number of rows.
fn points_from(data: &[f64], dim: usize) -> FlatPoints {
    let n = data.len() / dim;
    FlatPoints::from_flat(data[..n * dim].to_vec(), dim)
}

/// Reference pairwise squared distances: one scalar `sq_dist` per pair.
fn scalar_sq_dists(a: &FlatPoints, b: &FlatPoints) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for i in 0..a.len() {
        for j in 0..b.len() {
            out.push(vector::sq_dist(a.row(i), b.row(j)));
        }
    }
    out
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "shape mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel::gaussian(0.8),
        Kernel::Linear,
        Kernel::Polynomial { degree: 2, c: 0.5 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_pairwise_sq_dists_match_scalar(
        a_data in prop::collection::vec(-2.0f64..2.0, 0..420),
        b_data in prop::collection::vec(-2.0f64..2.0, 0..420),
        dim in 1usize..7,
    ) {
        let a = points_from(&a_data, dim);
        let b = points_from(&b_data, dim);
        let expected = scalar_sq_dists(&a, &b);
        for threads in THREAD_COUNTS {
            let got = dasc_pool::Pool::new(threads)
                .install(|| gemm::pairwise_sq_dists(&a, &b));
            let diff = max_abs_diff(&expected, &got);
            prop_assert!(diff <= TOL, "max diff {diff:e} at {threads} threads");
            // Norm expansion can cancel below zero; the driver clamps.
            prop_assert!(got.iter().all(|&d| d >= 0.0), "negative distance survived clamp");
        }
    }

    #[test]
    fn tiled_gram_matches_scalar(
        data in prop::collection::vec(-2.0f64..2.0, 0..600),
        dim in 1usize..7,
    ) {
        let pts = points_from(&data, dim);
        for kernel in kernels() {
            let scalar = full_gram_flat_scalar(&pts, &kernel);
            for threads in THREAD_COUNTS {
                let tiled = dasc_pool::Pool::new(threads)
                    .install(|| full_gram_flat_tiled(&pts, &kernel));
                let diff = max_abs_diff(scalar.as_slice(), tiled.as_slice());
                prop_assert!(
                    diff <= TOL,
                    "{kernel:?}: max diff {diff:e} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tiled_gram_bitwise_stable_across_threads(
        data in prop::collection::vec(-2.0f64..2.0, 64..420),
        dim in 1usize..5,
    ) {
        // Determinism is stronger than the tolerance bound: the tiled
        // path must be *bit-identical* at every thread count, because
        // each output entry is owned by exactly one chunk and computed
        // by the same instruction sequence regardless of schedule.
        let pts = points_from(&data, dim);
        let kernel = Kernel::gaussian(0.9);
        let expected = dasc_pool::Pool::new(1).install(|| full_gram_flat_tiled(&pts, &kernel));
        for threads in [2, 8] {
            let got = dasc_pool::Pool::new(threads)
                .install(|| full_gram_flat_tiled(&pts, &kernel));
            prop_assert!(
                expected.as_slice() == got.as_slice(),
                "tiled Gram not bit-identical at {threads} threads"
            );
        }
    }
}

#[test]
fn degenerate_buckets_empty_and_single_point() {
    // Empty and 1-point buckets are what LSH hands the Gram layer at
    // high bit counts; both paths must agree there too.
    for dim in [1, 3, 6] {
        let empty = FlatPoints::from_flat(Vec::new(), dim);
        let single = FlatPoints::from_flat(vec![0.5; dim], dim);
        for kernel in kernels() {
            let (es, et) = (
                full_gram_flat_scalar(&empty, &kernel),
                full_gram_flat_tiled(&empty, &kernel),
            );
            assert_eq!(es.nrows(), 0);
            assert_eq!(et.nrows(), 0);
            let (ss, st) = (
                full_gram_flat_scalar(&single, &kernel),
                full_gram_flat_tiled(&single, &kernel),
            );
            assert_eq!(ss.as_slice(), st.as_slice(), "{kernel:?} single-point");
        }
        assert!(gemm::pairwise_sq_dists(&empty, &single).is_empty());
        assert_eq!(gemm::pairwise_sq_dists(&single, &single), vec![0.0]);
    }
}

#[test]
fn odd_sizes_straddling_tile_boundaries() {
    // Sizes chosen to hit every remainder path: below one dot4 group,
    // exactly one panel, one past a panel, and past the B-tile width.
    for n in [1, 3, 5, 63, 64, 65, 127, 129] {
        let pts = FlatPoints::from_flat(
            (0..n * 3)
                .map(|i| ((i * 37 % 101) as f64) * 0.02 - 1.0)
                .collect(),
            3,
        );
        let kernel = Kernel::gaussian(0.7);
        let scalar = full_gram_flat_scalar(&pts, &kernel);
        let tiled = full_gram_flat_tiled(&pts, &kernel);
        let diff = max_abs_diff(scalar.as_slice(), tiled.as_slice());
        assert!(diff <= TOL, "n={n}: max diff {diff:e}");
    }
}
