//! Kernel functions.
//!
//! Eq. 1 of the paper is the Gaussian (RBF) kernel; the others make the
//! approximation layer generic over the downstream algorithm.

use dasc_linalg::vector;

/// A positive-semidefinite kernel function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Kernel {
    /// Gaussian RBF `exp(−‖x−y‖² / 2σ²)` (Eq. 1). `sigma` is the kernel
    /// bandwidth controlling how rapidly similarity decays.
    Gaussian {
        /// Kernel bandwidth σ.
        sigma: f64,
    },
    /// Linear kernel `⟨x, y⟩`.
    Linear,
    /// Polynomial kernel `(⟨x, y⟩ + c)^degree`.
    Polynomial {
        /// Polynomial degree.
        degree: u32,
        /// Additive constant.
        c: f64,
    },
    /// Laplacian kernel `exp(−γ ‖x−y‖₁)`.
    Laplacian {
        /// Decay rate γ.
        gamma: f64,
    },
}

/// The pairwise "raw" quantity a kernel is a pointwise function of.
///
/// This is what lets the Gram layer batch kernel evaluation: a whole
/// tile of raw values is produced first (by a micro-kernel where the
/// basis allows it), then [`Kernel::map_raw`] finishes the tile in one
/// pass — instead of a full `Kernel::eval` (with its per-pair dimension
/// branch) per entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileBasis {
    /// Squared Euclidean distance `‖x−y‖²` — expressible as
    /// `‖x‖² + ‖y‖² − 2⟨x,y⟩`, so tiles reduce to a dense matmul
    /// (Gaussian).
    SqDist,
    /// Inner product `⟨x,y⟩` — tiles are a dense matmul directly
    /// (linear, polynomial).
    Dot,
    /// L1 distance `‖x−y‖₁` — no bilinear form exists, so tiles must be
    /// filled per entry; only the final map batches (Laplacian).
    L1,
}

impl Kernel {
    /// The paper's default kernel: Gaussian with bandwidth σ.
    ///
    /// # Panics
    /// Panics if `sigma <= 0`.
    pub fn gaussian(sigma: f64) -> Self {
        assert!(sigma > 0.0, "Gaussian kernel needs sigma > 0");
        Kernel::Gaussian { sigma }
    }

    /// Evaluate the kernel on two points.
    ///
    /// # Panics
    /// Panics if the points differ in dimension.
    #[inline]
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "kernel eval: dimension mismatch");
        self.eval_prevalidated(x, y)
    }

    /// [`Kernel::eval`] without the per-pair dimension check — the batch
    /// entry point for Gram/tile loops that have already validated the
    /// whole matrix once (e.g. via `FlatPoints`' uniform stride).
    ///
    /// Release builds skip the length branch entirely; debug builds keep
    /// it as a `debug_assert!`.
    #[inline]
    pub fn eval_prevalidated(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len(), "kernel eval: dimension mismatch");
        let mut raw = [self.raw(x, y)];
        self.map_raw(&mut raw);
        raw[0]
    }

    /// The raw basis value for a pair (see [`TileBasis`]): squared L2
    /// distance, inner product, or L1 distance.
    ///
    /// Dimensions must have been validated by the caller.
    #[inline]
    pub fn raw(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len(), "kernel raw: dimension mismatch");
        match self.tile_basis() {
            TileBasis::SqDist => vector::sq_dist(x, y),
            TileBasis::Dot => vector::dot(x, y),
            TileBasis::L1 => x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum(),
        }
    }

    /// Which raw quantity this kernel maps (and therefore whether a
    /// tile of it can be produced by the GEMM micro-kernel).
    #[inline]
    pub fn tile_basis(&self) -> TileBasis {
        match self {
            Kernel::Gaussian { .. } => TileBasis::SqDist,
            Kernel::Linear | Kernel::Polynomial { .. } => TileBasis::Dot,
            Kernel::Laplacian { .. } => TileBasis::L1,
        }
    }

    /// Finish a tile: map raw basis values (per [`Kernel::tile_basis`])
    /// to kernel values in place, one batched pass with no per-entry
    /// branching. Applying this to a value produced by [`Kernel::raw`]
    /// is bitwise identical to [`Kernel::eval`] on the same pair.
    #[inline]
    pub fn map_raw(&self, tile: &mut [f64]) {
        match *self {
            Kernel::Gaussian { sigma } => {
                for v in tile.iter_mut() {
                    *v = (-*v / (2.0 * sigma * sigma)).exp();
                }
            }
            Kernel::Linear => {}
            Kernel::Polynomial { degree, c } => {
                for v in tile.iter_mut() {
                    *v = (*v + c).powi(degree as i32);
                }
            }
            Kernel::Laplacian { gamma } => {
                for v in tile.iter_mut() {
                    *v = (-gamma * *v).exp();
                }
            }
        }
    }

    /// A data-driven bandwidth heuristic: the median pairwise distance
    /// over a deterministic subsample. Useful when σ is not given.
    ///
    /// The subsample is capped at [`MEDIAN_HEURISTIC_MAX_SAMPLE`]
    /// points, so the cost is bounded regardless of `n` — see
    /// [`Kernel::median_sigma`] for why.
    pub fn gaussian_median_heuristic(points: &[Vec<f64>]) -> Self {
        Kernel::gaussian(Self::median_sigma(points))
    }

    /// The bandwidth [`Kernel::gaussian_median_heuristic`] would pick:
    /// the median pairwise distance over an evenly-strided subsample of
    /// at most [`MEDIAN_HEURISTIC_MAX_SAMPLE`] points (1.0 if the
    /// sample is degenerate).
    ///
    /// The pairwise pass is O(s²) in the sample size, so without a cap
    /// it would be O(n²) — quadratic in the dataset just to pick a
    /// scalar. Capping at `s` points bounds it at `s(s-1)/2` distance
    /// evaluations while the evenly-spaced stride keeps the sample
    /// representative and deterministic. Datasets at or below the cap
    /// are used in full, so small-`n` results are exact.
    ///
    /// # Panics
    /// Panics with fewer than two points.
    pub fn median_sigma(points: &[Vec<f64>]) -> f64 {
        let n = points.len();
        assert!(n >= 2, "median heuristic needs at least two points");
        let stride = n.div_ceil(MEDIAN_HEURISTIC_MAX_SAMPLE).max(1);
        let sample: Vec<&Vec<f64>> = points.iter().step_by(stride).collect();
        let mut dists = Vec::with_capacity(sample.len() * (sample.len() - 1) / 2);
        for i in 0..sample.len() {
            for j in (i + 1)..sample.len() {
                dists.push(vector::dist(sample[i], sample[j]));
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        let median = dists[dists.len() / 2];
        if median > 0.0 {
            median
        } else {
            1.0
        }
    }
}

/// Largest subsample the median bandwidth heuristic will look at.
///
/// 256 points give 32 640 pairwise distances — microseconds of work —
/// while the median of an evenly-strided sample of this size is a
/// stable estimate of the population median for any realistic dataset.
pub const MEDIAN_HEURISTIC_MAX_SAMPLE: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_unit_at_identity() {
        let k = Kernel::gaussian(0.5);
        let x = vec![0.3, 0.7];
        assert_eq!(k.eval(&x, &x), 1.0);
    }

    #[test]
    fn gaussian_decays_with_distance() {
        let k = Kernel::gaussian(1.0);
        let a = k.eval(&[0.0], &[1.0]);
        let b = k.eval(&[0.0], &[2.0]);
        assert!(a > b && b > 0.0);
        // Known value: exp(-1/2).
        assert!((a - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn gaussian_symmetric() {
        let k = Kernel::gaussian(0.7);
        let x = vec![0.1, 0.9, 0.4];
        let y = vec![0.8, 0.2, 0.6];
        assert_eq!(k.eval(&x, &y), k.eval(&y, &x));
    }

    #[test]
    fn sigma_controls_decay_rate() {
        let tight = Kernel::gaussian(0.1);
        let wide = Kernel::gaussian(10.0);
        assert!(tight.eval(&[0.0], &[1.0]) < wide.eval(&[0.0], &[1.0]));
    }

    #[test]
    fn linear_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn polynomial_known_value() {
        let k = Kernel::Polynomial { degree: 2, c: 1.0 };
        // (1*1 + 1)^2 = 4.
        assert_eq!(k.eval(&[1.0], &[1.0]), 4.0);
    }

    #[test]
    fn laplacian_uses_l1() {
        let k = Kernel::Laplacian { gamma: 1.0 };
        let v = k.eval(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((v - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn median_heuristic_positive_sigma() {
        let pts: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let Kernel::Gaussian { sigma } = Kernel::gaussian_median_heuristic(&pts) else {
            panic!("expected gaussian")
        };
        assert!(sigma > 0.0 && sigma < 1.0);
    }

    #[test]
    fn median_sigma_matches_uncapped_below_cap() {
        // At or below the sample cap the stride is 1, so the heuristic
        // must equal a brute-force median over every pair.
        let pts: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()])
            .collect();
        let mut all = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                all.push(vector::dist(&pts[i], &pts[j]));
            }
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        assert_eq!(Kernel::median_sigma(&pts), all[all.len() / 2]);
    }

    #[test]
    fn median_sigma_large_dataset_is_capped_and_fast() {
        // 10k points would be ~50M pairwise distances uncapped; the cap
        // keeps it to at most C(256, 2). Bound the wall-clock loosely so
        // the test fails loudly if the cap regresses.
        let pts: Vec<Vec<f64>> = (0..10_000)
            .map(|i| vec![(i % 97) as f64 * 0.01, (i % 83) as f64 * 0.013])
            .collect();
        let start = std::time::Instant::now();
        let sigma = Kernel::median_sigma(&pts);
        assert!(sigma > 0.0);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "median heuristic took {:?} — sample cap not applied?",
            start.elapsed()
        );
    }

    #[test]
    fn median_heuristic_degenerate_data() {
        let pts: Vec<Vec<f64>> = (0..10).map(|_| vec![0.5]).collect();
        let Kernel::Gaussian { sigma } = Kernel::gaussian_median_heuristic(&pts) else {
            panic!("expected gaussian")
        };
        assert_eq!(sigma, 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma > 0")]
    fn zero_sigma_panics() {
        Kernel::gaussian(0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }
}
