//! The DASC block-diagonal approximate Gram matrix.
//!
//! Step three of the algorithm: the kernel is evaluated only within LSH
//! buckets, so the full `N×N` matrix is replaced by per-bucket blocks
//! holding `Σ Nᵢ²` entries. Cross-bucket similarities are approximated
//! as zero — the approximation error analyzed in Section 4.2.

use dasc_linalg::{FlatPoints, Matrix};
use dasc_lsh::BucketSet;
use rayon::prelude::*;

use crate::functions::Kernel;
use crate::gram::{full_gram, full_gram_flat};

/// One diagonal block: a bucket's members and their sub-similarity
/// matrix (the output of Algorithm 2's reducer).
#[derive(Clone, Debug)]
pub struct GramBlock {
    /// Global point indices of this bucket, ascending.
    pub members: Vec<usize>,
    /// `Nᵢ × Nᵢ` kernel matrix over the members.
    pub matrix: Matrix,
}

/// Block-diagonal approximation of the kernel matrix.
#[derive(Clone, Debug)]
pub struct ApproximateGram {
    n: usize,
    blocks: Vec<GramBlock>,
}

/// Build every bucket's Gram block, bucket-parallel.
///
/// Buckets are *scheduled largest-first*: a bucket costs O(Nᵢ²), so if
/// the biggest one started last it would run alone at the tail while
/// the rest of the pool idles. Results are scattered back to input
/// order, so the output is independent of the schedule.
fn blocks_for_groups(points: &[Vec<f64>], groups: &[&[usize]], kernel: &Kernel) -> Vec<GramBlock> {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(groups[g].len()));
    let computed: Vec<(usize, GramBlock)> = order
        .par_iter()
        .map(|&g| {
            let members = groups[g];
            // Gather the bucket into a flat row-major buffer once;
            // `full_gram_flat` then computes the block through the tiled
            // GEMM micro-kernel (norm expansion + batched kernel map)
            // for buckets of at least `TILED_MIN_POINTS`, and stays on
            // the scalar path for small buckets where setup dominates.
            let sub = FlatPoints::gather(points, members);
            let block = GramBlock {
                members: members.to_vec(),
                matrix: full_gram_flat(&sub, kernel),
            };
            (g, block)
        })
        .collect();
    let mut out: Vec<Option<GramBlock>> = (0..groups.len()).map(|_| None).collect();
    for (g, block) in computed {
        out[g] = Some(block);
    }
    out.into_iter()
        .map(|b| b.expect("every group computed"))
        .collect()
}

impl ApproximateGram {
    /// Build the approximation from LSH buckets (bucket-parallel,
    /// largest buckets scheduled first).
    pub fn from_buckets(points: &[Vec<f64>], buckets: &BucketSet, kernel: &Kernel) -> Self {
        assert_eq!(
            buckets.num_points(),
            points.len(),
            "bucket set does not cover the dataset"
        );
        let groups: Vec<&[usize]> = buckets
            .buckets()
            .iter()
            .map(|b| b.members.as_slice())
            .collect();
        Self {
            n: points.len(),
            blocks: blocks_for_groups(points, &groups, kernel),
        }
    }

    /// Build directly from explicit member groups (used by tests and by
    /// the MapReduce reducer path, where groups arrive from the shuffle).
    pub fn from_groups(points: &[Vec<f64>], groups: Vec<Vec<usize>>, kernel: &Kernel) -> Self {
        let group_refs: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
        Self {
            n: points.len(),
            blocks: blocks_for_groups(points, &group_refs, kernel),
        }
    }

    /// Total number of points `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The diagonal blocks.
    pub fn blocks(&self) -> &[GramBlock] {
        &self.blocks
    }

    /// Consume the approximation, yielding its diagonal blocks by value
    /// — lets per-bucket spectral clustering scale each block into its
    /// Laplacian in place instead of cloning it.
    pub fn into_blocks(self) -> Vec<GramBlock> {
        self.blocks
    }

    /// Number of stored entries `Σ Nᵢ²` (Eq. 9's numerator).
    pub fn stored_entries(&self) -> usize {
        self.blocks.iter().map(|b| b.members.len().pow(2)).sum()
    }

    /// Storage in bytes under the paper's 4-byte convention (Eq. 12).
    pub fn memory_bytes(&self) -> usize {
        4 * self.stored_entries()
    }

    /// Entry lookup: kernel value if `i` and `j` share a bucket, else the
    /// approximated zero.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        for b in &self.blocks {
            if let Ok(bi) = b.members.binary_search(&i) {
                return match b.members.binary_search(&j) {
                    Ok(bj) => b.matrix[(bi, bj)],
                    Err(_) => 0.0,
                };
            }
        }
        0.0
    }

    /// Frobenius norm of the whole approximation
    /// (`√Σ_blocks ‖Sᵢ‖²_F`, Eq. 22 restricted to stored entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                let f = b.matrix.frobenius_norm();
                f * f
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Materialize the dense `N×N` matrix (tests / small N only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for b in &self.blocks {
            for (bi, &i) in b.members.iter().enumerate() {
                for (bj, &j) in b.members.iter().enumerate() {
                    m[(i, j)] = b.matrix[(bi, bj)];
                }
            }
        }
        m
    }

    /// The Figure 5 metric: `‖K̃‖_F / ‖K‖_F` against the exact Gram
    /// matrix of the same points.
    pub fn fnorm_ratio_to_full(&self, points: &[Vec<f64>], kernel: &Kernel) -> f64 {
        let full = full_gram(points, kernel).frobenius_norm();
        if full == 0.0 {
            return 1.0;
        }
        self.frobenius_norm() / full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_lsh::Signature;

    fn pts() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![1.0, 1.0],
            vec![0.9, 1.0],
        ]
    }

    fn two_buckets() -> BucketSet {
        // Points 0,1 in one bucket; 2,3 in another.
        let sigs = vec![
            Signature::from_bits(0, 2),
            Signature::from_bits(0, 2),
            Signature::from_bits(3, 2),
            Signature::from_bits(3, 2),
        ];
        BucketSet::from_signatures(&sigs)
    }

    #[test]
    fn block_structure() {
        let k = Kernel::gaussian(0.5);
        let ag = ApproximateGram::from_buckets(&pts(), &two_buckets(), &k);
        assert_eq!(ag.n(), 4);
        assert_eq!(ag.blocks().len(), 2);
        assert_eq!(ag.stored_entries(), 8);
        assert_eq!(ag.memory_bytes(), 32);
    }

    #[test]
    fn within_bucket_entries_match_kernel() {
        let k = Kernel::gaussian(0.5);
        let p = pts();
        let ag = ApproximateGram::from_buckets(&p, &two_buckets(), &k);
        assert_eq!(ag.get(0, 1), k.eval(&p[0], &p[1]));
        assert_eq!(ag.get(2, 3), k.eval(&p[2], &p[3]));
        assert_eq!(ag.get(0, 0), 1.0);
    }

    #[test]
    fn cross_bucket_entries_are_zero() {
        let k = Kernel::gaussian(0.5);
        let ag = ApproximateGram::from_buckets(&pts(), &two_buckets(), &k);
        assert_eq!(ag.get(0, 2), 0.0);
        assert_eq!(ag.get(1, 3), 0.0);
    }

    #[test]
    fn dense_reconstruction_matches_get() {
        let k = Kernel::gaussian(0.5);
        let ag = ApproximateGram::from_buckets(&pts(), &two_buckets(), &k);
        let d = ag.to_dense();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(d[(i, j)], ag.get(i, j));
            }
        }
        assert!(d.is_symmetric(0.0));
    }

    #[test]
    fn single_bucket_is_exact() {
        let k = Kernel::gaussian(0.5);
        let p = pts();
        let sigs = vec![Signature::from_bits(0, 1); 4];
        let buckets = BucketSet::from_signatures(&sigs);
        let ag = ApproximateGram::from_buckets(&p, &buckets, &k);
        let full = full_gram(&p, &k);
        assert!(ag.to_dense().max_abs_diff(&full) < 1e-15);
        assert!((ag.fnorm_ratio_to_full(&p, &k) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fnorm_ratio_below_one_when_split() {
        let k = Kernel::gaussian(1.0);
        let p = pts();
        let ag = ApproximateGram::from_buckets(&p, &two_buckets(), &k);
        let r = ag.fnorm_ratio_to_full(&p, &k);
        assert!(r < 1.0, "ratio {r} should drop below 1");
        assert!(r > 0.5, "well-separated buckets keep most mass: {r}");
    }

    #[test]
    fn more_buckets_lower_ratio() {
        // Figure 5's trend: splitting finer loses more mass.
        let k = Kernel::gaussian(1.0);
        let p = pts();
        let coarse = ApproximateGram::from_groups(&p, vec![vec![0, 1], vec![2, 3]], &k);
        let fine = ApproximateGram::from_groups(&p, vec![vec![0], vec![1], vec![2], vec![3]], &k);
        assert!(fine.fnorm_ratio_to_full(&p, &k) < coarse.fnorm_ratio_to_full(&p, &k));
    }

    #[test]
    fn memory_far_below_full_for_many_buckets() {
        let n = 64;
        let p: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let groups: Vec<Vec<usize>> = (0..8)
            .map(|g| (0..8).map(|i| g * 8 + i).collect())
            .collect();
        let ag = ApproximateGram::from_groups(&p, groups, &Kernel::gaussian(1.0));
        // 8 blocks of 8² vs full 64²: exactly the 1/B reduction of Eq. 10.
        assert_eq!(ag.stored_entries(), 8 * 64);
        assert_eq!(ag.memory_bytes() * 8, crate::gram::gram_memory_bytes(n));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_bucket_set_panics() {
        let sigs = vec![Signature::from_bits(0, 1); 3];
        let buckets = BucketSet::from_signatures(&sigs);
        ApproximateGram::from_buckets(&pts(), &buckets, &Kernel::Linear);
    }
}
