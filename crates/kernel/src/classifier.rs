//! Least-squares kernel classifier (LS-SVM, Suykens–Vandewalle) on
//! exact and block-diagonal Gram matrices.
//!
//! The paper motivates kernel methods with SVM classification (its
//! pedestrian-detection example, where accuracy improves with training
//! set size — which is exactly why the O(N²) kernel matrix becomes the
//! bottleneck). LS-SVM replaces the SVM's QP with the linear system
//!
//! ```text
//! (K + I/γ) α = y,   ŷ(x) = sign Σ αᵢ k(x, xᵢ)
//! ```
//!
//! so it rides the same per-bucket Cholesky machinery as ridge
//! regression; multi-class goes one-vs-rest.

use crate::approx::ApproximateGram;
use crate::functions::Kernel;
use crate::ridge::RidgeModel;

/// A fitted kernel classifier (binary or one-vs-rest multi-class).
#[derive(Clone, Debug)]
pub struct KernelClassifier {
    /// One ridge machine per class (±1 targets).
    machines: Vec<RidgeModel>,
    /// Class label of each machine.
    classes: Vec<usize>,
}

impl KernelClassifier {
    /// Fit on the exact Gram matrix.
    ///
    /// `gamma` is the LS-SVM regularization (larger = less
    /// regularization; internally `λ = 1/γ`).
    ///
    /// # Panics
    /// Panics on mismatched labels, empty data, or `gamma <= 0`.
    pub fn fit_exact(points: &[Vec<f64>], labels: &[usize], kernel: Kernel, gamma: f64) -> Self {
        assert!(gamma > 0.0, "classifier: gamma must be positive");
        assert_eq!(points.len(), labels.len(), "classifier: label mismatch");
        assert!(!points.is_empty(), "classifier: empty dataset");
        let classes = distinct(labels);
        let machines = classes
            .iter()
            .map(|&c| {
                let y = pm_one(labels, c);
                RidgeModel::fit_exact(points, &y, kernel, 1.0 / gamma)
            })
            .collect();
        Self { machines, classes }
    }

    /// Fit on a DASC block-diagonal approximate Gram matrix
    /// (independent per-bucket solves).
    ///
    /// # Panics
    /// Panics on mismatched labels or `gamma <= 0`.
    pub fn fit_blocks(
        gram: &ApproximateGram,
        labels: &[usize],
        kernel: Kernel,
        gamma: f64,
    ) -> Self {
        assert!(gamma > 0.0, "classifier: gamma must be positive");
        assert_eq!(gram.n(), labels.len(), "classifier: label mismatch");
        let classes = distinct(labels);
        let machines = classes
            .iter()
            .map(|&c| {
                let y = pm_one(labels, c);
                RidgeModel::fit_blocks(gram, &y, kernel, 1.0 / gamma)
            })
            .collect();
        Self { machines, classes }
    }

    /// Class labels known to the classifier, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Decision scores per class for a query.
    pub fn scores(&self, x: &[f64], train_points: &[Vec<f64>]) -> Vec<f64> {
        self.machines
            .iter()
            .map(|m| m.predict(x, train_points))
            .collect()
    }

    /// Predicted class (argmax of the one-vs-rest scores).
    pub fn predict(&self, x: &[f64], train_points: &[Vec<f64>]) -> usize {
        let scores = self.scores(x, train_points);
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN score"))
            .map(|(i, _)| i)
            .expect("at least one class");
        self.classes[best]
    }

    /// Fraction of correct predictions over a labelled set.
    pub fn accuracy(&self, xs: &[Vec<f64>], labels: &[usize], train_points: &[Vec<f64>]) -> f64 {
        assert_eq!(xs.len(), labels.len(), "accuracy: label mismatch");
        let correct = xs
            .iter()
            .zip(labels)
            .filter(|(x, &l)| self.predict(x, train_points) == l)
            .count();
        correct as f64 / xs.len().max(1) as f64
    }
}

fn distinct(labels: &[usize]) -> Vec<usize> {
    let mut c: Vec<usize> = labels.to_vec();
    c.sort_unstable();
    c.dedup();
    c
}

fn pm_one(labels: &[usize], class: usize) -> Vec<f64> {
    labels
        .iter()
        .map(|&l| if l == class { 1.0 } else { -1.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three Gaussian-ish classes on a line.
    fn three_classes(per: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..per {
            let jitter = 0.002 * (i % 5) as f64;
            xs.push(vec![0.1 + jitter, 0.2]);
            ys.push(0);
            xs.push(vec![0.5 + jitter, 0.8]);
            ys.push(1);
            xs.push(vec![0.9 + jitter, 0.2]);
            ys.push(2);
        }
        (xs, ys)
    }

    #[test]
    fn exact_fit_classifies_training_set() {
        let (xs, ys) = three_classes(15);
        let clf = KernelClassifier::fit_exact(&xs, &ys, Kernel::gaussian(0.1), 100.0);
        assert_eq!(clf.classes(), &[0, 1, 2]);
        assert_eq!(clf.accuracy(&xs, &ys, &xs), 1.0);
    }

    #[test]
    fn generalizes_to_nearby_points() {
        let (xs, ys) = three_classes(15);
        let clf = KernelClassifier::fit_exact(&xs, &ys, Kernel::gaussian(0.1), 100.0);
        assert_eq!(clf.predict(&[0.12, 0.21], &xs), 0);
        assert_eq!(clf.predict(&[0.52, 0.79], &xs), 1);
        assert_eq!(clf.predict(&[0.88, 0.19], &xs), 2);
    }

    #[test]
    fn block_fit_matches_exact_on_separated_classes() {
        use dasc_lsh::{BucketSet, Signature};
        let (xs, ys) = three_classes(12);
        let kernel = Kernel::gaussian(0.1);
        // Bucket by x-coordinate thirds — aligned with the classes.
        let sigs: Vec<Signature> = xs
            .iter()
            .map(|p| Signature::from_bits((p[0] * 3.0) as u64, 2))
            .collect();
        let gram = ApproximateGram::from_buckets(&xs, &BucketSet::from_signatures(&sigs), &kernel);
        let blocked = KernelClassifier::fit_blocks(&gram, &ys, kernel, 100.0);
        assert_eq!(blocked.accuracy(&xs, &ys, &xs), 1.0);
    }

    #[test]
    fn binary_case_works() {
        let xs = vec![vec![0.0], vec![0.1], vec![1.0], vec![1.1]];
        let ys = vec![7, 7, 9, 9]; // non-contiguous labels
        let clf = KernelClassifier::fit_exact(&xs, &ys, Kernel::gaussian(0.2), 50.0);
        assert_eq!(clf.classes(), &[7, 9]);
        assert_eq!(clf.predict(&[0.05], &xs), 7);
        assert_eq!(clf.predict(&[1.05], &xs), 9);
    }

    #[test]
    fn stronger_regularization_smooths_scores() {
        let (xs, ys) = three_classes(10);
        let sharp = KernelClassifier::fit_exact(&xs, &ys, Kernel::gaussian(0.1), 1000.0);
        let smooth = KernelClassifier::fit_exact(&xs, &ys, Kernel::gaussian(0.1), 0.01);
        let q = [0.1, 0.2];
        let s_sharp = sharp.scores(&q, &xs)[0];
        let s_smooth = smooth.scores(&q, &xs)[0];
        assert!(s_sharp.abs() > s_smooth.abs());
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn bad_gamma_panics() {
        KernelClassifier::fit_exact(&[vec![0.0]], &[0], Kernel::Linear, 0.0);
    }

    #[test]
    #[should_panic(expected = "label mismatch")]
    fn label_mismatch_panics() {
        KernelClassifier::fit_exact(&[vec![0.0]], &[0, 1], Kernel::Linear, 1.0);
    }
}
