//! The exact (full) Gram matrix — the O(N²) object DASC avoids.

use dasc_linalg::{FlatPoints, Matrix};
use rayon::prelude::*;

use crate::functions::Kernel;

/// Compute the full `N×N` Gram matrix `K[l,m] = k(X_l, X_m)`.
///
/// Flattens the points and delegates to [`full_gram_flat`].
pub fn full_gram(points: &[Vec<f64>], kernel: &Kernel) -> Matrix {
    full_gram_flat(&FlatPoints::from_rows(points), kernel)
}

/// [`full_gram`] over pre-flattened points — the hot path.
///
/// Each parallel task writes its row of the output matrix directly via
/// `par_chunks_mut`, so the N×N buffer is the only allocation: no
/// per-row vectors, no second copy of the triangle. Only the upper
/// triangle (`j >= i`) is evaluated; the lower one is mirrored in place
/// afterwards. Row `i` costs `n - i` kernel evaluations, so the
/// work-stealing pool's fine splits are what keep the triangular load
/// balanced.
pub fn full_gram_flat(points: &FlatPoints, kernel: &Kernel) -> Matrix {
    let n = points.len();
    let mut g = Matrix::zeros(n, n);
    if n == 0 {
        return g;
    }
    g.as_mut_slice()
        .par_chunks_mut(n)
        .enumerate()
        .for_each(|(i, row)| {
            let xi = points.row(i);
            for (j, out) in row.iter_mut().enumerate().skip(i) {
                *out = kernel.eval(xi, points.row(j));
            }
        });
    g.mirror_upper();
    g
}

/// Memory a full Gram matrix for `n` points requires, in bytes, under
/// the paper's single-precision accounting (Eq. 12 uses 4 bytes/entry).
pub fn gram_memory_bytes(n: usize) -> usize {
    4 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]
    }

    #[test]
    fn gaussian_gram_diagonal_is_one() {
        let g = full_gram(&unit_square(), &Kernel::gaussian(1.0));
        for i in 0..4 {
            assert_eq!(g[(i, i)], 1.0);
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let g = full_gram(&unit_square(), &Kernel::gaussian(0.5));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn gram_values_match_kernel() {
        let pts = unit_square();
        let k = Kernel::gaussian(0.8);
        let g = full_gram(&pts, &k);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g[(i, j)], k.eval(&pts[i], &pts[j]));
            }
        }
    }

    #[test]
    fn gaussian_gram_is_psd() {
        // All eigenvalues of a Gaussian Gram matrix are non-negative.
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64) / 12.0, ((i * 7) % 12) as f64 / 12.0])
            .collect();
        let g = full_gram(&pts, &Kernel::gaussian(0.4));
        let eig = dasc_linalg::symmetric_eigen(&g);
        for &v in &eig.eigenvalues {
            assert!(v > -1e-9, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn empty_input() {
        let g = full_gram(&[], &Kernel::Linear);
        assert_eq!(g.shape(), (0, 0));
    }

    #[test]
    fn flat_matches_nested() {
        let pts = unit_square();
        let k = Kernel::gaussian(0.6);
        let nested = full_gram(&pts, &k);
        let flat = full_gram_flat(&dasc_linalg::FlatPoints::from_rows(&pts), &k);
        assert_eq!(nested.as_slice(), flat.as_slice());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // The direct-write parallel fill must reproduce the 1-thread
        // result exactly: same entries, same bits, any thread count.
        let pts: Vec<Vec<f64>> = (0..97)
            .map(|i| vec![(i as f64).sin(), (i as f64 * 0.37).cos(), i as f64 / 97.0])
            .collect();
        let k = Kernel::gaussian(0.45);
        let seq = dasc_pool::Pool::new(1).install(|| full_gram(&pts, &k));
        for threads in [2, 4] {
            let par = dasc_pool::Pool::new(threads).install(|| full_gram(&pts, &k));
            assert_eq!(
                seq.as_slice(),
                par.as_slice(),
                "gram differs at {threads} threads"
            );
        }
    }

    #[test]
    fn memory_accounting_is_quadratic() {
        assert_eq!(gram_memory_bytes(1000), 4_000_000);
        assert_eq!(gram_memory_bytes(0), 0);
    }
}
