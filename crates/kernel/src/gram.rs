//! The exact (full) Gram matrix — the O(N²) object DASC avoids.

use dasc_linalg::Matrix;
use rayon::prelude::*;

use crate::functions::Kernel;

/// Compute the full `N×N` Gram matrix `K[l,m] = k(X_l, X_m)`.
///
/// Row-parallel; only the upper triangle is evaluated and mirrored.
pub fn full_gram(points: &[Vec<f64>], kernel: &Kernel) -> Matrix {
    let n = points.len();
    let mut g = Matrix::zeros(n, n);
    // Compute rows in parallel: row i fills columns i..n.
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| {
            (i..n)
                .map(|j| kernel.eval(&points[i], &points[j]))
                .collect()
        })
        .collect();
    for (i, row) in rows.into_iter().enumerate() {
        for (off, v) in row.into_iter().enumerate() {
            let j = i + off;
            g[(i, j)] = v;
            g[(j, i)] = v;
        }
    }
    g
}

/// Memory a full Gram matrix for `n` points requires, in bytes, under
/// the paper's single-precision accounting (Eq. 12 uses 4 bytes/entry).
pub fn gram_memory_bytes(n: usize) -> usize {
    4 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]
    }

    #[test]
    fn gaussian_gram_diagonal_is_one() {
        let g = full_gram(&unit_square(), &Kernel::gaussian(1.0));
        for i in 0..4 {
            assert_eq!(g[(i, i)], 1.0);
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let g = full_gram(&unit_square(), &Kernel::gaussian(0.5));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn gram_values_match_kernel() {
        let pts = unit_square();
        let k = Kernel::gaussian(0.8);
        let g = full_gram(&pts, &k);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g[(i, j)], k.eval(&pts[i], &pts[j]));
            }
        }
    }

    #[test]
    fn gaussian_gram_is_psd() {
        // All eigenvalues of a Gaussian Gram matrix are non-negative.
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64) / 12.0, ((i * 7) % 12) as f64 / 12.0])
            .collect();
        let g = full_gram(&pts, &Kernel::gaussian(0.4));
        let eig = dasc_linalg::symmetric_eigen(&g);
        for &v in &eig.eigenvalues {
            assert!(v > -1e-9, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn empty_input() {
        let g = full_gram(&[], &Kernel::Linear);
        assert_eq!(g.shape(), (0, 0));
    }

    #[test]
    fn memory_accounting_is_quadratic() {
        assert_eq!(gram_memory_bytes(1000), 4_000_000);
        assert_eq!(gram_memory_bytes(0), 0);
    }
}
