//! The exact (full) Gram matrix — the O(N²) object DASC avoids.
//!
//! Two implementations live here. The scalar path walks pairs one at a
//! time (raw basis value per pair, batched kernel map per row) and is
//! bit-identical to per-entry `Kernel::eval`. The tiled path routes the
//! raw-value computation through the `dasc_linalg::gemm` micro-kernels:
//! squared distances come from the norm expansion
//! `‖x‖² + ‖y‖² − 2⟨x,y⟩` over register-blocked `A·Bᵀ` tiles, and the
//! kernel map (Gaussian `exp`, polynomial powers) runs as one batched
//! pass over each computed panel. The two paths agree entrywise to a
//! few ULPs of the row norms (see the negative-clamp discussion in
//! `dasc_linalg::gemm`), and [`full_gram_flat`] dispatches between them
//! on [`TILED_MIN_POINTS`].

use dasc_linalg::{gemm, FlatPoints, Matrix};
use rayon::prelude::*;

use crate::functions::{Kernel, TileBasis};

/// Smallest point count routed to the tiled micro-kernel path.
///
/// Below this, a bucket's Gram block costs less than the tiled path's
/// setup (row-norm pass, panel bookkeeping), and staying scalar keeps
/// small blocks bitwise identical to per-entry `Kernel::eval` — which
/// is also what pins down tests that assert exact equality on tiny
/// fixtures. 64 points ≈ one `GEMM_TILE_ROWS`-tile of work per row
/// panel, the first size where tile reuse starts paying.
pub const TILED_MIN_POINTS: usize = 64;

/// Row-panel height of the parallel tiled driver: each pool task owns
/// this many output rows, so tasks write disjoint chunks and the result
/// is independent of the thread count.
const GRAM_PANEL_ROWS: usize = 64;

/// Smallest point count worth fanning out across the thread pool.
///
/// Below this, a full Gram fill is microseconds of work and the pool's
/// task hand-off dominates — `BENCH_pipeline.json` recorded a 0.96×
/// "speedup" at n=1000 before this threshold existed. Both fill paths
/// produce bit-identical output either way (each chunk's contents
/// depend only on its row range), so the sequential branch is purely a
/// scheduling decision.
pub const PARALLEL_MIN_POINTS: usize = 256;

/// Compute the full `N×N` Gram matrix `K[l,m] = k(X_l, X_m)`.
///
/// Flattens the points and delegates to [`full_gram_flat`].
pub fn full_gram(points: &[Vec<f64>], kernel: &Kernel) -> Matrix {
    full_gram_flat(&FlatPoints::from_rows(points), kernel)
}

/// [`full_gram`] over pre-flattened points — the hot path.
///
/// Dispatches to [`full_gram_flat_tiled`] for sets of at least
/// [`TILED_MIN_POINTS`] points whose kernel has a GEMM-expressible
/// basis, and to [`full_gram_flat_scalar`] otherwise (small blocks, and
/// the Laplacian's L1 basis which no bilinear form produces).
pub fn full_gram_flat(points: &FlatPoints, kernel: &Kernel) -> Matrix {
    if points.len() >= TILED_MIN_POINTS && kernel.tile_basis() != TileBasis::L1 {
        full_gram_flat_tiled(points, kernel)
    } else {
        full_gram_flat_scalar(points, kernel)
    }
}

/// Scalar reference path: one raw basis value per pair, batched kernel
/// map per row segment.
///
/// Each parallel task writes its row of the output matrix directly via
/// `par_chunks_mut`, so the N×N buffer is the only allocation: no
/// per-row vectors, no second copy of the triangle. Only the upper
/// triangle (`j >= i`) is evaluated; the lower one is mirrored in place
/// afterwards. Row `i` costs `n - i` kernel evaluations, so the
/// work-stealing pool's fine splits are what keep the triangular load
/// balanced. The per-pair dimension check is hoisted: `FlatPoints`
/// guarantees a uniform stride, so the loop uses the prevalidated batch
/// entry points.
pub fn full_gram_flat_scalar(points: &FlatPoints, kernel: &Kernel) -> Matrix {
    let n = points.len();
    let mut g = Matrix::zeros(n, n);
    if n == 0 {
        return g;
    }
    let fill = |(i, row): (usize, &mut [f64])| {
        let xi = points.row(i);
        for (j, out) in row.iter_mut().enumerate().skip(i) {
            *out = kernel.raw(xi, points.row(j));
        }
        kernel.map_raw(&mut row[i..]);
    };
    if n >= PARALLEL_MIN_POINTS {
        g.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(fill);
    } else {
        g.as_mut_slice().chunks_mut(n).enumerate().for_each(fill);
    }
    g.mirror_upper();
    g
}

/// Tiled micro-kernel path: raw basis values via `gemm` panels, kernel
/// map batched over each panel.
///
/// Parallelism is over [`GRAM_PANEL_ROWS`]-row output panels; a panel
/// computes columns `j ≥ panel start` (everything at or right of the
/// diagonal block) and the strict lower triangle is mirrored from the
/// upper afterwards, so the matrix is exactly symmetric. The diagonal
/// is then overwritten with the scalar `k(x, x)` — exact `1.0` for the
/// Gaussian — because the norm expansion can leave `±ULP` residue where
/// the direct form is exactly zero.
///
/// # Panics
/// Panics if the kernel's basis is [`TileBasis::L1`] (no GEMM form).
pub fn full_gram_flat_tiled(points: &FlatPoints, kernel: &Kernel) -> Matrix {
    let basis = kernel.tile_basis();
    assert_ne!(
        basis,
        TileBasis::L1,
        "tiled gram: L1 basis has no GEMM form"
    );
    let n = points.len();
    let dim = points.dim();
    let mut g = Matrix::zeros(n, n);
    if n == 0 {
        return g;
    }
    let norms = match basis {
        TileBasis::SqDist => gemm::row_sq_norms(points),
        _ => Vec::new(),
    };
    let fill = |(ci, chunk): (usize, &mut [f64])| {
        let r0 = ci * GRAM_PANEL_ROWS;
        let rows = chunk.len() / n;
        let a = points.rows(r0, r0 + rows);
        let b = points.rows(r0, n);
        let nb = n - r0;
        let out = &mut chunk[r0..];
        match basis {
            TileBasis::SqDist => gemm::sq_dists_into(
                a,
                rows,
                &norms[r0..r0 + rows],
                b,
                nb,
                &norms[r0..],
                dim,
                out,
                n,
            ),
            TileBasis::Dot => gemm::abt_into(a, rows, b, nb, dim, out, n),
            TileBasis::L1 => unreachable!("rejected above"),
        }
        for li in 0..rows {
            kernel.map_raw(&mut chunk[li * n + r0..(li + 1) * n]);
        }
    };
    if n >= PARALLEL_MIN_POINTS {
        g.as_mut_slice()
            .par_chunks_mut(n * GRAM_PANEL_ROWS)
            .enumerate()
            .for_each(fill);
    } else {
        g.as_mut_slice()
            .chunks_mut(n * GRAM_PANEL_ROWS)
            .enumerate()
            .for_each(fill);
    }
    g.mirror_upper();
    for i in 0..n {
        let xi = points.row(i);
        g[(i, i)] = kernel.eval_prevalidated(xi, xi);
    }
    g
}

/// Memory a full Gram matrix for `n` points requires, in bytes, under
/// the paper's single-precision accounting (Eq. 12 uses 4 bytes/entry).
pub fn gram_memory_bytes(n: usize) -> usize {
    4 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]
    }

    /// Deterministic pseudo-random points in [0, 1)^dim.
    fn cloud(n: usize, dim: usize) -> FlatPoints {
        let data: Vec<f64> = (0..n * dim)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (x % 997) as f64 / 997.0
            })
            .collect();
        FlatPoints::from_flat(data, dim)
    }

    #[test]
    fn gaussian_gram_diagonal_is_one() {
        let g = full_gram(&unit_square(), &Kernel::gaussian(1.0));
        for i in 0..4 {
            assert_eq!(g[(i, i)], 1.0);
        }
    }

    #[test]
    fn tiled_gaussian_diagonal_is_exactly_one() {
        // The tiled path must pin the diagonal at the scalar value even
        // though the norm expansion can leave ±ULP residue off it.
        let pts = cloud(100, 3);
        let g = full_gram_flat_tiled(&pts, &Kernel::gaussian(0.4));
        for i in 0..100 {
            assert_eq!(g[(i, i)], 1.0);
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let g = full_gram(&unit_square(), &Kernel::gaussian(0.5));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn tiled_gram_is_exactly_symmetric() {
        for kernel in [
            Kernel::gaussian(0.5),
            Kernel::Linear,
            Kernel::Polynomial { degree: 2, c: 1.0 },
        ] {
            let g = full_gram_flat_tiled(&cloud(97, 4), &kernel);
            assert!(g.is_symmetric(0.0), "{kernel:?} asymmetric");
        }
    }

    #[test]
    fn gram_values_match_kernel() {
        let pts = unit_square();
        let k = Kernel::gaussian(0.8);
        let g = full_gram(&pts, &k);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g[(i, j)], k.eval(&pts[i], &pts[j]));
            }
        }
    }

    #[test]
    fn tiled_matches_scalar_within_tolerance() {
        // Odd sizes straddle tile boundaries on purpose.
        for n in [64, 65, 97, 130] {
            for kernel in [
                Kernel::gaussian(0.5),
                Kernel::Linear,
                Kernel::Polynomial { degree: 3, c: 0.5 },
            ] {
                let pts = cloud(n, 3);
                let scalar = full_gram_flat_scalar(&pts, &kernel);
                let tiled = full_gram_flat_tiled(&pts, &kernel);
                let diff = scalar.max_abs_diff(&tiled);
                assert!(diff < 1e-12, "{kernel:?} n={n}: max diff {diff}");
            }
        }
    }

    #[test]
    fn dispatch_threshold_picks_paths() {
        let k = Kernel::gaussian(0.5);
        // Below the threshold: bitwise equal to the scalar reference.
        let small = cloud(TILED_MIN_POINTS - 1, 2);
        assert_eq!(
            full_gram_flat(&small, &k).as_slice(),
            full_gram_flat_scalar(&small, &k).as_slice()
        );
        // At the threshold: bitwise equal to the tiled path.
        let big = cloud(TILED_MIN_POINTS, 2);
        assert_eq!(
            full_gram_flat(&big, &k).as_slice(),
            full_gram_flat_tiled(&big, &k).as_slice()
        );
        // Laplacian always stays scalar.
        let lap = Kernel::Laplacian { gamma: 1.0 };
        assert_eq!(
            full_gram_flat(&big, &lap).as_slice(),
            full_gram_flat_scalar(&big, &lap).as_slice()
        );
    }

    #[test]
    fn gaussian_gram_is_psd() {
        // All eigenvalues of a Gaussian Gram matrix are non-negative.
        let pts: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64) / 12.0, ((i * 7) % 12) as f64 / 12.0])
            .collect();
        let g = full_gram(&pts, &Kernel::gaussian(0.4));
        let eig = dasc_linalg::symmetric_eigen(&g);
        for &v in &eig.eigenvalues {
            assert!(v > -1e-9, "negative eigenvalue {v}");
        }
    }

    #[test]
    fn empty_input() {
        let g = full_gram(&[], &Kernel::Linear);
        assert_eq!(g.shape(), (0, 0));
        let empty = FlatPoints::from_rows(&[]);
        assert_eq!(
            full_gram_flat_tiled(&empty, &Kernel::Linear).shape(),
            (0, 0)
        );
    }

    #[test]
    fn flat_matches_nested() {
        let pts = unit_square();
        let k = Kernel::gaussian(0.6);
        let nested = full_gram(&pts, &k);
        let flat = full_gram_flat(&dasc_linalg::FlatPoints::from_rows(&pts), &k);
        assert_eq!(nested.as_slice(), flat.as_slice());
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // The direct-write parallel fill must reproduce the 1-thread
        // result exactly: same entries, same bits, any thread count —
        // on both the scalar and the tiled path. 97 points stays below
        // PARALLEL_MIN_POINTS (sequential branch on every pool), 300
        // exercises the genuinely parallel branch.
        for n in [97usize, 300] {
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    vec![
                        (i as f64).sin(),
                        (i as f64 * 0.37).cos(),
                        i as f64 / n as f64,
                    ]
                })
                .collect();
            let k = Kernel::gaussian(0.45);
            let seq = dasc_pool::Pool::new(1).install(|| full_gram(&pts, &k));
            for threads in [2, 4] {
                let par = dasc_pool::Pool::new(threads).install(|| full_gram(&pts, &k));
                assert_eq!(
                    seq.as_slice(),
                    par.as_slice(),
                    "gram differs at n={n}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn memory_accounting_is_quadratic() {
        assert_eq!(gram_memory_bytes(1000), 4_000_000);
        assert_eq!(gram_memory_bytes(0), 0);
    }
}
