//! Nyström low-rank kernel approximation (Williams & Seeger), backing
//! the NYST baseline (Schuetter & Shi's spectral clustering via the
//! Nyström extension).
//!
//! Sample `m ≪ N` landmark points, eigendecompose the small `m×m`
//! kernel block `W`, and extend to approximate eigenvectors of the full
//! Gram matrix: `λ̃ᵢ = (N/m)·λᵢ(W)` and
//! `ṽᵢ = √(m/N) · C uᵢ / λᵢ(W)` where `C` is the `N×m` cross-kernel.

use dasc_linalg::{qr, symmetric_eigen, Matrix};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::functions::Kernel;

/// Result of the Nyström eigen-approximation.
#[derive(Clone, Debug)]
pub struct NystromEigen {
    /// Approximate top eigenvalues of the full Gram matrix, descending.
    pub eigenvalues: Vec<f64>,
    /// Approximate eigenvectors (`N × k`, orthonormalized columns).
    pub eigenvectors: Matrix,
    /// Indices of the sampled landmark points.
    pub landmarks: Vec<usize>,
}

/// Approximate the top-`k` eigenpairs of the Gram matrix of `points`
/// using `m` landmarks.
///
/// Complexity O(m²N) — the Nyström figure the paper's related-work
/// section quotes.
///
/// # Panics
/// Panics if `k == 0`, `m == 0`, or `m < k`.
pub fn nystrom_eigen(
    points: &[Vec<f64>],
    kernel: &Kernel,
    m: usize,
    k: usize,
    seed: u64,
) -> NystromEigen {
    assert!(k > 0, "nystrom: k must be positive");
    assert!(
        m >= k,
        "nystrom: need at least as many landmarks as eigenpairs"
    );
    let n = points.len();
    let m = m.min(n);
    let k = k.min(m);

    // Uniform landmark sample without replacement, deterministic.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    let mut landmarks: Vec<usize> = idx.into_iter().take(m).collect();
    landmarks.sort_unstable();

    // W: m×m landmark kernel; C: N×m cross kernel.
    let mut w = Matrix::zeros(m, m);
    for (a, &i) in landmarks.iter().enumerate() {
        for (b, &j) in landmarks.iter().enumerate().skip(a) {
            let v = kernel.eval(&points[i], &points[j]);
            w[(a, b)] = v;
            w[(b, a)] = v;
        }
    }
    let mut c = Matrix::zeros(n, m);
    for i in 0..n {
        for (b, &j) in landmarks.iter().enumerate() {
            c[(i, b)] = kernel.eval(&points[i], &points[j]);
        }
    }

    let eig = symmetric_eigen(&w);
    let (w_vals, w_vecs) = eig.top_k(k);

    // Extend: ṽ = √(m/N) · C u / λ, with a pseudo-inverse cutoff for
    // numerically-zero eigenvalues of W.
    let cutoff = w_vals.first().map(|v| v.abs()).unwrap_or(0.0) * 1e-12;
    let scale = (m as f64 / n as f64).sqrt();
    let mut vectors = Matrix::zeros(n, k);
    let mut values = Vec::with_capacity(k);
    for col in 0..k {
        let lam = w_vals[col];
        values.push(lam * n as f64 / m as f64);
        if lam.abs() <= cutoff {
            continue; // leave a zero column; QR below re-orthogonalizes
        }
        for i in 0..n {
            let mut acc = 0.0;
            for b in 0..m {
                acc += c[(i, b)] * w_vecs[(b, col)];
            }
            vectors[(i, col)] = scale * acc / lam;
        }
    }

    // The extended vectors are only approximately orthogonal;
    // re-orthonormalize (thin QR) as the NYST implementations do.
    let vectors = if n >= k { qr(&vectors).q } else { vectors };

    NystromEigen {
        eigenvalues: values,
        eigenvectors: vectors,
        landmarks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::full_gram;

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0])
            .collect()
    }

    #[test]
    fn all_landmarks_recovers_exact_spectrum() {
        let pts = grid(20);
        let k = Kernel::gaussian(0.5);
        let ny = nystrom_eigen(&pts, &k, 20, 3, 1);
        let exact = symmetric_eigen(&full_gram(&pts, &k));
        let (exact_top, _) = exact.top_k(3);
        for (a, b) in ny.eigenvalues.iter().zip(&exact_top) {
            assert!((a - b).abs() < 1e-8, "nystrom {a} vs exact {b}");
        }
    }

    #[test]
    fn subsampled_spectrum_is_close() {
        let pts = grid(60);
        let k = Kernel::gaussian(0.6);
        let ny = nystrom_eigen(&pts, &k, 30, 2, 2);
        let exact = symmetric_eigen(&full_gram(&pts, &k));
        let (exact_top, _) = exact.top_k(2);
        for (a, b) in ny.eigenvalues.iter().zip(&exact_top) {
            let rel = (a - b).abs() / b.abs().max(1e-9);
            assert!(rel < 0.35, "relative error {rel} too large ({a} vs {b})");
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let pts = grid(40);
        let ny = nystrom_eigen(&pts, &Kernel::gaussian(0.5), 15, 4, 3);
        let g = ny.eigenvectors.transpose().matmul(&ny.eigenvectors);
        assert!(g.max_abs_diff(&Matrix::identity(4)) < 1e-8);
    }

    #[test]
    fn landmarks_are_distinct_and_in_range() {
        let pts = grid(25);
        let ny = nystrom_eigen(&pts, &Kernel::Linear, 10, 2, 4);
        assert_eq!(ny.landmarks.len(), 10);
        let mut sorted = ny.landmarks.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicate landmarks");
        assert!(ny.landmarks.iter().all(|&i| i < 25));
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = grid(30);
        let a = nystrom_eigen(&pts, &Kernel::gaussian(1.0), 12, 3, 7);
        let b = nystrom_eigen(&pts, &Kernel::gaussian(1.0), 12, 3, 7);
        assert_eq!(a.landmarks, b.landmarks);
        assert_eq!(a.eigenvalues, b.eigenvalues);
    }

    #[test]
    fn m_clamped_to_n() {
        let pts = grid(5);
        let ny = nystrom_eigen(&pts, &Kernel::gaussian(1.0), 50, 2, 0);
        assert_eq!(ny.landmarks.len(), 5);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        nystrom_eigen(&grid(4), &Kernel::Linear, 2, 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least as many landmarks")]
    fn m_below_k_panics() {
        nystrom_eigen(&grid(4), &Kernel::Linear, 1, 2, 0);
    }
}
