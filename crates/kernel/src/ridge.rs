//! Kernel ridge regression on exact and block-diagonal Gram matrices.
//!
//! The paper's abstract promises the kernel-matrix approximation "can be
//! used with many kernel-based machine learning algorithms"; spectral
//! clustering is only the worked example. This module is a second
//! consumer: KRR trains by solving `(K + λI) α = y`, which under the
//! block-diagonal approximation decomposes into independent per-bucket
//! SPD solves — the same O(Σ Nᵢ³) vs O(N³) saving the clustering path
//! enjoys.

use dasc_linalg::Cholesky;
use rayon::prelude::*;

use crate::approx::ApproximateGram;
use crate::functions::Kernel;
use crate::gram::full_gram;

/// A fitted kernel ridge regressor.
#[derive(Clone, Debug)]
pub struct RidgeModel {
    kernel: Kernel,
    /// One entry per Gram block: the block's training-point indices and
    /// dual coefficients α.
    blocks: Vec<RidgeBlock>,
}

#[derive(Clone, Debug)]
struct RidgeBlock {
    members: Vec<usize>,
    alphas: Vec<f64>,
}

impl RidgeModel {
    /// Fit on the exact Gram matrix: one global solve of
    /// `(K + λI) α = y`.
    ///
    /// # Panics
    /// Panics if `targets` mismatches `points`, or `lambda <= 0`.
    pub fn fit_exact(points: &[Vec<f64>], targets: &[f64], kernel: Kernel, lambda: f64) -> Self {
        assert_eq!(points.len(), targets.len(), "ridge: target mismatch");
        assert!(lambda > 0.0, "ridge: lambda must be positive");
        let mut k = full_gram(points, &kernel);
        for i in 0..k.nrows() {
            k[(i, i)] += lambda;
        }
        let ch = Cholesky::new(&k).expect("K + λI is SPD for λ > 0");
        let alphas = ch.solve(targets);
        Self {
            kernel,
            blocks: vec![RidgeBlock {
                members: (0..points.len()).collect(),
                alphas,
            }],
        }
    }

    /// Fit on a DASC block-diagonal approximate Gram matrix: independent
    /// per-bucket solves (bucket-parallel).
    ///
    /// # Panics
    /// Panics if `targets` is shorter than the Gram's point count, or
    /// `lambda <= 0`.
    pub fn fit_blocks(
        gram: &ApproximateGram,
        targets: &[f64],
        kernel: Kernel,
        lambda: f64,
    ) -> Self {
        assert!(lambda > 0.0, "ridge: lambda must be positive");
        assert_eq!(gram.n(), targets.len(), "ridge: target mismatch");
        let blocks: Vec<RidgeBlock> = gram
            .blocks()
            .par_iter()
            .map(|b| {
                let m = b.members.len();
                let mut k = b.matrix.clone();
                for i in 0..m {
                    k[(i, i)] += lambda;
                }
                let y: Vec<f64> = b.members.iter().map(|&i| targets[i]).collect();
                let ch = Cholesky::new(&k).expect("block + λI is SPD");
                RidgeBlock {
                    members: b.members.clone(),
                    alphas: ch.solve(&y),
                }
            })
            .collect();
        Self { kernel, blocks }
    }

    /// Number of blocks (1 for an exact fit).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Predict with the dual form restricted to one block:
    /// `ŷ(x) = Σ_{i ∈ block} αᵢ k(x, xᵢ)`.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn predict_in_block(&self, block: usize, x: &[f64], train_points: &[Vec<f64>]) -> f64 {
        let b = &self.blocks[block];
        b.members
            .iter()
            .zip(&b.alphas)
            .map(|(&i, &a)| a * self.kernel.eval(x, &train_points[i]))
            .sum()
    }

    /// Predict summing over **all** blocks (exact model or when the
    /// caller does not know the query's bucket). For a block-diagonal
    /// model this matches the approximate kernel's dual form, since
    /// cross-block kernel entries were approximated as zero at training
    /// time but test-time kernel values against other blocks' points
    /// still contribute.
    pub fn predict(&self, x: &[f64], train_points: &[Vec<f64>]) -> f64 {
        (0..self.blocks.len())
            .map(|b| self.predict_in_block(b, x, train_points))
            .sum()
    }

    /// Mean squared error over a labelled set.
    pub fn mse(&self, xs: &[Vec<f64>], ys: &[f64], train_points: &[Vec<f64>]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "mse: target mismatch");
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| {
                let e = self.predict(x, train_points) - y;
                e * e
            })
            .sum::<f64>()
            / xs.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasc_lsh::{BucketSet, Signature};

    /// y = sin(2πx) sampled on a grid.
    fn wave(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] * std::f64::consts::TAU).sin())
            .collect();
        (xs, ys)
    }

    #[test]
    fn exact_fit_interpolates_smooth_function() {
        let (xs, ys) = wave(50);
        let model = RidgeModel::fit_exact(&xs, &ys, Kernel::gaussian(0.1), 1e-6);
        let mse = model.mse(&xs, &ys, &xs);
        assert!(mse < 1e-4, "training mse {mse}");
        // Generalizes between grid points.
        let pred = model.predict(&[0.205], &xs);
        let truth = (0.205f64 * std::f64::consts::TAU).sin();
        assert!((pred - truth).abs() < 0.05, "pred {pred} vs {truth}");
    }

    #[test]
    fn larger_lambda_shrinks_predictions() {
        let (xs, ys) = wave(30);
        let soft = RidgeModel::fit_exact(&xs, &ys, Kernel::gaussian(0.1), 1e-6);
        let hard = RidgeModel::fit_exact(&xs, &ys, Kernel::gaussian(0.1), 100.0);
        let p_soft = soft.predict(&[0.25], &xs).abs();
        let p_hard = hard.predict(&[0.25], &xs).abs();
        assert!(p_hard < p_soft, "regularization did not shrink");
    }

    #[test]
    fn block_fit_matches_exact_on_separated_data() {
        // Two clusters far apart: cross-block kernel entries are ~0, so
        // the block solve is numerically the exact solve.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            xs.push(vec![0.001 * i as f64]);
            ys.push(1.0);
            xs.push(vec![10.0 + 0.001 * i as f64]);
            ys.push(-1.0);
        }
        let kernel = Kernel::gaussian(0.1);
        let sigs: Vec<Signature> = xs
            .iter()
            .map(|x| Signature::from_bits(u64::from(x[0] > 5.0), 1))
            .collect();
        let buckets = BucketSet::from_signatures(&sigs);
        let gram = ApproximateGram::from_buckets(&xs, &buckets, &kernel);

        let exact = RidgeModel::fit_exact(&xs, &ys, kernel, 1e-3);
        let blocked = RidgeModel::fit_blocks(&gram, &ys, kernel, 1e-3);
        assert_eq!(blocked.num_blocks(), 2);
        for q in [[0.005], [10.005]] {
            let a = exact.predict(&q, &xs);
            let b = blocked.predict(&q, &xs);
            assert!((a - b).abs() < 1e-6, "exact {a} vs blocked {b}");
        }
    }

    #[test]
    fn block_fit_is_cheaper_and_close_on_mild_overlap() {
        let (xs, ys) = wave(60);
        // Bandwidth short enough that cross-block kernel mass (ignored at
        // training time, present at prediction time) stays small.
        let kernel = Kernel::gaussian(0.02);
        // Partition the line into 4 intervals.
        let sigs: Vec<Signature> = xs
            .iter()
            .map(|x| Signature::from_bits((x[0] * 4.0) as u64, 2))
            .collect();
        let buckets = BucketSet::from_signatures(&sigs);
        let gram = ApproximateGram::from_buckets(&xs, &buckets, &kernel);
        let blocked = RidgeModel::fit_blocks(&gram, &ys, kernel, 1e-4);
        let mse = blocked.mse(&xs, &ys, &xs);
        assert!(mse < 0.05, "blocked training mse {mse}");
        assert!(gram.stored_entries() < 60 * 60);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        let (xs, ys) = wave(5);
        RidgeModel::fit_exact(&xs, &ys, Kernel::Linear, 0.0);
    }

    #[test]
    #[should_panic(expected = "target mismatch")]
    fn target_mismatch_panics() {
        let (xs, _) = wave(5);
        RidgeModel::fit_exact(&xs, &[1.0], Kernel::Linear, 1.0);
    }
}
