//! Kernel machinery: kernel functions, Gram matrices, and the DASC
//! block-diagonal approximation.
//!
//! The paper's central object is the kernel (similarity/Gram) matrix.
//! This crate provides:
//!
//! * [`Kernel`] — Gaussian (Eq. 1) plus the other standard kernels, so
//!   the approximation stays "independent of the subsequently used
//!   kernel-based machine learning algorithm";
//! * [`full_gram`] — the exact `N×N` matrix (the O(N²) baseline);
//! * [`ApproximateGram`] — the block-diagonal approximation induced by
//!   LSH buckets, storing only `Σ Nᵢ²` entries;
//! * [`nystrom_eigen`] — the Nyström low-rank alternative used by the
//!   NYST baseline (Williams & Seeger / Schuetter & Shi);
//! * Frobenius-norm comparison (Eqs. 22–24) behind Figure 5;
//! * downstream consumers beyond clustering: kernel ridge regression,
//!   an LS-SVM classifier, and kernel PCA, each runnable on either the
//!   exact or the block-diagonal matrix.
//!
//! ```
//! use dasc_kernel::{full_gram, Kernel};
//!
//! let points = vec![vec![0.0, 0.0], vec![1.0, 0.0]];
//! let k = Kernel::gaussian(1.0);
//! let gram = full_gram(&points, &k);
//! assert_eq!(gram[(0, 0)], 1.0);                    // self-similarity
//! assert!((gram[(0, 1)] - (-0.5f64).exp()).abs() < 1e-12); // Eq. 1
//! ```

pub mod approx;
pub mod classifier;
pub mod functions;
pub mod gram;
pub mod kpca;
pub mod nystrom;
pub mod ridge;

pub use approx::{ApproximateGram, GramBlock};
pub use classifier::KernelClassifier;
pub use functions::{Kernel, TileBasis};
pub use gram::{
    full_gram, full_gram_flat, full_gram_flat_scalar, full_gram_flat_tiled, gram_memory_bytes,
    TILED_MIN_POINTS,
};
pub use kpca::{center_gram, kernel_pca, kernel_pca_blocks, BlockKpca, KpcaEmbedding};
pub use nystrom::{nystrom_eigen, NystromEigen};
pub use ridge::RidgeModel;
