//! Kernel PCA (Schölkopf–Smola–Müller — the paper's reference \[31\] for
//! kernel-based dimensionality reduction) on exact and block-diagonal
//! Gram matrices: a third consumer of the DASC approximation.
//!
//! Steps: double-center the Gram matrix, eigendecompose, scale the top
//! eigenvectors by `√λ` to get the embedding. Under the block-diagonal
//! approximation the centering and eigensolve run independently per
//! bucket.

use dasc_linalg::{symmetric_eigen, Matrix};
use rayon::prelude::*;

use crate::approx::ApproximateGram;
use crate::functions::Kernel;
use crate::gram::full_gram;

/// Result of an exact kernel PCA.
#[derive(Clone, Debug)]
pub struct KpcaEmbedding {
    /// `N × dims` embedding (rows are points).
    pub embedding: Matrix,
    /// Captured eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
}

/// Per-bucket kernel PCA over a block-diagonal Gram matrix.
#[derive(Clone, Debug)]
pub struct BlockKpca {
    /// `(members, embedding)` per bucket: `Nᵢ × dims` each.
    pub blocks: Vec<(Vec<usize>, Matrix)>,
}

/// Double-center a Gram matrix in place:
/// `K' = K − 1·K/n − K·1/n + 1·K·1/n²`.
pub fn center_gram(k: &Matrix) -> Matrix {
    let n = k.nrows();
    if n == 0 {
        return k.clone();
    }
    let nf = n as f64;
    let row_means: Vec<f64> = (0..n).map(|i| k.row(i).iter().sum::<f64>() / nf).collect();
    let grand = row_means.iter().sum::<f64>() / nf;
    let mut c = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            c[(i, j)] = k[(i, j)] - row_means[i] - row_means[j] + grand;
        }
    }
    c
}

fn embed(k: &Matrix, dims: usize) -> (Matrix, Vec<f64>) {
    let n = k.nrows();
    let dims = dims.min(n);
    let centered = center_gram(k);
    let eig = symmetric_eigen(&centered);
    let (vals, vecs) = eig.top_k(dims);
    // Embedding rows: yᵢⱼ = √λⱼ · vⱼ[i]; non-positive (numerically zero)
    // components collapse to 0.
    let mut emb = Matrix::zeros(n, dims);
    for j in 0..dims {
        let scale = vals[j].max(0.0).sqrt();
        for i in 0..n {
            emb[(i, j)] = scale * vecs[(i, j)];
        }
    }
    (emb, vals)
}

/// Exact kernel PCA of `points` to `dims` components.
///
/// # Panics
/// Panics if `dims == 0` or the dataset is empty.
pub fn kernel_pca(points: &[Vec<f64>], kernel: &Kernel, dims: usize) -> KpcaEmbedding {
    assert!(dims > 0, "kpca: dims must be positive");
    assert!(!points.is_empty(), "kpca: empty dataset");
    let k = full_gram(points, kernel);
    let (embedding, eigenvalues) = embed(&k, dims);
    KpcaEmbedding {
        embedding,
        eigenvalues,
    }
}

/// Per-bucket kernel PCA over an [`ApproximateGram`] (bucket-parallel).
///
/// # Panics
/// Panics if `dims == 0`.
pub fn kernel_pca_blocks(gram: &ApproximateGram, dims: usize) -> BlockKpca {
    assert!(dims > 0, "kpca: dims must be positive");
    let blocks = gram
        .blocks()
        .par_iter()
        .map(|b| {
            let (emb, _) = embed(&b.matrix, dims);
            (b.members.clone(), emb)
        })
        .collect();
    BlockKpca { blocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_gram_has_zero_row_sums() {
        let pts: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, (i * i % 5) as f64]).collect();
        let k = full_gram(&pts, &Kernel::gaussian(1.0));
        let c = center_gram(&k);
        for s in c.row_sums() {
            assert!(s.abs() < 1e-10, "row sum {s}");
        }
        assert!(c.is_symmetric(1e-12));
    }

    #[test]
    fn linear_kpca_matches_pca_variances() {
        // Data varying mostly along one axis: the first KPCA eigenvalue
        // under the linear kernel is n times the first PCA variance.
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 / 10.0, 0.01 * (i % 2) as f64])
            .collect();
        let res = kernel_pca(&pts, &Kernel::Linear, 2);
        assert!(res.eigenvalues[0] > 50.0 * res.eigenvalues[1]);
        // Embedding's first column orders the points along the axis.
        let col0: Vec<f64> = (0..20).map(|i| res.embedding[(i, 0)]).collect();
        let increasing = col0.windows(2).all(|w| w[1] > w[0]);
        let decreasing = col0.windows(2).all(|w| w[1] < w[0]);
        assert!(increasing || decreasing, "first component not monotone");
    }

    #[test]
    fn embedding_gram_matches_centered_kernel() {
        // With all components kept, Y·Yᵀ reconstructs the centered Gram.
        let pts: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![(i as f64).sin(), (i as f64).cos()])
            .collect();
        let k = full_gram(&pts, &Kernel::gaussian(0.8));
        let res = kernel_pca(&pts, &Kernel::gaussian(0.8), 6);
        let rec = res.embedding.matmul(&res.embedding.transpose());
        assert!(rec.max_abs_diff(&center_gram(&k)) < 1e-8);
    }

    #[test]
    fn block_kpca_covers_every_point() {
        use dasc_lsh::{BucketSet, Signature};
        let pts: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64]).collect();
        let sigs: Vec<Signature> = (0..12)
            .map(|i| Signature::from_bits(u64::from(i >= 6), 1))
            .collect();
        let buckets = BucketSet::from_signatures(&sigs);
        let gram = ApproximateGram::from_buckets(&pts, &buckets, &Kernel::gaussian(1.0));
        let res = kernel_pca_blocks(&gram, 2);
        assert_eq!(res.blocks.len(), 2);
        let covered: usize = res.blocks.iter().map(|(m, _)| m.len()).sum();
        assert_eq!(covered, 12);
        for (members, emb) in &res.blocks {
            assert_eq!(emb.nrows(), members.len());
            assert_eq!(emb.ncols(), 2);
        }
    }

    #[test]
    fn dims_clamped_to_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let res = kernel_pca(&pts, &Kernel::Linear, 10);
        assert_eq!(res.embedding.ncols(), 2);
    }

    #[test]
    #[should_panic(expected = "dims must be positive")]
    fn zero_dims_panics() {
        kernel_pca(&[vec![0.0]], &Kernel::Linear, 0);
    }
}
